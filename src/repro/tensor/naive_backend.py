"""The naive Tensor implementation (Section 3.1).

A single-threaded array type backed by plain Python lists: no NumPy, no
simulated accelerator, no external dependencies.  Exactly as the paper
argues, this loses hardware acceleration but wins on portability, small-
tensor overhead, and binary size — it is the backend the mobile spline
experiment (Table 4) runs on.

Operations are implemented over a flat list + shape.  Only the subset
needed by small models is provided; convolutions deliberately raise (the
paper's naive tensor was used for spline-style workloads, not CNNs).
"""

from __future__ import annotations

import math
import operator
from typing import Callable, Sequence


class NaiveArray:
    """Flat-list storage with an explicit shape."""

    __slots__ = ("data", "shape", "__weakref__")

    def __init__(self, data: list[float], shape: tuple[int, ...]) -> None:
        self.data = data
        self.shape = shape
        from repro.runtime import memory

        memory.track_buffer(self, 8 * len(data))

    @property
    def size(self) -> int:
        return _numel(self.shape)


def _numel(shape: tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def _flatten(nested, out: list[float]) -> tuple[int, ...]:
    if isinstance(nested, (list, tuple)):
        if not nested:
            return (0,)
        inner = None
        for item in nested:
            shape = _flatten(item, out)
            if inner is None:
                inner = shape
            elif inner != shape:
                raise ValueError("ragged nested lists")
        return (len(nested),) + inner
    out.append(float(nested))
    return ()


def from_nested(nested) -> NaiveArray:
    if isinstance(nested, NaiveArray):
        return NaiveArray(list(nested.data), nested.shape)
    if isinstance(nested, (int, float)):
        return NaiveArray([float(nested)], ())
    out: list[float] = []
    shape = _flatten(nested, out)
    return NaiveArray(out, shape)


def to_nested(a: NaiveArray):
    def build(shape: tuple[int, ...], offset: int):
        if not shape:
            return a.data[offset]
        stride = _numel(shape[1:])
        return [
            build(shape[1:], offset + i * stride) for i in range(shape[0])
        ]

    return build(a.shape, 0)


def full(shape: tuple[int, ...], value: float) -> NaiveArray:
    return NaiveArray([value] * _numel(shape), tuple(shape))


def _broadcast_data(a: NaiveArray, shape: tuple[int, ...]) -> list[float]:
    """Materialize ``a`` broadcast to ``shape`` (NumPy rules)."""
    if a.shape == shape:
        return a.data
    rank = len(shape)
    a_dims = (1,) * (rank - len(a.shape)) + a.shape
    for da, d in zip(a_dims, shape):
        if da != d and da != 1:
            raise ValueError(f"cannot broadcast {a.shape} to {shape}")
    a_strides = []
    acc = 1
    for d in reversed(a_dims):
        a_strides.append(acc if d != 1 else 0)
        acc *= d
    a_strides = list(reversed(a_strides))
    # Zero out strides of broadcast dims.
    a_strides = [0 if da == 1 else s for da, s in zip(a_dims, a_strides)]

    out = [0.0] * _numel(shape)
    idx = [0] * rank
    for i in range(len(out)):
        src = sum(ix * st for ix, st in zip(idx, a_strides))
        out[i] = a.data[src]
        for axis in range(rank - 1, -1, -1):
            idx[axis] += 1
            if idx[axis] < shape[axis]:
                break
            idx[axis] = 0
    return out


def broadcast_shape(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    rank = max(len(a), len(b))
    a = (1,) * (rank - len(a)) + a
    b = (1,) * (rank - len(b)) + b
    out = []
    for da, db in zip(a, b):
        if da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise ValueError(f"cannot broadcast {a} with {b}")
    return tuple(out)


_BINOPS: dict[str, Callable[[float, float], float]] = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "div": operator.truediv,
    "pow": operator.pow,
    "maximum": max,
    "minimum": min,
}

_UNOPS: dict[str, Callable[[float], float]] = {
    "neg": operator.neg,
    "exp": math.exp,
    "log": math.log,
    "tanh": math.tanh,
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
    "relu": lambda x: x if x > 0.0 else 0.0,
    "abs": abs,
    "sign": lambda x: (x > 0) - (x < 0),
}

_COMPARES = {
    "gt": operator.gt,
    "ge": operator.ge,
    "lt": operator.lt,
    "le": operator.le,
    "eq": operator.eq,
    "ne": operator.ne,
}


def binary(op: str, a: NaiveArray, b: NaiveArray) -> NaiveArray:
    fn = _BINOPS[op]
    shape = broadcast_shape(a.shape, b.shape)
    da = _broadcast_data(a, shape)
    db = _broadcast_data(b, shape)
    return NaiveArray([fn(x, y) for x, y in zip(da, db)], shape)


def compare(direction: str, a: NaiveArray, b: NaiveArray) -> NaiveArray:
    fn = _COMPARES[direction]
    shape = broadcast_shape(a.shape, b.shape)
    da = _broadcast_data(a, shape)
    db = _broadcast_data(b, shape)
    return NaiveArray([1.0 if fn(x, y) else 0.0 for x, y in zip(da, db)], shape)


def unary(op: str, a: NaiveArray) -> NaiveArray:
    fn = _UNOPS[op]
    return NaiveArray([fn(x) for x in a.data], a.shape)


def select(pred: NaiveArray, x: NaiveArray, y: NaiveArray) -> NaiveArray:
    shape = broadcast_shape(broadcast_shape(pred.shape, x.shape), y.shape)
    dp = _broadcast_data(pred, shape)
    dx = _broadcast_data(x, shape)
    dy = _broadcast_data(y, shape)
    return NaiveArray(
        [xv if p else yv for p, xv, yv in zip(dp, dx, dy)], shape
    )


def matmul(a: NaiveArray, b: NaiveArray) -> NaiveArray:
    if len(a.shape) == 1:
        a = NaiveArray(a.data, (1,) + a.shape)
        squeeze = True
    else:
        squeeze = False
    if len(a.shape) != 2 or len(b.shape) != 2:
        raise ValueError("naive matmul supports rank <= 2")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"matmul mismatch {a.shape} @ {b.shape}")
    out = [0.0] * (m * n)
    for i in range(m):
        row_off = i * k
        for j in range(n):
            total = 0.0
            for p in range(k):
                total += a.data[row_off + p] * b.data[p * n + j]
            out[i * n + j] = total
    result = NaiveArray(out, (m, n))
    if squeeze:
        result = NaiveArray(result.data, (n,))
    return result


def reduce(op: str, a: NaiveArray, axes, keepdims: bool) -> NaiveArray:
    rank = len(a.shape)
    if axes is None:
        axes_set = set(range(rank))
    else:
        axes_set = {ax % rank for ax in axes}
    out_shape = tuple(
        1 if i in axes_set else d
        for i, d in enumerate(a.shape)
        if keepdims or i not in axes_set
    )
    groups: dict[int, list[float]] = {}
    idx = [0] * rank
    out_strides = _strides(out_shape)
    for flat, value in enumerate(a.data):
        out_index = []
        for i in range(rank):
            if i in axes_set:
                if keepdims:
                    out_index.append(0)
            else:
                out_index.append(idx[i])
        off = sum(ix * st for ix, st in zip(out_index, out_strides))
        groups.setdefault(off, []).append(value)
        for axis in range(rank - 1, -1, -1):
            idx[axis] += 1
            if idx[axis] < a.shape[axis]:
                break
            idx[axis] = 0

    out = [0.0] * max(_numel(out_shape), 1)
    for off, values in groups.items():
        if op == "sum":
            out[off] = sum(values)
        elif op == "mean":
            out[off] = sum(values) / len(values)
        elif op == "max":
            out[off] = max(values)
        else:
            raise ValueError(f"unknown reduce {op!r}")
    if not a.data:  # empty input
        out = []
    return NaiveArray(out, out_shape)


def _strides(shape: tuple[int, ...]) -> list[int]:
    strides = []
    acc = 1
    for d in reversed(shape):
        strides.append(acc)
        acc *= d
    return list(reversed(strides))


def reshape(a: NaiveArray, shape: Sequence[int]) -> NaiveArray:
    shape = tuple(shape)
    if _numel(shape) != a.size:
        raise ValueError(f"cannot reshape {a.shape} to {shape}")
    return NaiveArray(list(a.data), shape)


def transpose(a: NaiveArray, perm: Sequence[int]) -> NaiveArray:
    perm = tuple(perm)
    rank = len(a.shape)
    out_shape = tuple(a.shape[p] for p in perm)
    in_strides = _strides(a.shape)
    out = [0.0] * a.size
    idx = [0] * rank
    pos = 0
    for _ in range(a.size):
        # Output index `idx` maps to the input offset through `perm`.
        src = 0
        for out_axis, p in enumerate(perm):
            src += idx[out_axis] * in_strides[p]
        out[pos] = a.data[src]
        pos += 1
        for axis in range(rank - 1, -1, -1):
            idx[axis] += 1
            if idx[axis] < out_shape[axis]:
                break
            idx[axis] = 0
    return NaiveArray(out, out_shape)


def broadcast_to(a: NaiveArray, shape: Sequence[int]) -> NaiveArray:
    shape = tuple(shape)
    return NaiveArray(_broadcast_data(a, shape), shape)


def sum_to_match(a: NaiveArray, target_shape: tuple[int, ...]) -> NaiveArray:
    """Reduce broadcast dimensions so the result has ``target_shape``."""
    if a.shape == tuple(target_shape):
        return a
    rank = len(a.shape)
    target = (1,) * (rank - len(target_shape)) + tuple(target_shape)
    axes = tuple(
        i for i, (da, dt) in enumerate(zip(a.shape, target)) if dt == 1 and da != 1
    )
    lead = tuple(range(rank - len(target_shape)))
    reduce_axes = tuple(sorted(set(axes) | set(lead)))
    if reduce_axes:
        keep = [i for i in range(rank) if i not in lead]
        reduced = reduce("sum", a, reduce_axes, keepdims=True)
        # Drop leading axes entirely.
        new_shape = tuple(reduced.shape[i] for i in keep)
        return NaiveArray(reduced.data, new_shape if new_shape else ())
    return reshape(a, target_shape)


def index_row(a: NaiveArray, i: int) -> NaiveArray:
    """``a[i]`` along axis 0 (negative indices allowed)."""
    n = a.shape[0]
    if i < 0:
        i += n
    if not 0 <= i < n:
        raise IndexError(f"index {i} out of range for axis of size {n}")
    stride = _numel(a.shape[1:])
    return NaiveArray(a.data[i * stride : (i + 1) * stride], a.shape[1:])


def slice_rows(a: NaiveArray, start: int, stop: int) -> NaiveArray:
    """``a[start:stop]`` along axis 0."""
    n = a.shape[0]
    start, stop, _ = slice(start, stop).indices(n)
    stride = _numel(a.shape[1:])
    return NaiveArray(
        a.data[start * stride : stop * stride], (max(stop - start, 0),) + a.shape[1:]
    )


def concat_rows(arrays: list[NaiveArray]) -> NaiveArray:
    """Concatenate along axis 0."""
    inner = arrays[0].shape[1:]
    for arr in arrays:
        if arr.shape[1:] != inner:
            raise ValueError("concat inner shapes disagree")
    data: list[float] = []
    for arr in arrays:
        data.extend(arr.data)
    return NaiveArray(data, (sum(a.shape[0] for a in arrays),) + inner)


def pad_rows(a: NaiveArray, before: int, after: int) -> NaiveArray:
    """Zero-pad along axis 0."""
    stride = _numel(a.shape[1:])
    data = [0.0] * (before * stride) + list(a.data) + [0.0] * (after * stride)
    return NaiveArray(data, (a.shape[0] + before + after,) + a.shape[1:])
