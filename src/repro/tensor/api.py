"""Top-level tensor utilities, including ``LazyTensorBarrier``."""

from __future__ import annotations

from typing import Optional

from repro.tensor.device import Device, default_device


def LazyTensorBarrier(device: Optional[Device] = None) -> None:
    """Explicitly cut the current trace (Section 3.4).

    Materializes every live lazy tensor on ``device`` (default: the default
    device) as one compiled fragment.  No-op on eager/naive devices.  The
    training-loop library calls this automatically after each optimizer
    step so the accidental unrolling of the main training loop never
    happens (Section 3.4).
    """
    device = device or default_device()
    if device.kind == "lazy":
        device.runtime.barrier()
