"""Device placement: the user-facing switch between Tensor implementations.

"End-users can switch between the two implementations by specifying a
device for the computation to run on: either an eager or a lazy-tracing
one" (Section 3.3).  A third, naive device runs on pure Python lists with
no runtime dependencies (Section 3.1) — the mobile/embedded story.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Optional

from repro.runtime.costmodel import (
    DESKTOP_CPU,
    S4TF_EAGER,
    S4TF_LAZY,
    DeviceProfile,
    EngineProfile,
)
from repro.runtime.device import Dispatcher, SimDevice


class Device:
    """A place where Tensor computation happens.

    ``kind`` selects the implementation strategy:

    * ``"naive"`` — single-threaded pure-Python arrays;
    * ``"eager"`` — op-by-op asynchronous dispatch to simulated hardware;
    * ``"lazy"`` — implicit tracing + JIT compilation through HLO.
    """

    _ids = itertools.count()

    def __init__(
        self,
        kind: str,
        profile: Optional[DeviceProfile] = None,
        engine: Optional[EngineProfile] = None,
        name: str = "",
        auto_barrier_threshold: Optional[int] = None,
        async_compile=False,
        codegen: bool = False,
    ) -> None:
        if kind not in ("naive", "eager", "lazy"):
            raise ValueError(f"unknown device kind {kind!r}")
        self.kind = kind
        self.name = name or f"{kind}:{next(Device._ids)}"
        self.profile = profile
        self.engine = engine
        if kind == "eager":
            self.sim = SimDevice(profile or DESKTOP_CPU)
            self.dispatcher = Dispatcher(self.sim, engine or S4TF_EAGER)
        elif kind == "lazy":
            from repro.hlo.compiler import ASYNC_COMPILER, AsyncCompiler
            from repro.tensor.lazy_backend import LazyRuntime

            if async_compile is False or async_compile is None:
                compiler = None
            elif async_compile is True:
                compiler = ASYNC_COMPILER
            elif isinstance(async_compile, AsyncCompiler):
                compiler = async_compile
            else:
                raise ValueError(
                    "async_compile must be a bool or an AsyncCompiler, "
                    f"got {async_compile!r}"
                )
            self.sim = SimDevice(profile or DESKTOP_CPU)
            self.runtime = LazyRuntime(
                self.sim,
                engine or S4TF_LAZY,
                auto_barrier_threshold,
                async_compiler=compiler,
                codegen=codegen,
            )
        else:
            self.sim = None

    def reset(self) -> None:
        """Zero the simulated clocks and counters (between experiments)."""
        if self.kind == "eager":
            self.dispatcher.reset()
        elif self.kind == "lazy":
            self.runtime.reset()

    @property
    def elapsed(self) -> float:
        """Total simulated wall time consumed on this device."""
        if self.kind == "eager":
            return self.dispatcher.elapsed
        if self.kind == "lazy":
            return self.runtime.elapsed
        return 0.0

    def sync(self) -> float:
        if self.kind == "eager":
            return self.dispatcher.sync()
        if self.kind == "lazy":
            return self.runtime.sync()
        return 0.0

    def trace_stats(self) -> dict:
        """Tracing counters (lazy devices only; empty otherwise)."""
        if self.kind == "lazy":
            return self.runtime.trace_stats()
        return {}

    def __repr__(self) -> str:
        return f"Device({self.name})"


# -- defaults ----------------------------------------------------------------

_default_device: Optional[Device] = None


def default_device() -> Device:
    global _default_device
    if _default_device is None:
        _default_device = Device("eager")
    return _default_device


def set_default_device(device: Device) -> None:
    global _default_device
    _default_device = device


@contextmanager
def using_device(device: Device):
    """Scope the default device: ``with using_device(lazy_dev): ...``"""
    global _default_device
    previous = _default_device
    _default_device = device
    try:
        yield device
    finally:
        _default_device = previous


def naive_device() -> Device:
    return Device("naive")


def eager_device(profile=None, engine=None) -> Device:
    return Device("eager", profile, engine)


def lazy_device(
    profile=None,
    engine=None,
    auto_barrier_threshold=None,
    async_compile=False,
    codegen=False,
) -> Device:
    return Device(
        "lazy",
        profile,
        engine,
        auto_barrier_threshold=auto_barrier_threshold,
        async_compile=async_compile,
        codegen=codegen,
    )
