"""Differentiable tensor operations.

These primitives are the Tensor-level base cases of the AD recursion,
registered with ``@derivative``-style VJPs/JVPs exactly like the scalar
math primitives — demonstrating that the AD system is decoupled from the
Tensor type (it consumes only the ``Differentiable`` conformance).

All implementations go through :class:`~repro.tensor.tensor.Tensor`
methods, so every primitive works on all three backends unchanged.
"""

from __future__ import annotations

from repro.sil.frontend import register_method
from repro.sil.primitives import primitive
from repro.tensor.tensor import Tensor


def _conv2d_impl(x: Tensor, filters: Tensor, stride: int, padding: str) -> Tensor:
    dev = x.device.kind
    if dev == "naive":
        raise NotImplementedError(
            "conv2d is not provided by the naive backend (Section 3.1's "
            "naive tensor targets small dense workloads); use an eager or "
            "lazy device"
        )
    if dev == "eager":
        from repro.runtime.kernels import KERNELS

        result = x.device.dispatcher.dispatch(
            KERNELS["conv2d"], (x._impl, filters._impl, stride, padding)
        )
        return Tensor._wrap(result, x.device)
    from repro.hlo import shapes as si
    from repro.hlo.ir import Shape

    out = si.infer_conv(Shape(x.shape), Shape(filters.shape), stride, padding)
    node = x.device.runtime.record(
        "conv2d",
        [x._impl, filters._impl],
        out.dims,
        attrs={"stride": stride, "padding": padding},
    )
    return Tensor._wrap(node, x.device)


def _tensor_op(x: Tensor, op: str, inputs, shape, attrs) -> Tensor:
    """Dispatch a named non-elementwise op on eager/lazy backends."""
    dev = x.device.kind
    if dev == "eager":
        from repro.runtime.kernels import KERNELS

        kernel_name, args = _EAGER_LOWERING[op](inputs, attrs)
        result = x.device.dispatcher.dispatch(KERNELS[kernel_name], args)
        return Tensor._wrap(result, x.device)
    if dev == "lazy":
        node = x.device.runtime.record(
            op, [t._impl for t in inputs], shape, attrs=attrs
        )
        return Tensor._wrap(node, x.device)
    raise NotImplementedError(f"{op} is not provided by the naive backend")


_EAGER_LOWERING = {
    "conv2d_grad_input": lambda ins, at: (
        "conv2d_grad_input",
        (ins[0]._impl, ins[1]._impl, at["input_dims"], at["stride"], at["padding"]),
    ),
    "conv2d_grad_filter": lambda ins, at: (
        "conv2d_grad_filter",
        (ins[0]._impl, ins[1]._impl, at["filter_dims"], at["stride"], at["padding"]),
    ),
    "avg_pool": lambda ins, at: (
        "avg_pool2d",
        (ins[0]._impl, at["pool"], at["stride"]),
    ),
    "avg_pool_grad": lambda ins, at: (
        "avg_pool2d_grad",
        (ins[0]._impl, at["input_dims"], at["pool"], at["stride"]),
    ),
    "max_pool": lambda ins, at: (
        "max_pool2d",
        (ins[0]._impl, at["pool"], at["stride"]),
    ),
    "max_pool_grad": lambda ins, at: (
        "max_pool2d_grad",
        (ins[0]._impl, ins[1]._impl, at["pool"], at["stride"]),
    ),
    "softmax_ce": lambda ins, at: (
        "softmax_cross_entropy",
        (ins[0]._impl, ins[1]._impl),
    ),
    "softmax_ce_grad": lambda ins, at: (
        "softmax_cross_entropy_grad",
        (ins[0]._impl, ins[1]._impl),
    ),
    "one_hot": lambda ins, at: ("one_hot", (ins[0]._impl, at["depth"])),
}


# ---------------------------------------------------------------------------
# Primitives.
# ---------------------------------------------------------------------------


@primitive("matmul")
def matmul(a, b):
    """Matrix product (rank-2); differentiable w.r.t. both operands."""
    return a @ b


@matmul.def_vjp
def _matmul_vjp(a, b):
    y = a @ b
    return y, lambda ct: (ct @ b.T, a.T @ ct)


@matmul.def_jvp
def _matmul_jvp(primals, tangents):
    (a, b), (da, db) = primals, tangents
    y = a @ b
    from repro.core.differentiable import ZERO, tangent_add

    parts = []
    if da is not ZERO:
        parts.append(da @ b)
    if db is not ZERO:
        parts.append(a @ db)
    if not parts:
        return y, ZERO
    dy = parts[0]
    for p in parts[1:]:
        dy = tangent_add(dy, p)
    return y, dy


@primitive("conv2d", nondiff_args=(2, 3))
def conv2d(x, filters, stride=1, padding="valid"):
    """2-D convolution, NHWC input and (KH,KW,CIN,COUT) filters."""
    return _conv2d_impl(x, filters, stride, padding)


@conv2d.def_vjp
def _conv2d_vjp(x, filters, stride=1, padding="valid"):
    y = _conv2d_impl(x, filters, stride, padding)

    def pullback(ct):
        gx = _tensor_op(
            x,
            "conv2d_grad_input",
            [ct, filters],
            x.shape,
            {"input_dims": x.shape, "stride": stride, "padding": padding},
        )
        gf = _tensor_op(
            x,
            "conv2d_grad_filter",
            [x, ct],
            filters.shape,
            {"filter_dims": filters.shape, "stride": stride, "padding": padding},
        )
        return (gx, gf, None, None)

    return y, pullback


def _pool_out_shape(x, pool, stride):
    n, h, w, c = x.shape
    return (n, (h - pool) // stride + 1, (w - pool) // stride + 1, c)


@primitive("avg_pool2d", nondiff_args=(1, 2))
def avg_pool2d(x, pool=2, stride=2):
    """Average pooling over NHWC windows."""
    return _tensor_op(
        x, "avg_pool", [x], _pool_out_shape(x, pool, stride), {"pool": pool, "stride": stride}
    )


@avg_pool2d.def_vjp
def _avg_pool2d_vjp(x, pool=2, stride=2):
    y = avg_pool2d.fn(x, pool, stride)

    def pullback(ct):
        gx = _tensor_op(
            x,
            "avg_pool_grad",
            [ct],
            x.shape,
            {"input_dims": x.shape, "pool": pool, "stride": stride},
        )
        return (gx, None, None)

    return y, pullback


@primitive("max_pool2d", nondiff_args=(1, 2))
def max_pool2d(x, pool=2, stride=2):
    """Max pooling over NHWC windows."""
    return _tensor_op(
        x, "max_pool", [x], _pool_out_shape(x, pool, stride), {"pool": pool, "stride": stride}
    )


@max_pool2d.def_vjp
def _max_pool2d_vjp(x, pool=2, stride=2):
    y = max_pool2d.fn(x, pool, stride)

    def pullback(ct):
        gx = _tensor_op(
            x,
            "max_pool_grad",
            [x, ct],
            x.shape,
            {"pool": pool, "stride": stride},
        )
        return (gx, None, None)

    return y, pullback


@primitive("tensor_sum", nondiff_args=(1, 2))
def tensor_sum(x, axes=None, keepdims=False):
    """Sum-reduce over ``axes`` (all axes when None)."""
    return x.sum(axes, keepdims)


@tensor_sum.def_vjp
def _tensor_sum_vjp(x, axes=None, keepdims=False):
    y = x.sum(axes, keepdims)
    shape = x.shape

    def pullback(ct):
        g = _restore_reduced_dims(ct, shape, axes, keepdims).broadcast_to(shape)
        return (g, None, None)

    return y, pullback


@tensor_sum.def_jvp
def _tensor_sum_jvp(primals, tangents):
    x, axes, keepdims = _pad3(primals)
    dx = tangents[0]
    from repro.core.differentiable import ZERO

    y = x.sum(axes, keepdims)
    return y, (ZERO if dx is ZERO else dx.sum(axes, keepdims))


@primitive("tensor_mean", nondiff_args=(1, 2))
def tensor_mean(x, axes=None, keepdims=False):
    """Mean-reduce over ``axes``."""
    return x.mean(axes, keepdims)


@tensor_mean.def_vjp
def _tensor_mean_vjp(x, axes=None, keepdims=False):
    y = x.mean(axes, keepdims)
    shape = x.shape
    count = _reduced_count(shape, axes)

    def pullback(ct):
        g = _restore_reduced_dims(ct, shape, axes, keepdims).broadcast_to(shape)
        return (g / float(count), None, None)

    return y, pullback


@tensor_mean.def_jvp
def _tensor_mean_jvp(primals, tangents):
    x, axes, keepdims = _pad3(primals)
    dx = tangents[0]
    from repro.core.differentiable import ZERO

    return x.mean(axes, keepdims), (ZERO if dx is ZERO else dx.mean(axes, keepdims))


@primitive("tensor_max", nondiff_args=(1, 2))
def tensor_max(x, axes=None, keepdims=False):
    return x.max(axes, keepdims)


@tensor_max.def_vjp
def _tensor_max_vjp(x, axes=None, keepdims=False):
    y = x.max(axes, keepdims)
    shape = x.shape

    def pullback(ct):
        y_full = _restore_reduced_dims(y, shape, axes, keepdims).broadcast_to(shape)
        ct_full = _restore_reduced_dims(ct, shape, axes, keepdims).broadcast_to(shape)
        mask = x >= y_full
        return (mask.select(ct_full, 0.0), None, None)

    return y, pullback


@primitive("tensor_reshape", nondiff_args=(1,))
def tensor_reshape(x, dims):
    """Reshape (element order preserved)."""
    return x.reshaped(dims)


@tensor_reshape.def_vjp
def _tensor_reshape_vjp(x, dims):
    shape = x.shape
    return x.reshaped(dims), lambda ct: (ct.reshaped(shape), None)


@tensor_reshape.def_jvp
def _tensor_reshape_jvp(primals, tangents):
    x, dims = primals
    dx = tangents[0]
    from repro.core.differentiable import ZERO

    return x.reshaped(dims), (ZERO if dx is ZERO else dx.reshaped(dims))


@primitive("flatten_batch")
def flatten_batch(x):
    """Collapse all non-batch dimensions: (N, ...) -> (N, prod(...))."""
    n = x.shape[0]
    return x.reshaped((n, x.size // n))


@flatten_batch.def_vjp
def _flatten_batch_vjp(x):
    shape = x.shape
    n = shape[0]
    return x.reshaped((n, x.size // n)), lambda ct: (ct.reshaped(shape),)


@primitive("tensor_transpose", nondiff_args=(1,))
def tensor_transpose(x, perm):
    return x.transposed(perm)


@tensor_transpose.def_vjp
def _tensor_transpose_vjp(x, perm):
    inverse = tuple(sorted(range(len(perm)), key=lambda i: perm[i]))
    return x.transposed(perm), lambda ct: (ct.transposed(inverse), None)


@primitive("tensor_broadcast_to", nondiff_args=(1,))
def tensor_broadcast_to(x, dims):
    return x.broadcast_to(dims)


@tensor_broadcast_to.def_vjp
def _tensor_broadcast_to_vjp(x, dims):
    shape = x.shape
    return x.broadcast_to(dims), lambda ct: (ct.sum_to_match(shape), None)


@primitive("softmax_cross_entropy")
def softmax_cross_entropy(logits, labels):
    """Mean softmax cross entropy against one-hot ``labels``; scalar."""
    return _tensor_op(logits, "softmax_ce", [logits, labels], (), {})


@softmax_cross_entropy.def_vjp
def _softmax_ce_vjp(logits, labels):
    loss = _tensor_op(logits, "softmax_ce", [logits, labels], (), {})

    def pullback(ct):
        g = _tensor_op(
            logits, "softmax_ce_grad", [logits, labels], logits.shape, {}
        )
        return (g * ct, None)

    return loss, pullback


@primitive("one_hot", nondiff_args=(0, 1))
def one_hot(indices, depth):
    """One-hot encode a float tensor of class indices."""
    return _tensor_op(
        indices, "one_hot", [indices], indices.shape + (depth,), {"depth": depth}
    )


@primitive("mse_loss")
def mse_loss(predictions, targets):
    """Mean squared error; differentiable through the tensor operators."""
    diff = predictions - targets
    return (diff * diff).mean()


@mse_loss.def_vjp
def _mse_loss_vjp(predictions, targets):
    diff = predictions - targets
    loss = (diff * diff).mean()
    n = float(diff.size)

    def pullback(ct):
        g = diff * (2.0 / n) * ct
        return (g, -g)

    return loss, pullback


@primitive("tensor_concat", nondiff_args=(1,))
def tensor_concat(tensors, axis=0):
    """Concatenate a list of tensors along ``axis`` (axis 0 on naive)."""
    first = tensors[0]
    kind = first.device.kind
    if kind == "naive":
        from repro.tensor import naive_backend as _nb

        if axis != 0:
            raise NotImplementedError("naive concat supports axis 0")
        return Tensor._wrap(
            _nb.concat_rows([t._impl for t in tensors]), first.device
        )
    if kind == "eager":
        from repro.runtime.kernels import KERNELS

        result = first.device.dispatcher.dispatch(
            KERNELS["concat"], tuple(t._impl for t in tensors) + (axis,)
        )
        return Tensor._wrap(result, first.device)
    from repro.hlo import shapes as si
    from repro.hlo.ir import Shape

    out = si.infer_concat([Shape(t.shape) for t in tensors], axis)
    node = first.device.runtime.record(
        "concat", [t._impl for t in tensors], out.dims, attrs={"axis": axis}
    )
    return Tensor._wrap(node, first.device)


@tensor_concat.def_vjp
def _tensor_concat_vjp(tensors, axis=0):
    y = tensor_concat.fn(tensors, axis)
    rank = len(tensors[0].shape)
    axis_n = axis % rank
    sizes = [t.shape[axis_n] for t in tensors]

    def pullback(ct):
        pieces = []
        offset = 0
        for size, t in zip(sizes, tensors):
            if axis_n == 0:
                pieces.append(ct[offset : offset + size])
            else:
                starts = tuple(
                    offset if d == axis_n else 0 for d in range(rank)
                )
                dims = tuple(
                    size if d == axis_n else t.shape[d] for d in range(rank)
                )
                pieces.append(_tensor_slice(ct, starts, dims))
            offset += size
        return (pieces, None)

    return y, pullback


def _tensor_slice(x, starts, sizes):
    kind = x.device.kind
    if kind == "eager":
        from repro.runtime.kernels import KERNELS

        result = x.device.dispatcher.dispatch(
            KERNELS["slice"], (x._impl, starts, sizes)
        )
        return Tensor._wrap(result, x.device)
    if kind == "lazy":
        node = x.device.runtime.record(
            "slice", [x._impl], tuple(sizes), attrs={"starts": starts, "sizes": sizes}
        )
        return Tensor._wrap(node, x.device)
    raise NotImplementedError("naive general slicing")


# ---------------------------------------------------------------------------
# Helpers.
# ---------------------------------------------------------------------------


def _pad3(primals):
    x = primals[0]
    axes = primals[1] if len(primals) > 1 else None
    keepdims = primals[2] if len(primals) > 2 else False
    return x, axes, keepdims


def _reduced_count(shape, axes) -> int:
    if axes is None:
        total = 1
        for d in shape:
            total *= d
        return total
    total = 1
    for a in axes:
        total *= shape[a % len(shape)]
    return total


def _restore_reduced_dims(ct, shape, axes, keepdims):
    """Insert size-1 dims so ``ct`` broadcasts against the original shape."""
    if keepdims or not hasattr(ct, "reshaped"):
        return ct
    if axes is None:
        return ct.reshaped((1,) * len(shape))
    axes = tuple(a % len(shape) for a in axes)
    dims = tuple(1 if i in axes else d for i, d in enumerate(shape))
    return ct.reshaped(dims)


# Route `x.method()` call sites inside @differentiable code to primitives.
register_method("sum", "tensor_sum")
register_method("mean", "tensor_mean")
register_method("max", "tensor_max")
register_method("reshaped", "tensor_reshape")
register_method("transposed", "tensor_transpose")
register_method("broadcast_to", "tensor_broadcast_to")
# Unary math methods route to the generic math primitives, which dispatch
# back to the receiver's method — so `x.tanh()` differentiates on any type.
for _name in ("exp", "log", "tanh", "sqrt", "rsqrt", "sigmoid", "relu", "abs"):
    register_method(_name, _name)
