"""The user-facing Tensor type, generic over three implementations.

One API, three backends selected by device placement (Sections 3.1–3.3):

* ``naive`` — pure-Python lists, no dependencies;
* ``eager`` — op-by-op asynchronous dispatch of NumPy kernels on a
  simulated accelerator;
* ``lazy`` — implicit trace recording, JIT-compiled through HLO on first
  observation.

Tensor is a *value type*: every operation yields a fresh value, and the
in-place ``move_`` used by optimizers rebinds this variable's storage
without affecting any other tensor — mutable value semantics (Section 4).

Tensor conforms to the Differentiable protocol (tangent space = Tensor of
the same shape), so the AD system differentiates tensor code with the same
machinery it uses for floats and structs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import DeviceError, ShapeError
from repro.runtime.kernels import KERNELS
from repro.tensor import naive_backend as nb
from repro.tensor.device import Device, default_device

Scalar = Union[int, float]

_EAGER_UNARY = {
    "neg": "neg",
    "exp": "exp",
    "log": "log",
    "tanh": "tanh",
    "sqrt": "sqrt",
    "rsqrt": "rsqrt",
    "sigmoid": "sigmoid",
    "relu": "relu",
    "abs": "abs",
    "sign": "sign",
}

_EAGER_BINARY = {
    "add": "add",
    "sub": "sub",
    "mul": "mul",
    "div": "div",
    "pow": "pow",
    "maximum": "maximum",
    "minimum": "minimum",
}

_EAGER_COMPARE = {
    "gt": "greater",
    "ge": "greater_equal",
    "lt": "less",
    "le": "less_equal",
    "eq": "equal",
}


class Tensor:
    """A multi-dimensional array placed on a :class:`Device`."""

    __slots__ = ("_impl", "device", "__weakref__")

    def __init__(self, data, device: Optional[Device] = None) -> None:
        if isinstance(data, Tensor):
            device = device or data.device
            self._impl = data._impl
            self.device = device
            if device.kind == "lazy":
                device.runtime.register_tensor(self)
            return
        self.device = device or default_device()
        kind = self.device.kind
        if kind == "naive":
            self._impl = nb.from_nested(
                data.tolist() if isinstance(data, np.ndarray) else data
            )
        elif kind == "eager":
            self._impl = np.asarray(data, dtype=np.float32)
        else:  # lazy
            array = np.asarray(data, dtype=np.float32)
            self._impl = self.device.runtime.source(array)
            self.device.runtime.register_tensor(self)

    # -- constructors --------------------------------------------------------

    @classmethod
    def _wrap(cls, impl, device: Device) -> "Tensor":
        t = object.__new__(cls)
        t._impl = impl
        t.device = device
        if device.kind == "lazy":
            device.runtime.register_tensor(t)
        return t

    @classmethod
    def zeros(cls, shape: Sequence[int], device=None) -> "Tensor":
        return cls.full(shape, 0.0, device)

    @classmethod
    def ones(cls, shape: Sequence[int], device=None) -> "Tensor":
        return cls.full(shape, 1.0, device)

    @classmethod
    def full(cls, shape: Sequence[int], value: float, device=None) -> "Tensor":
        device = device or default_device()
        shape = tuple(shape)
        if device.kind == "naive":
            return cls._wrap(nb.full(shape, float(value)), device)
        array = np.full(shape, value, dtype=np.float32)
        if device.kind == "eager":
            return cls._wrap(array, device)
        return cls._wrap(device.runtime.source(array), device)

    @classmethod
    def randn(
        cls, shape: Sequence[int], device=None, seed: Optional[int] = None, scale=1.0
    ) -> "Tensor":
        rng = np.random.default_rng(seed)
        array = (rng.standard_normal(tuple(shape)) * scale).astype(np.float32)
        return cls(array, device)

    @classmethod
    def arange(cls, n: int, device=None) -> "Tensor":
        return cls(np.arange(n, dtype=np.float32), device)

    @classmethod
    def scalar(cls, value: float, device=None) -> "Tensor":
        return cls.full((), value, device)

    def zeros_like(self) -> "Tensor":
        return Tensor.zeros(self.shape, self.device)

    def ones_like(self) -> "Tensor":
        return Tensor.ones(self.shape, self.device)

    # -- shape & observation ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self._impl.shape)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    def numpy(self) -> np.ndarray:
        """Observe the tensor's contents (a materialization point)."""
        kind = self.device.kind
        if kind == "naive":
            return np.asarray(nb.to_nested(self._impl), dtype=np.float32).reshape(
                self._impl.shape
            )
        if kind == "eager":
            self.device.dispatcher.sync()
            return self._impl
        (value,) = self.device.runtime.materialize([self._impl])
        self.device.runtime.sync()
        return value

    def item(self) -> float:
        if self.size != 1:
            raise ShapeError(f"item() on tensor of shape {self.shape}")
        return float(self.numpy().reshape(()))

    def __float__(self) -> float:
        return self.item()

    def __bool__(self) -> bool:
        return bool(self.item() != 0.0)

    def __repr__(self) -> str:
        if self.device.kind == "lazy" and not self._impl.is_source:
            return f"Tensor(<unmaterialized {self.shape}>, device={self.device.name})"
        return f"Tensor({self.numpy()!r}, device={self.device.name})"

    # -- internal dispatch --------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            if other.device is not self.device:
                raise DeviceError(
                    f"tensors on different devices: {self.device} vs {other.device}"
                )
            return other
        if isinstance(other, (int, float)):
            if self.device.kind == "lazy":
                return Tensor._wrap(
                    self.device.runtime.constant(float(other)), self.device
                )
            return Tensor.full((), float(other), self.device)
        raise TypeError(f"cannot mix Tensor with {type(other).__name__}")

    def _binary(self, op: str, other) -> "Tensor":
        if not isinstance(other, (Tensor, int, float)):
            # Defer to the other operand's reflected operator (e.g. the
            # symbolic ZERO tangent's additive-identity behaviour).
            return NotImplemented
        other = self._coerce(other)
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(nb.binary(op, self._impl, other._impl), self.device)
        if kind == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS[_EAGER_BINARY[op]], (self._impl, other._impl)
            )
            return Tensor._wrap(result, self.device)
        shape = nb.broadcast_shape(self.shape, other.shape)
        node = self.device.runtime.record(op, [self._impl, other._impl], shape)
        return Tensor._wrap(node, self.device)

    def _rbinary(self, op: str, other) -> "Tensor":
        return self._coerce(other)._binary(op, self)

    def _unary(self, op: str) -> "Tensor":
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(nb.unary(op, self._impl), self.device)
        if kind == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS[_EAGER_UNARY[op]], (self._impl,)
            )
            return Tensor._wrap(result, self.device)
        node = self.device.runtime.record(op, [self._impl], self.shape)
        return Tensor._wrap(node, self.device)

    def _compare(self, direction: str, other) -> "Tensor":
        other = self._coerce(other)
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(
                nb.compare(direction, self._impl, other._impl), self.device
            )
        if kind == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS[_EAGER_COMPARE[direction]], (self._impl, other._impl)
            )
            return Tensor._wrap(result, self.device)
        shape = nb.broadcast_shape(self.shape, other.shape)
        node = self.device.runtime.record(
            "compare",
            [self._impl, other._impl],
            shape,
            dtype="pred",
            attrs={"direction": direction},
        )
        return Tensor._wrap(node, self.device)

    # -- operators ------------------------------------------------------------------

    def __add__(self, other):
        return self._binary("add", other)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary("sub", other)

    def __rsub__(self, other):
        return self._rbinary("sub", other)

    def __mul__(self, other):
        return self._binary("mul", other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary("div", other)

    def __rtruediv__(self, other):
        return self._rbinary("div", other)

    def __pow__(self, other):
        return self._binary("pow", other)

    def __neg__(self):
        return self._unary("neg")

    def __gt__(self, other):
        return self._compare("gt", other)

    def __ge__(self, other):
        return self._compare("ge", other)

    def __lt__(self, other):
        return self._compare("lt", other)

    def __le__(self, other):
        return self._compare("le", other)

    def maximum(self, other):
        return self._binary("maximum", other)

    def minimum(self, other):
        return self._binary("minimum", other)

    def select(self, on_true, on_false):
        """Elementwise ``self ? on_true : on_false`` (self is a mask)."""
        on_true = self._coerce(on_true)
        on_false = self._coerce(on_false)
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(
                nb.select(self._impl, on_true._impl, on_false._impl), self.device
            )
        if kind == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS["select"], (self._impl, on_true._impl, on_false._impl)
            )
            return Tensor._wrap(result, self.device)
        shape = nb.broadcast_shape(
            nb.broadcast_shape(self.shape, on_true.shape), on_false.shape
        )
        node = self.device.runtime.record(
            "select", [self._impl, on_true._impl, on_false._impl], shape
        )
        return Tensor._wrap(node, self.device)

    # -- math methods (dispatch targets for the generic math primitives) -----------

    def exp(self):
        return self._unary("exp")

    def log(self):
        return self._unary("log")

    def tanh(self):
        return self._unary("tanh")

    def sqrt(self):
        return self._unary("sqrt")

    def rsqrt(self):
        return self._unary("rsqrt")

    def sigmoid(self):
        return self._unary("sigmoid")

    def relu(self):
        return self._unary("relu")

    def abs(self):
        return self._unary("abs")

    __abs__ = abs

    def sign(self):
        return self._unary("sign")

    def relu_vjp(self):
        y = self.relu()
        mask = self._compare("gt", 0.0)

        def pullback(ct):
            return (mask.select(ct, 0.0),)

        return y, pullback

    def relu_jvp(self, dx):
        y = self.relu()
        mask = self._compare("gt", 0.0)
        return y, mask.select(dx, 0.0)

    # -- matmul -------------------------------------------------------------------

    def __matmul__(self, other):
        other = self._coerce(other)
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(nb.matmul(self._impl, other._impl), self.device)
        if kind == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS["matmul"], (self._impl, other._impl)
            )
            return Tensor._wrap(result, self.device)
        from repro.hlo import shapes as si
        from repro.hlo.ir import Shape

        out = si.infer_dot(Shape(self.shape), Shape(other.shape))
        node = self.device.runtime.record(
            "matmul", [self._impl, other._impl], out.dims
        )
        return Tensor._wrap(node, self.device)

    def __vjp_matmul__(self, other):
        a, b = self, self._coerce(other)
        y = a @ b

        def pullback(ct):
            return (ct @ b.T, a.T @ ct)

        return y, pullback

    @property
    def T(self) -> "Tensor":
        perm = tuple(reversed(range(self.rank)))
        return self.transposed(perm)

    # -- reductions & shape ops ------------------------------------------------------

    def sum(self, axes=None, keepdims: bool = False) -> "Tensor":
        return self._reduce("sum", axes, keepdims)

    def mean(self, axes=None, keepdims: bool = False) -> "Tensor":
        return self._reduce("mean", axes, keepdims)

    def max(self, axes=None, keepdims: bool = False) -> "Tensor":
        return self._reduce("max", axes, keepdims)

    def _reduce(self, kind: str, axes, keepdims: bool) -> "Tensor":
        if isinstance(axes, int):
            axes = (axes,)
        axes = tuple(axes) if axes is not None else None
        dev = self.device.kind
        if dev == "naive":
            return Tensor._wrap(
                nb.reduce(kind, self._impl, axes, keepdims), self.device
            )
        if dev == "eager":
            kernel = {"sum": "reduce_sum", "mean": "reduce_mean", "max": "reduce_max"}[
                kind
            ]
            result = self.device.dispatcher.dispatch(
                KERNELS[kernel], (self._impl, axes, keepdims)
            )
            return Tensor._wrap(result, self.device)
        from repro.hlo import shapes as si
        from repro.hlo.ir import Shape

        out = si.infer_reduce(Shape(self.shape), axes, keepdims)
        norm_axes = (
            tuple(a % self.rank for a in axes) if axes is not None else None
        )
        node = self.device.runtime.record(
            "reduce",
            [self._impl],
            out.dims,
            attrs={"kind": kind, "axes": norm_axes, "keepdims": keepdims},
        )
        return Tensor._wrap(node, self.device)

    def reshaped(self, dims: Sequence[int]) -> "Tensor":
        dims = tuple(dims)
        if -1 in dims:
            known = 1
            for d in dims:
                if d != -1:
                    known *= d
            dims = tuple(self.size // known if d == -1 else d for d in dims)
        dev = self.device.kind
        if dev == "naive":
            return Tensor._wrap(nb.reshape(self._impl, dims), self.device)
        if dev == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS["reshape"], (self._impl, dims)
            )
            return Tensor._wrap(result, self.device)
        from repro.hlo import shapes as si
        from repro.hlo.ir import Shape

        out = si.infer_reshape(Shape(self.shape), dims)
        node = self.device.runtime.record(
            "reshape", [self._impl], out.dims, attrs={"dims": dims}
        )
        return Tensor._wrap(node, self.device)

    def transposed(self, perm: Sequence[int]) -> "Tensor":
        perm = tuple(perm)
        dev = self.device.kind
        if dev == "naive":
            return Tensor._wrap(nb.transpose(self._impl, perm), self.device)
        if dev == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS["transpose"], (self._impl, perm)
            )
            return Tensor._wrap(result, self.device)
        from repro.hlo import shapes as si
        from repro.hlo.ir import Shape

        out = si.infer_transpose(Shape(self.shape), perm)
        node = self.device.runtime.record(
            "transpose", [self._impl], out.dims, attrs={"perm": perm}
        )
        return Tensor._wrap(node, self.device)

    def broadcast_to(self, dims: Sequence[int]) -> "Tensor":
        dims = tuple(dims)
        if self.shape == dims:
            return self
        dev = self.device.kind
        if dev == "naive":
            return Tensor._wrap(nb.broadcast_to(self._impl, dims), self.device)
        if dev == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS["broadcast_to"], (self._impl, dims)
            )
            return Tensor._wrap(np.ascontiguousarray(result), self.device)
        node = self.device.runtime.record(
            "broadcast_to", [self._impl], dims, attrs={"dims": dims}
        )
        return Tensor._wrap(node, self.device)

    def sum_to_match(self, target_shape) -> "Tensor":
        """Reduce broadcast dimensions so this tensor has ``target_shape``.

        The unbroadcast operation pullbacks use to route cotangents back to
        the pre-broadcast operand shapes."""
        target_shape = tuple(target_shape)
        if self.shape == target_shape:
            return self
        if self.device.kind == "naive":
            return Tensor._wrap(
                nb.sum_to_match(self._impl, target_shape), self.device
            )
        rank = self.rank
        lead = rank - len(target_shape)
        axes = tuple(range(lead)) + tuple(
            i + lead
            for i, d in enumerate(target_shape)
            if d == 1 and self.shape[i + lead] != 1
        )
        out = self.sum(axes=axes, keepdims=False) if axes else self
        if out.shape != target_shape:
            out = out.reshaped(target_shape)
        return out

    # -- indexing ---------------------------------------------------------------------

    def __len__(self) -> int:
        if self.rank == 0:
            raise TypeError("len() of a 0-d tensor")
        return self.shape[0]

    def __getitem__(self, index):
        """Row indexing and slicing along axis 0 (differentiable)."""
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise NotImplementedError("strided tensor slices")
            start, stop, _ = index.indices(self.shape[0])
            return self._slice_rows(start, stop)
        if isinstance(index, (int, np.integer)):
            return self._index_row(int(index))
        raise TypeError(f"unsupported tensor index {index!r}")

    def _index_row(self, i: int) -> "Tensor":
        n = self.shape[0]
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"index {i} out of range for axis of size {n}")
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(nb.index_row(self._impl, i), self.device)
        row = self._slice_rows(i, i + 1)
        return row.reshaped(self.shape[1:])

    def _slice_rows(self, start: int, stop: int) -> "Tensor":
        stop = max(stop, start)
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(nb.slice_rows(self._impl, start, stop), self.device)
        starts = (start,) + (0,) * (self.rank - 1)
        sizes = (stop - start,) + self.shape[1:]
        if kind == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS["slice"], (self._impl, starts, sizes)
            )
            return Tensor._wrap(result, self.device)
        node = self.device.runtime.record(
            "slice", [self._impl], sizes, attrs={"starts": starts, "sizes": sizes}
        )
        return Tensor._wrap(node, self.device)

    def _pad_rows(self, before: int, after: int) -> "Tensor":
        kind = self.device.kind
        if kind == "naive":
            return Tensor._wrap(nb.pad_rows(self._impl, before, after), self.device)
        paddings = ((before, after),) + ((0, 0),) * (self.rank - 1)
        out_shape = (self.shape[0] + before + after,) + self.shape[1:]
        if kind == "eager":
            result = self.device.dispatcher.dispatch(
                KERNELS["pad"], (self._impl, paddings)
            )
            return Tensor._wrap(result, self.device)
        node = self.device.runtime.record(
            "pad", [self._impl], out_shape, attrs={"paddings": paddings}
        )
        return Tensor._wrap(node, self.device)

    def __slice_vjp__(self, start, stop):
        """Pullback of ``self[start:stop]``: zero-pad the cotangent back."""
        n = self.shape[0]
        lo, hi, _ = slice(start, stop).indices(n)
        hi = max(hi, lo)
        piece = self._slice_rows(lo, hi)

        def pullback(ct):
            if not isinstance(ct, Tensor):
                ct = Tensor(ct, self.device)
            return (ct._pad_rows(lo, n - hi), None, None)

        return piece, pullback

    def __subscript_vjp__(self, i: int):
        """Pullback of ``self[i]``: embed the cotangent as one zero-padded
        row — the tensor counterpart of the Appendix B subscript adjoint."""
        n = self.shape[0]
        if i < 0:
            i += n
        row = self._index_row(i)

        def pullback(ct):
            if not isinstance(ct, Tensor):
                ct = Tensor(ct, self.device)
            expanded = ct.reshaped((1,) + self.shape[1:])
            return (expanded._pad_rows(i, n - 1 - i), None)

        return row, pullback

    # -- Differentiable conformance ---------------------------------------------------

    def __move__(self, tangent) -> "Tensor":
        return self + tangent

    def move_(self, tangent) -> None:
        """In-place exponential map: rebind this variable's storage.

        Mutable value semantics: no other tensor value can observe this
        mutation, because every operation produced fresh storage."""
        from repro.core.differentiable import ZERO

        if tangent is ZERO:
            return
        updated = self + tangent
        self._impl = updated._impl

    def __tangent_zero__(self) -> "Tensor":
        return self.zeros_like()

    def __cotangent_one__(self) -> "Tensor":
        if self.size != 1:
            from repro.errors import ReproError

            raise ReproError(
                "gradient requires a scalar loss; this tensor has shape "
                f"{self.shape}"
            )
        return self.ones_like()
