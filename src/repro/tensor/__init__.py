"""Tensors & lazy tensors (Section 3): one API, three implementations."""

from repro.tensor import ops  # noqa: F401  (registers tensor primitives)
from repro.tensor.api import LazyTensorBarrier
from repro.tensor.device import (
    Device,
    default_device,
    eager_device,
    lazy_device,
    naive_device,
    set_default_device,
    using_device,
)
from repro.tensor.ops import (
    avg_pool2d,
    tensor_concat,
    conv2d,
    flatten_batch,
    matmul,
    max_pool2d,
    mse_loss,
    one_hot,
    softmax_cross_entropy,
    tensor_broadcast_to,
    tensor_max,
    tensor_mean,
    tensor_reshape,
    tensor_sum,
    tensor_transpose,
)
from repro.tensor.tensor import Tensor

__all__ = [
    "LazyTensorBarrier",
    "tensor_concat",
    "Device",
    "default_device",
    "eager_device",
    "lazy_device",
    "naive_device",
    "set_default_device",
    "using_device",
    "avg_pool2d",
    "conv2d",
    "flatten_batch",
    "matmul",
    "max_pool2d",
    "mse_loss",
    "one_hot",
    "softmax_cross_entropy",
    "tensor_broadcast_to",
    "tensor_max",
    "tensor_mean",
    "tensor_reshape",
    "tensor_sum",
    "tensor_transpose",
    "Tensor",
]
