"""The LazyTensor implementation (Section 3.3).

Instead of dispatching to pre-compiled kernels, operations *record a
dynamic trace* — an in-memory DAG of :class:`TraceNode` objects (Figure 4).
Nothing executes until the program observes a tensor's contents (or an
explicit :func:`repro.tensor.api.LazyTensorBarrier`), at which point the
trace fragment is lowered to HLO, JIT-compiled (with the trace-hash →
executable cache of Section 3.4), and run.

Because tensors that already hold data enter new traces as *parameters*,
the per-step trace of a training loop hashes identically across steps and
compiles exactly once; only the (cheap, but real) tracing overhead recurs
each iteration — precisely the cost structure the paper describes.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Optional, Sequence

import numpy as np

from repro.errors import HloError
from repro.hlo import shapes as si
from repro.hlo.builder import HloBuilder
from repro.hlo.compiler import _COMPARE, STATS as COMPILER_STATS
from repro.hlo.compiler import AsyncCompiler, compile_module
from repro.hlo.ir import Shape
from repro.runtime.costmodel import EngineProfile
from repro.runtime.device import SimDevice
from repro.runtime.kernels import ITEMSIZE, KERNELS


class TraceNode:
    """One recorded operation (or materialized source) in a trace DAG."""

    _ids = itertools.count()

    __slots__ = ("id", "op", "inputs", "attrs", "shape", "dtype", "data", "__weakref__")

    def __init__(
        self,
        op: str,
        inputs: Sequence["TraceNode"],
        shape: tuple[int, ...],
        dtype: str = "f32",
        attrs: Optional[dict] = None,
        data: Optional[np.ndarray] = None,
    ) -> None:
        self.id = next(TraceNode._ids)
        self.op = op
        self.inputs = list(inputs)
        self.attrs = attrs or {}
        self.shape = tuple(shape)
        self.dtype = dtype
        self.data = data

    @property
    def is_source(self) -> bool:
        return self.data is not None

    def __repr__(self) -> str:
        src = " (source)" if self.is_source else ""
        return f"<TraceNode {self.op}.{self.id} {self.shape}{src}>"


class LazyRuntime:
    """Per-device tracing state: the live-tensor set, clocks, and counters."""

    def __init__(
        self,
        sim: SimDevice,
        engine: EngineProfile,
        auto_barrier_threshold: Optional[int] = None,
        async_compiler: Optional[AsyncCompiler] = None,
        codegen: bool = False,
    ) -> None:
        self.sim = sim
        self.engine = engine
        #: When set, compiled fragments run as translation-validated flat
        #: NumPy step functions (``repro.hlo.codegen``); a fragment whose
        #: translation the validator rejects runs interpreted instead.
        self.codegen = codegen
        self.host_time = 0.0
        self.ops_traced = 0
        self.materializations = 0
        self.compiles_triggered = 0
        #: When set, cache misses compile in the background on this worker
        #: (shared across replicas for cross-replica single-flight) while
        #: the missing step executes its fragment op-by-op eagerly.
        self.async_compiler = async_compiler
        self.async_compile_hits = 0
        self.async_fallback_steps = 0
        #: Section 3.4's future work, implemented: when set, a trace
        #: fragment is compiled and dispatched automatically once it grows
        #: past this many ops — no user annotations required.  Reassignable
        #: at any point (validated by the property setter below).
        self.auto_barrier_threshold = auto_barrier_threshold
        self.ops_since_cut = 0
        self.auto_cuts = 0
        #: Callbacks ``observer(targets, reason)`` invoked with every trace
        #: fragment *before* it is lowered and executed (reason is one of
        #: ``"observe"``, ``"barrier"``, ``"auto_cut"``).  The static
        #: trace-stability analyzer hooks here to snapshot fragments while
        #: their DAG structure is still intact (execution consumes it).
        self.fragment_observers: list = []
        #: Tensors currently alive on this device; the nodes they hold are
        #: what a barrier must materialize.  (Weak: dead intermediates of a
        #: trace are never barrier roots, which both preserves fusion and
        #: keeps per-step trace fingerprints identical.)
        self.live_tensors: "weakref.WeakSet" = weakref.WeakSet()
        #: When enabled, every executed fragment's pre-optimization text and
        #: parameter values are stashed (used to extract step programs for
        #: the baseline framework engines).
        self.capture_traces = False
        self.captured_traces: list[tuple[str, list]] = []

    def reset(self) -> None:
        self.host_time = 0.0
        self.ops_traced = 0
        self.materializations = 0
        self.compiles_triggered = 0
        self.ops_since_cut = 0
        self.auto_cuts = 0
        self.async_compile_hits = 0
        self.async_fallback_steps = 0
        self.sim.reset()

    @property
    def auto_barrier_threshold(self) -> Optional[int]:
        return self._auto_barrier_threshold

    @auto_barrier_threshold.setter
    def auto_barrier_threshold(self, value: Optional[int]) -> None:
        if value is not None:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"auto_barrier_threshold must be an int or None, "
                    f"got {value!r}"
                )
            if value < 1:
                raise ValueError(
                    f"auto_barrier_threshold must be >= 1, got {value}"
                )
        self._auto_barrier_threshold = value

    def trace_stats(self) -> dict:
        """Tracing counters for reporting: recorded ops, cuts, compiles."""
        stats = {
            "ops_traced": self.ops_traced,
            "ops_since_cut": self.ops_since_cut,
            "materializations": self.materializations,
            "compiles_triggered": self.compiles_triggered,
            "auto_cuts": self.auto_cuts,
            "auto_barrier_threshold": self.auto_barrier_threshold,
        }
        if self.async_compiler is not None:
            stats["async_compile_hits"] = self.async_compile_hits
            stats["async_fallback_steps"] = self.async_fallback_steps
            stats["async_compile"] = self.async_compiler.stats_dict()
        return stats

    @property
    def elapsed(self) -> float:
        return max(self.host_time, self.sim.busy_until)

    def sync(self) -> float:
        self.host_time = max(self.host_time, self.sim.busy_until)
        return self.host_time

    # -- recording -------------------------------------------------------------

    def record(
        self,
        op: str,
        inputs: Sequence[TraceNode],
        shape: tuple[int, ...],
        dtype: str = "f32",
        attrs: Optional[dict] = None,
    ) -> TraceNode:
        node = TraceNode(op, inputs, shape, dtype, attrs)
        self.host_time += self.engine.trace_op_overhead
        self.ops_traced += 1
        self.ops_since_cut += 1
        if (
            self.auto_barrier_threshold is not None
            and self.ops_since_cut >= self.auto_barrier_threshold
        ):
            self._auto_cut(node)
        return node

    def _auto_cut(self, pending: TraceNode) -> None:
        """Automatically compile-and-dispatch the grown trace fragment.

        Cuts at the current frontier: every live tensor plus the op just
        recorded (which no Tensor holds yet) materializes as one fragment.
        """
        seen: dict[int, TraceNode] = {pending.id: pending}
        for tensor in list(self.live_tensors):
            node = tensor._impl
            if isinstance(node, TraceNode) and not node.is_source:
                seen[node.id] = node
        self.auto_cuts += 1
        self._execute([seen[i] for i in sorted(seen)], reason="auto_cut")

    def source(self, array: np.ndarray) -> TraceNode:
        array = np.asarray(array, dtype=np.float32)
        return TraceNode("source", [], array.shape, "f32", data=array)

    def constant(self, value: float) -> TraceNode:
        # Scalar literals are embedded in the trace (they recur identically
        # every step, so they do not hurt cache hits).
        return TraceNode(
            "constant", [], (), "f32", attrs={"value": float(value)}
        )

    # -- materialization ----------------------------------------------------------

    def materialize(self, nodes: Sequence[TraceNode]) -> list[np.ndarray]:
        """Cut the trace at ``nodes``: compile + run their fused fragment."""
        pending = [n for n in nodes if not n.is_source]
        if pending:
            self._execute(pending)
        return [n.data for n in nodes]

    def register_tensor(self, tensor) -> None:
        self.live_tensors.add(tensor)

    def barrier(self) -> None:
        """Materialize every live tensor (``LazyTensorBarrier()``)."""
        seen: dict[int, TraceNode] = {}
        for tensor in list(self.live_tensors):
            node = tensor._impl
            if isinstance(node, TraceNode) and not node.is_source:
                seen[node.id] = node
        pending = [seen[i] for i in sorted(seen)]
        if pending:
            self._execute(pending, reason="barrier")

    def _execute(self, targets: list[TraceNode], reason: str = "observe") -> None:
        for observer in self.fragment_observers:
            observer(targets, reason)
        from repro.runtime import memory

        # Inside a trace_attribution scope the run's transient peak is
        # recorded against the trace's canonical cache key — the dynamic
        # oracle the static memory planner cross-checks its certificates
        # against.  The key must be computed *before* execution consumes
        # the DAG, which is why attribute_trace takes a thunk and calls it
        # eagerly (and never calls it when attribution is off).
        def _trace_key() -> str:
            from repro.analysis.tracing.canonical import canonicalize

            return canonicalize(targets).digest

        with memory.attribute_trace(_trace_key):
            self._execute_fragment(targets)

    def _execute_fragment(self, targets: list[TraceNode]) -> None:
        if self.async_compiler is not None:
            self._execute_async(targets)
            return
        module, param_nodes = _lower_to_hlo(targets)
        if self.capture_traces:
            from repro.hlo.printer import print_module

            self.captured_traces.append(
                (print_module(module), [p.data for p in param_nodes])
            )
        compiles_before = COMPILER_STATS.compiles
        executable = compile_module(module, codegen=self.codegen)
        if COMPILER_STATS.compiles > compiles_before:
            # A genuinely new trace: pay JIT compilation.
            self.compiles_triggered += 1
            self.host_time += (
                self.engine.compile_cost_base
                + self.engine.compile_cost_per_op * len(executable.order)
            )
        args = [p.data for p in param_nodes]
        self.sim.busy_until = max(self.sim.busy_until, self.host_time)
        results = executable.run(args, device=self.sim, host_time=self.host_time)
        self._consume(targets, results)

    def _execute_async(self, targets: list[TraceNode]) -> None:
        """Materialize without ever stalling the host on the JIT.

        The canonical trace key (computed *before* lowering, on the intact
        DAG — ``repro.analysis.tracing.canonical``) addresses the async
        cache.  A hit runs the compiled executable; a miss kicks
        compilation to the background worker and executes this fragment
        op-by-op eagerly, bit-identically to the compiled path.
        """
        # The canonicalizer lives in the analysis layer but depends only on
        # the TraceNode duck type; import lazily to keep layering acyclic.
        from repro.analysis.tracing.canonical import canonicalize

        key = canonicalize(targets).digest
        if self.codegen:
            # Separate keyspace: a shared AsyncCompiler must never hand an
            # interpreted replica a generated step function or vice versa.
            key = "codegen:" + key
        executable = self.async_compiler.lookup(key)
        if executable is not None:
            self.async_compile_hits += 1
            _, param_nodes = _lower_to_hlo(targets)
            args = [p.data for p in param_nodes]
            self.sim.busy_until = max(self.sim.busy_until, self.host_time)
            results = executable.run(
                args, device=self.sim, host_time=self.host_time
            )
            self._consume(targets, results)
            return
        # Miss: lower now (the execution below consumes the DAG), compile
        # in the background, run this step op-by-op.
        module, _ = _lower_to_hlo(targets)
        self.async_compiler.submit(
            key, lambda: compile_module(module, codegen=self.codegen)
        )
        self.async_compiler.note_fallback()
        self.async_fallback_steps += 1
        results = self._eval_fragment_eager(targets)
        self._consume(targets, results)

    def _consume(self, targets: list[TraceNode], results) -> None:
        """Store materialized values and release the executed fragment."""
        self.materializations += 1
        if len(targets) == 1:
            results = (results,)
        from repro.runtime import memory

        for node, value in zip(targets, results):
            node.data = np.asarray(value, dtype=np.float32)
            # Views (e.g. a broadcast or transposed root) allocate nothing:
            # tracking them would double-count their base buffer's bytes.
            # track_buffer additionally dedups by id, so an output that the
            # executor already accounted as an intermediate counts once.
            if node.data.base is None:
                memory.track_buffer(node.data)
            node.inputs = []  # release the consumed trace fragment
            node.attrs = {}
            node.op = "source"
        self.ops_since_cut = 0

    def _eval_fragment_eager(self, targets: list[TraceNode]):
        """Op-by-op fallback: evaluate the DAG with the same NumPy kernels
        the compiled path lowers to (results are bit-identical), charging
        eager per-op dispatch on the host clock and one unfused kernel per
        op on the device clock."""
        values: dict[int, np.ndarray] = {}
        for node in _fragment_postorder(targets):
            if node.is_source:
                values[node.id] = node.data
                continue
            if node.op == "constant":
                values[node.id] = np.asarray(node.attrs["value"], dtype=np.float32)
                continue
            args = [values[i.id] for i in node.inputs]
            result = _eval_trace_node(node, args)
            values[node.id] = result
            self.host_time += self.engine.fallback_op_overhead
            out_elems = int(np.prod(node.shape)) if node.shape else 1
            in_elems = sum(
                int(np.prod(i.shape)) if i.shape else 1 for i in node.inputs
            )
            flops = _FALLBACK_FLOPS_PER_ELEMENT.get(node.op, 1.0) * out_elems
            if node.op == "matmul":
                k = node.inputs[0].shape[-1] if node.inputs[0].shape else 1
                flops = 2.0 * out_elems * k
            self.sim.busy_until = max(self.sim.busy_until, self.host_time)
            self.sim.launch_fused(
                1, flops, (out_elems + in_elems) * ITEMSIZE, self.host_time
            )
        if len(targets) == 1:
            return values[targets[0].id]
        return tuple(values[t.id] for t in targets)


#: Trace op name -> HloBuilder lowering.  Most map one-to-one.
def _lower_to_hlo(targets: list[TraceNode]):
    builder = HloBuilder("trace")
    mapping: dict[int, object] = {}
    param_nodes: list[TraceNode] = []

    def lower(root: TraceNode):
        # Iterative post-order walk: unrolled training traces can be far
        # deeper than Python's recursion limit.
        stack: list[tuple[TraceNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in mapping:
                continue
            if node.is_source:
                param_nodes.append(node)
                mapping[node.id] = builder.parameter(Shape(tuple(node.shape)))
                continue
            if node.op == "constant":
                mapping[node.id] = builder.constant(node.attrs["value"])
                continue
            if expanded:
                inputs = [mapping[i.id] for i in node.inputs]
                mapping[node.id] = _emit(builder, node, inputs)
            else:
                stack.append((node, True))
                for operand in reversed(node.inputs):
                    if operand.id not in mapping:
                        stack.append((operand, False))
        return mapping[root.id]

    roots = [lower(t) for t in targets]
    root = roots[0] if len(roots) == 1 else builder.tuple(roots)
    module = builder.build(root, module_name="trace_fragment")
    return module, param_nodes


_UNARY = {
    "neg": "negate",
    "exp": "exponential",
    "log": "log",
    "tanh": "tanh",
    "sqrt": "sqrt",
    "rsqrt": "rsqrt",
    "sigmoid": "logistic",
    "relu": "relu",
    "abs": "abs",
    "sign": "sign",
}

_BINARY = {
    "add": "add",
    "sub": "subtract",
    "mul": "multiply",
    "div": "divide",
    "pow": "power",
    "maximum": "maximum",
    "minimum": "minimum",
}


def _emit(builder: HloBuilder, node: TraceNode, inputs):
    op = node.op
    if op in _UNARY:
        return builder.unary(_UNARY[op], inputs[0])
    if op in _BINARY:
        a, b = inputs
        # Explicit broadcasts keep HLO shapes static.
        dims = si.broadcast_shapes(a.shape, b.shape)
        a = builder.broadcast(a, dims)
        b = builder.broadcast(b, dims)
        return builder.binary(_BINARY[op], a, b)
    if op == "compare":
        a, b = inputs
        dims = si.broadcast_shapes(a.shape, b.shape)
        a = builder.broadcast(a, dims)
        b = builder.broadcast(b, dims)
        return builder.binary("compare", a, b, comparison=node.attrs["direction"])
    if op == "select":
        pred, on_true, on_false = inputs
        dims = si.broadcast_shapes(pred.shape, on_true.shape)
        dims = si.broadcast_shapes(Shape(dims), on_false.shape)
        return builder.select(
            builder.broadcast(pred, dims),
            builder.broadcast(on_true, dims),
            builder.broadcast(on_false, dims),
        )
    if op == "matmul":
        return builder.dot(inputs[0], inputs[1])
    if op == "conv2d":
        return builder.convolution(
            inputs[0], inputs[1], node.attrs["stride"], node.attrs["padding"]
        )
    if op == "conv2d_grad_input":
        return builder.conv_grad_input(
            inputs[0],
            inputs[1],
            node.attrs["input_dims"],
            node.attrs["stride"],
            node.attrs["padding"],
        )
    if op == "conv2d_grad_filter":
        return builder.conv_grad_filter(
            inputs[0],
            inputs[1],
            node.attrs["filter_dims"],
            node.attrs["stride"],
            node.attrs["padding"],
        )
    if op == "reduce":
        return builder.reduce(
            inputs[0], node.attrs["kind"], node.attrs["axes"], node.attrs["keepdims"]
        )
    if op == "reshape":
        return builder.reshape(inputs[0], node.attrs["dims"])
    if op == "transpose":
        return builder.transpose(inputs[0], node.attrs["perm"])
    if op == "broadcast_to":
        return builder.broadcast(inputs[0], node.attrs["dims"])
    if op == "avg_pool":
        return builder.avg_pool(inputs[0], node.attrs["pool"], node.attrs["stride"])
    if op == "avg_pool_grad":
        return builder.avg_pool_grad(
            inputs[0], node.attrs["input_dims"], node.attrs["pool"], node.attrs["stride"]
        )
    if op == "max_pool":
        return builder.max_pool(inputs[0], node.attrs["pool"], node.attrs["stride"])
    if op == "max_pool_grad":
        return builder.max_pool_grad(
            inputs[0], inputs[1], node.attrs["pool"], node.attrs["stride"]
        )
    if op == "one_hot":
        return builder.one_hot(inputs[0], node.attrs["depth"])
    if op == "softmax_ce":
        return builder.softmax_ce(inputs[0], inputs[1])
    if op == "softmax_ce_grad":
        return builder.softmax_ce_grad(inputs[0], inputs[1])
    if op == "pad":
        return builder.pad(inputs[0], node.attrs["paddings"])
    if op == "slice":
        return builder.slice(inputs[0], node.attrs["starts"], node.attrs["sizes"])
    if op == "concat":
        return builder.concatenate(inputs, node.attrs["axis"])
    raise HloError(f"no HLO lowering for traced op {op!r}")


# ---------------------------------------------------------------------------
# Op-by-op fallback evaluation (async-compile misses).
# ---------------------------------------------------------------------------

_K = KERNELS

#: Transcendentals cost ~10 flops/element on the roofline, matching the
#: compiled path's per-instruction cost table.
_FALLBACK_FLOPS_PER_ELEMENT = {
    "exp": 10.0,
    "log": 10.0,
    "tanh": 10.0,
    "sigmoid": 10.0,
    "pow": 10.0,
    "sqrt": 4.0,
    "rsqrt": 4.0,
}

_REDUCE_KERNELS = {"sum": "reduce_sum", "mean": "reduce_mean", "max": "reduce_max"}


def _fragment_postorder(targets: Sequence[TraceNode]) -> list[TraceNode]:
    """The exact traversal `_lower_to_hlo` uses, without building HLO."""
    seen: set[int] = set()
    order: list[TraceNode] = []
    for root in targets:
        stack: list[tuple[TraceNode, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in seen:
                continue
            if node.is_source or node.op == "constant" or expanded:
                seen.add(node.id)
                order.append(node)
                continue
            stack.append((node, True))
            for operand in reversed(node.inputs):
                if operand.id not in seen:
                    stack.append((operand, False))
    return order


def _eval_trace_node(node: TraceNode, args: list):
    """Evaluate one traced op with the kernels its lowering compiles to."""
    op = node.op
    if op in _UNARY:
        return _K[op](args[0])
    if op in _BINARY:
        return _K[op](args[0], args[1])
    if op == "compare":
        return _COMPARE[node.attrs["direction"]](args[0], args[1])
    if op == "select":
        pred, on_true, on_false = np.broadcast_arrays(*args)
        return _K["select"](pred, on_true, on_false)
    if op == "matmul":
        return _K["matmul"](args[0], args[1])
    if op == "conv2d":
        return _K["conv2d"](args[0], args[1], node.attrs["stride"], node.attrs["padding"])
    if op == "conv2d_grad_input":
        return _K["conv2d_grad_input"](
            args[0],
            args[1],
            node.attrs["input_dims"],
            node.attrs["stride"],
            node.attrs["padding"],
        )
    if op == "conv2d_grad_filter":
        return _K["conv2d_grad_filter"](
            args[0],
            args[1],
            node.attrs["filter_dims"],
            node.attrs["stride"],
            node.attrs["padding"],
        )
    if op == "reduce":
        kernel = _REDUCE_KERNELS[node.attrs["kind"]]
        return _K[kernel](args[0], node.attrs["axes"], node.attrs["keepdims"])
    if op == "reshape":
        return _K["reshape"](args[0], node.attrs["dims"])
    if op == "transpose":
        return _K["transpose"](args[0], node.attrs["perm"])
    if op == "broadcast_to":
        return _K["broadcast_to"](args[0], node.attrs["dims"])
    if op == "avg_pool":
        return _K["avg_pool2d"](args[0], node.attrs["pool"], node.attrs["stride"])
    if op == "avg_pool_grad":
        return _K["avg_pool2d_grad"](
            args[0], node.attrs["input_dims"], node.attrs["pool"], node.attrs["stride"]
        )
    if op == "max_pool":
        return _K["max_pool2d"](args[0], node.attrs["pool"], node.attrs["stride"])
    if op == "max_pool_grad":
        return _K["max_pool2d_grad"](
            args[0], args[1], node.attrs["pool"], node.attrs["stride"]
        )
    if op == "one_hot":
        return _K["one_hot"](args[0], node.attrs["depth"])
    if op == "softmax_ce":
        return _K["softmax_cross_entropy"](args[0], args[1])
    if op == "softmax_ce_grad":
        return _K["softmax_cross_entropy_grad"](args[0], args[1])
    if op == "pad":
        return _K["pad"](args[0], node.attrs["paddings"])
    if op == "slice":
        return _K["slice"](args[0], node.attrs["starts"], node.attrs["sizes"])
    if op == "concat":
        return _K["concat"](*args, node.attrs["axis"])
    raise HloError(f"no fallback evaluation for traced op {op!r}")
