"""``inout`` parameters: unique borrows with enforced exclusivity.

Swift's ``inout`` superficially resembles pass-by-reference but preserves
value semantics because the borrow is guaranteed unique (Section 4 and
Appendix A).  :class:`InoutRef` reproduces the convention: a callee
receives a handle through which it may read and write one storage
location; overlapping borrows of the same location raise
:class:`~repro.errors.BorrowError` — the analogue of Swift's exclusivity
checking.

Figure 8's equivalence — any ``inout`` call can be rewritten as
pass-by-value plus reassignment — is provided by :func:`as_functional` and
asserted in tests.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Any, Callable

from repro.errors import BorrowError

#: Currently-live unique borrows: (id(owner), key) -> owner.  The value is a
#: *strong* reference to the owner: while a borrow is live, the owner cannot
#: be garbage collected, so its ``id`` cannot be reused by a different
#: object (which would make an unrelated borrow spuriously "overlapping").
_ACTIVE_BORROWS: dict[tuple[int, Any], Any] = {}


def _release_token(token: tuple[int, Any]) -> None:
    """Drop a borrow token (called by ``end()`` or the GC finalizer)."""
    _ACTIVE_BORROWS.pop(token, None)


def active_borrow_count() -> int:
    """Number of currently-live unique borrows (tests and leak checks)."""
    return len(_ACTIVE_BORROWS)


class InoutRef:
    """A unique, revocable borrow of ``owner.key`` (attribute or index)."""

    __slots__ = ("_owner", "_key", "_kind", "_token", "_live", "_finalizer", "__weakref__")

    def __init__(self, owner: Any, key: Any, kind: str) -> None:
        token = (id(owner), key)
        if token in _ACTIVE_BORROWS:
            raise BorrowError(
                f"overlapping inout borrows of {kind} {key!r}: "
                "simultaneous access violates exclusivity"
            )
        _ACTIVE_BORROWS[token] = owner
        self._owner = owner
        self._key = key
        self._kind = kind
        self._token = token
        self._live = True
        # If the ref leaks (never ``end()``ed and garbage collected), the
        # finalizer releases the token so the owner isn't pinned forever and
        # later borrows of a recycled id can't spuriously conflict.  The
        # callback closes over the token only — never over ``self``.
        self._finalizer = weakref.finalize(self, _release_token, token)

    def get(self):
        self._check()
        if self._kind == "attr":
            return getattr(self._owner, self._key)
        return self._owner[self._key]

    def set(self, value) -> None:
        self._check()
        if self._kind == "attr":
            object.__setattr__(self._owner, self._key, value)
        else:
            self._owner[self._key] = value

    def update(self, fn: Callable) -> None:
        """Read-modify-write through the borrow."""
        self.set(fn(self.get()))

    def end(self) -> None:
        if self._live:
            self._live = False
            # detach() rather than () so a later finalizer run is a no-op
            # even if the same token is re-issued to a fresh borrow.
            self._finalizer.detach()
            _release_token(self._token)

    def _check(self) -> None:
        if not self._live:
            raise BorrowError("use of inout reference after the borrow ended")

    def __enter__(self) -> "InoutRef":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


def borrow_attr(owner: Any, name: str) -> InoutRef:
    """Uniquely borrow ``owner.name`` for in-place mutation."""
    return InoutRef(owner, name, "attr")


def borrow_item(owner: Any, index: Any) -> InoutRef:
    """Uniquely borrow ``owner[index]`` for in-place mutation."""
    return InoutRef(owner, index, "item")


@contextmanager
def inout(owner: Any, key: Any):
    """``with inout(model, 'weight') as ref: ...`` — scoped unique borrow."""
    kind = "attr" if isinstance(key, str) and hasattr(owner, key) else "item"
    ref = InoutRef(owner, key, kind)
    try:
        yield ref
    finally:
        ref.end()


def call_inout(fn: Callable, ref: InoutRef, *args):
    """Call ``fn(ref, *args)`` under the borrow, ending it afterwards."""
    try:
        return fn(ref, *args)
    finally:
        ref.end()


def as_functional(fn: Callable) -> Callable:
    """Figure 8: rewrite an inout function as pass-by-value.

    ``fn(ref, *args) -> r`` becomes ``g(value, *args) -> (value', r)``.
    The two forms are semantically identical because the borrow is unique.
    """

    class _Cell:
        __slots__ = ("value",)

        def __init__(self, value):
            self.value = value

        def __getitem__(self, _):
            return self.value

        def __setitem__(self, _, value):
            self.value = value

    def functional(value, *args):
        cell = _Cell(value)
        ref = InoutRef(cell, 0, "item")
        try:
            result = fn(ref, *args)
        finally:
            ref.end()
        return cell.value, result

    return functional
