"""Copy-on-write storage: the mechanism behind mutable value semantics.

Swift value types are cheap to copy because the underlying storage is
shared until one of the sharers mutates, at which point the mutator copies
("large values are copied lazily, upon mutation, and only when shared" —
Section 4).  :class:`CowBox` reproduces that discipline explicitly, with
instrumentation so tests can assert *when* deep copies actually happen.

Python's ``=`` always binds references, so the copy that Swift performs at
assignment is spelled ``value.copy()`` here; the point of COW is that this
copy is O(1) and the deep copy is deferred to first shared mutation.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


@dataclass
class CowStats:
    """Instrumentation of copy-on-write behaviour."""

    logical_copies: int = 0  # O(1) sharing copies
    deep_copies: int = 0  # actual storage duplications

    def reset(self) -> None:
        self.logical_copies = 0
        self.deep_copies = 0


#: Process-wide default counter (benchmarks and the CLI read this).
STATS = CowStats()

#: Scoped override installed by :func:`copy_counting`.  A ``ContextVar`` so
#: concurrently-running tests (threads, async) each observe only their own
#: copies instead of corrupting one shared global.
_SCOPED_STATS: ContextVar[Optional[CowStats]] = ContextVar("cow_stats", default=None)


def current_stats() -> CowStats:
    """The counter CowBox instruments right now: scoped if inside
    :func:`copy_counting`, the global :data:`STATS` otherwise."""
    scoped = _SCOPED_STATS.get()
    return STATS if scoped is None else scoped


@contextmanager
def copy_counting(stats: Optional[CowStats] = None) -> Iterator[CowStats]:
    """Count COW events into a fresh, isolated :class:`CowStats`.

    ``with copy_counting() as stats: ...`` observes exactly the logical and
    deep copies performed inside the block, regardless of what other
    contexts do to the global counter.  Nests: the innermost scope wins.
    """
    scope = CowStats() if stats is None else stats
    token = _SCOPED_STATS.set(scope)
    try:
        yield scope
    finally:
        _SCOPED_STATS.reset(token)


class _Storage(Generic[T]):
    """Reference-counted storage cell shared between CowBox values."""

    __slots__ = ("data", "refcount")

    def __init__(self, data: T) -> None:
        self.data = data
        self.refcount = 1


class CowBox(Generic[T]):
    """A value handle over shared storage with copy-on-write mutation.

    ``duplicate()`` is the O(1) value copy; ``unique()`` returns the
    storage for mutation, deep-copying first if it is shared (the "unique
    borrow" precondition of ``inout``).
    """

    __slots__ = ("_storage", "_deep_copy")

    def __init__(self, data: T, deep_copy: Callable[[T], T]) -> None:
        self._storage = _Storage(data)
        self._deep_copy = deep_copy

    @property
    def is_shared(self) -> bool:
        return self._storage.refcount > 1

    def read(self) -> T:
        """Borrow the storage immutably (no copy, no uniqueness needed)."""
        return self._storage.data

    def duplicate(self) -> "CowBox[T]":
        """O(1) value copy: share storage, bump the reference count."""
        clone = object.__new__(CowBox)
        clone._storage = self._storage
        clone._deep_copy = self._deep_copy
        self._storage.refcount += 1
        current_stats().logical_copies += 1
        return clone

    def unique(self) -> T:
        """Borrow the storage for mutation, copying first if shared."""
        storage = self._storage
        if storage.refcount > 1:
            storage.refcount -= 1
            self._storage = _Storage(self._deep_copy(storage.data))
            current_stats().deep_copies += 1
        return self._storage.data

    def release(self) -> None:
        """Drop this handle's claim on the storage (refcount bookkeeping)."""
        self._storage.refcount -= 1

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self._storage.refcount -= 1
        except AttributeError:
            pass
