"""Mutable value semantics (Section 4 of the paper).

* :class:`ValueArray` — a COW array with value semantics (Figure 5 col. 3);
* :func:`inout` / :class:`InoutRef` — unique borrows with exclusivity
  enforcement (Appendix A);
* :func:`as_functional` — the Figure 8 inout ⇄ pass-by-value equivalence;
* :data:`STATS` — copy-on-write instrumentation for tests and benchmarks.
"""

from repro.valsem.cow import STATS, CowBox, CowStats, copy_counting, current_stats
from repro.valsem.inout import (
    InoutRef,
    active_borrow_count,
    as_functional,
    borrow_attr,
    borrow_item,
    call_inout,
    inout,
)
from repro.valsem.value_array import ValueArray

__all__ = [
    "STATS",
    "CowBox",
    "CowStats",
    "copy_counting",
    "current_stats",
    "InoutRef",
    "active_borrow_count",
    "as_functional",
    "borrow_attr",
    "borrow_item",
    "call_inout",
    "inout",
    "ValueArray",
]
