"""A mutable-value-semantics array, Figure 5 column 3.

``ValueArray`` behaves like Swift's ``Array``: copies are O(1) and
logically disjoint — mutation through one value is never observable
through another — while in-place mutation of an unshared array is cheap
and does not reallocate.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.valsem.cow import CowBox


class ValueArray:
    """List-backed array with value semantics via copy-on-write."""

    __slots__ = ("_box",)

    def __init__(self, items: Iterable = ()) -> None:
        self._box = CowBox(list(items), deep_copy=list)

    @classmethod
    def _wrap(cls, box: CowBox) -> "ValueArray":
        arr = object.__new__(cls)
        arr._box = box
        return arr

    # -- value copying -------------------------------------------------------

    def copy(self) -> "ValueArray":
        """The analogue of Swift's ``var y = x``: O(1), logically disjoint."""
        return ValueArray._wrap(self._box.duplicate())

    @property
    def is_shared(self) -> bool:
        return self._box.is_shared

    # -- reads (no copy) -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._box.read())

    def __getitem__(self, index):
        data = self._box.read()
        if isinstance(index, slice):
            return ValueArray(data[index])
        return data[index]

    def __iter__(self) -> Iterator:
        return iter(list(self._box.read()))

    def __eq__(self, other) -> bool:
        if isinstance(other, ValueArray):
            return self._box.read() == other._box.read()
        if isinstance(other, list):
            return self._box.read() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"ValueArray({self._box.read()!r})"

    def to_list(self) -> list:
        return list(self._box.read())

    # -- mutation (copy-on-write) ---------------------------------------------

    def __setitem__(self, index, value) -> None:
        self._box.unique()[index] = value

    def append(self, value) -> None:
        self._box.unique().append(value)

    def extend(self, values: Iterable) -> None:
        self._box.unique().extend(values)

    def pop(self, index: int = -1):
        return self._box.unique().pop(index)

    def add_in_place(self, index, delta) -> None:
        """``xs[i] += delta`` as a single mutation."""
        data = self._box.unique()
        data[index] = data[index] + delta

    # -- Differentiable conformance -------------------------------------------

    def __move__(self, tangent) -> "ValueArray":
        from repro.core.differentiable import ZERO, move as _move

        if tangent is ZERO:
            return self
        data = self._box.read()
        if hasattr(tangent, "to_list"):
            tangent = tangent.to_list()
        return ValueArray(
            _move(v, t) if t is not ZERO else v for v, t in zip(data, tangent)
        )

    def move_(self, tangent) -> None:
        """In-place exponential map (unique borrow of the storage)."""
        from repro.core.differentiable import ZERO, move as _move

        if tangent is ZERO:
            return
        data = self._box.unique()
        if hasattr(tangent, "to_list"):
            tangent = tangent.to_list()
        for i, t in enumerate(tangent):
            if t is not ZERO:
                data[i] = _move(data[i], t)

    def __tangent_zero__(self):
        from repro.core.differentiable import ZERO

        return [ZERO] * len(self)
