"""Image-classification dataset generators and batching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.tensor import Tensor, one_hot
from repro.tensor.device import Device, default_device


@dataclass
class Dataset:
    """An in-memory labelled dataset with shuffling batch iteration."""

    images: np.ndarray  # (N, H, W, C) float32
    labels: np.ndarray  # (N,) int64
    num_classes: int

    def __len__(self) -> int:
        return len(self.images)

    def batches(
        self,
        batch_size: int,
        device: Optional[Device] = None,
        shuffle: bool = True,
        seed: int = 0,
        drop_remainder: bool = True,
    ) -> Iterator[tuple[Tensor, Tensor]]:
        """Yield ``(images, one_hot_labels)`` tensor pairs on ``device``."""
        device = device or default_device()
        order = np.arange(len(self))
        if shuffle:
            np.random.default_rng(seed).shuffle(order)
        stop = len(self) - batch_size + 1 if drop_remainder else len(self)
        for start in range(0, max(stop, 0), batch_size):
            idx = order[start : start + batch_size]
            x = Tensor(self.images[idx], device)
            y = one_hot(
                Tensor(self.labels[idx].astype(np.float32), device),
                self.num_classes,
            )
            yield x, y


def _templated_classification(
    n: int, image_size: int, channels: int, num_classes: int, noise: float, seed: int
) -> Dataset:
    """Class-dependent smooth templates + noise: learnable, synthetic."""
    rng = np.random.default_rng(seed)
    templates = rng.standard_normal(
        (num_classes, image_size, image_size, channels)
    ).astype(np.float32)
    # Smooth the templates so nearby pixels correlate (image-like).
    for _ in range(2):
        templates = (
            templates
            + np.roll(templates, 1, axis=1)
            + np.roll(templates, 1, axis=2)
        ) / 3.0
    labels = rng.integers(0, num_classes, size=n)
    images = templates[labels] + noise * rng.standard_normal(
        (n, image_size, image_size, channels)
    ).astype(np.float32)
    return Dataset(images.astype(np.float32), labels.astype(np.int64), num_classes)


def synthetic_mnist(n: int = 512, image_size: int = 28, seed: int = 0) -> Dataset:
    """MNIST-shaped data: (N, 28, 28, 1), 10 classes."""
    return _templated_classification(n, image_size, 1, 10, noise=0.5, seed=seed)


def synthetic_cifar10(n: int = 512, image_size: int = 32, seed: int = 0) -> Dataset:
    """CIFAR-10-shaped data: (N, 32, 32, 3), 10 classes."""
    return _templated_classification(n, image_size, 3, 10, noise=0.5, seed=seed)


def synthetic_imagenet(
    n: int = 256, image_size: int = 32, num_classes: int = 1000, seed: int = 0
) -> Dataset:
    """ImageNet-shaped data (spatially scaled down; see DESIGN.md)."""
    return _templated_classification(n, image_size, 3, num_classes, noise=0.5, seed=seed)
