"""Synthetic datasets shaped like the paper's workloads.

The paper trains on MNIST-class data (LeNet), CIFAR-10 (ResNet-56),
ImageNet (ResNet-50), and a proprietary spline personalization dataset.
None are available offline, so each generator produces data with matching
shapes and enough learnable structure (class-dependent templates plus
noise) that convergence-mechanics tests are meaningful; throughput
experiments are insensitive to pixel content entirely (see DESIGN.md's
substitution table).
"""

from repro.data.datasets import (
    Dataset,
    synthetic_cifar10,
    synthetic_imagenet,
    synthetic_mnist,
)
from repro.data.spline_data import SplineDataset, personalization_split

__all__ = [
    "Dataset",
    "synthetic_cifar10",
    "synthetic_imagenet",
    "synthetic_mnist",
    "SplineDataset",
    "personalization_split",
]
