"""Synthetic spline-personalization data (the Table 4 workload).

The paper's personalization model is proprietary; this generator produces
the closest public equivalent: a smooth global response curve sampled by
many users, where each user's curve is a small warp (shift + gain) of the
global one.  Global training fits the population; on-device fine-tuning
adapts the control points to one user's local data — exercising exactly
the same code path (spline evaluation + backtracking line search) as the
paper's experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SplineDataset:
    """Scalar regression pairs on [0, 1]."""

    xs: np.ndarray
    ys: np.ndarray

    def __len__(self) -> int:
        return len(self.xs)


def _global_curve(x: np.ndarray) -> np.ndarray:
    return np.sin(2.5 * np.pi * x) * 0.5 + 0.3 * x * x + 0.1


def personalization_split(
    n_global: int = 256,
    n_user: int = 48,
    noise: float = 0.02,
    user_shift: float = 0.15,
    user_gain: float = 1.3,
    seed: int = 0,
) -> tuple[SplineDataset, SplineDataset]:
    """(global anonymized dataset, one user's on-device dataset)."""
    rng = np.random.default_rng(seed)
    gx = rng.uniform(0.0, 1.0, n_global).astype(np.float64)
    gy = _global_curve(gx) + noise * rng.standard_normal(n_global)

    ux = rng.uniform(0.0, 1.0, n_user).astype(np.float64)
    uy = user_gain * _global_curve(np.clip(ux + user_shift, 0, 1)) + (
        noise * rng.standard_normal(n_user)
    )
    return SplineDataset(gx, gy), SplineDataset(ux, uy)
