"""LazyTensor trace visualisation (Figure 4).

Renders a trace DAG — as recorded by the lazy backend before
materialization — in two forms: an indented text tree for terminals and
Graphviz DOT for figures.  ``capture_forward_trace`` reproduces the
paper's Figure 4 setup: the trace of a model's forward pass.

With ``annotate=True`` (or volatile-constant positions from the
retrace-storm detector) the renderings carry the static analysis results:
the canonical cache key in the header, cut points (the fragment's roots)
marked, and step-volatile constants highlighted at their canonical
positions.  ``stability_timeline`` renders a whole captured run as a
per-step cut/compile/hit timeline.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.tensor.lazy_backend import TraceNode


def _collect(roots: Iterable[TraceNode]) -> list[TraceNode]:
    order: list[TraceNode] = []
    seen: set[int] = set()
    stack = [(r, False) for r in roots]
    while stack:
        node, expanded = stack.pop()
        if node.id in seen:
            continue
        if expanded:
            seen.add(node.id)
            order.append(node)
        else:
            stack.append((node, True))
            for operand in node.inputs:
                if operand.id not in seen:
                    stack.append((operand, False))
    return order


def _label(node: TraceNode) -> str:
    shape = "x".join(map(str, node.shape)) if node.shape else "scalar"
    if node.is_source:
        return f"source f32[{shape}]"
    attrs = ""
    if node.attrs:
        attrs = " " + ", ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
    return f"{node.op} f32[{shape}]{attrs}"


def _canonicalize(roots: list):
    # Imported lazily: the canonicalizer lives in the analysis layer, and
    # viz must stay importable without dragging the analyzers in eagerly.
    from repro.analysis.tracing.canonical import canonicalize

    return canonicalize(roots)


def trace_to_text(
    roots: Iterable[TraceNode],
    annotate: bool = False,
    volatile_positions: Sequence[int] = (),
) -> str:
    """One line per node in topological order, operands by id.

    ``annotate=True`` prefixes the static cache key and marks the cut
    points (the fragment's roots); ``volatile_positions`` — canonical
    positions from the retrace-storm detector — highlight the constants
    whose per-step churn defeats the executable cache.
    """
    roots = list(roots)
    order = _collect(roots)
    index = {node.id: i for i, node in enumerate(order)}
    lines = []
    volatile_ids: set[int] = set()
    if annotate or volatile_positions:
        canonical = _canonicalize(roots)
        volatile_ids = {
            canonical.node_ids[p]
            for p in volatile_positions
            if 0 <= p < len(canonical.node_ids)
        }
        if annotate:
            lines.append(
                f"# cache key {canonical.digest} "
                f"({canonical.n_params} params, {canonical.n_ops} ops)"
            )
    root_ids = {r.id for r in roots}
    for i, node in enumerate(order):
        operands = ", ".join(f"%{index[x.id]}" for x in node.inputs)
        line = f"%{i} = {_label(node)}" + (f" ({operands})" if operands else "")
        if node.id in volatile_ids:
            line += "   <-- step-volatile constant (promote to a trace input)"
        elif annotate and node.id in root_ids:
            line += "   <-- cut point (materialized here)"
        lines.append(line)
    return "\n".join(lines)


def trace_to_dot(
    roots: Iterable[TraceNode],
    name: str = "trace",
    annotate: bool = False,
    volatile_positions: Sequence[int] = (),
) -> str:
    """Graphviz DOT of the trace DAG (the Figure 4 rendering).

    Annotations mirror :func:`trace_to_text`: the graph label carries the
    canonical cache key, cut points get a double border, and step-volatile
    constants are filled red.
    """
    roots = list(roots)
    order = _collect(roots)
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [shape=box, fontsize=10];']
    volatile_ids: set[int] = set()
    if annotate or volatile_positions:
        canonical = _canonicalize(roots)
        volatile_ids = {
            canonical.node_ids[p]
            for p in volatile_positions
            if 0 <= p < len(canonical.node_ids)
        }
        if annotate:
            lines.append(f'  label="cache key {canonical.digest}";')
            lines.append("  labelloc=t;")
    root_ids = {r.id for r in roots} if annotate else set()
    for node in order:
        extra = ""
        if node.id in volatile_ids:
            extra = ', style=filled, fillcolor="#ffb3b3"'
        elif node.is_source:
            extra = ', style=filled, fillcolor="#dddddd"'
        if node.id in root_ids:
            extra += ", peripheries=2"
        lines.append(f'  n{node.id} [label="{_label(node)}"{extra}];')
    for node in order:
        for operand in node.inputs:
            lines.append(f"  n{operand.id} -> n{node.id};")
    lines.append("}")
    return "\n".join(lines)


def stability_timeline(report) -> str:
    """Render a :class:`~repro.analysis.tracing.stability.StabilityReport`
    as a per-step timeline: when each fragment was cut, why, under which
    canonical key, and whether the executable cache (statically) hits."""
    by_step: dict[int, list] = {}
    for fragment in report.fragments:
        by_step.setdefault(fragment.step, []).append(fragment)
    volatile_by_slot: dict[int, list] = {}
    for volatile in report.volatile_constants:
        volatile_by_slot.setdefault(volatile.slot, []).append(volatile)
    lines = []
    for step in sorted(by_step):
        for fragment in by_step[step]:
            outcome = "cache hit" if fragment.predicted_hit else "compile"
            lines.append(
                f"step {step}: fragment {fragment.slot} cut by "
                f"{fragment.reason}, key {fragment.canonical.digest} "
                f"({outcome})"
            )
        for slot, volatiles in sorted(volatile_by_slot.items()):
            for volatile in volatiles:
                if slot < len(by_step[step]):
                    lines.append(
                        f"        ^ %{volatile.position} step-volatile "
                        "constant defeats the cache"
                    )
    if not lines:
        lines.append("(no fragments cut)")
    return "\n".join(lines)


def capture_forward_trace(model, example_input):
    """Run ``model(example_input)`` on its (lazy) device and return the
    output's trace root, without materializing anything."""
    output = model(example_input)
    node = output._impl
    if not isinstance(node, TraceNode):
        raise TypeError("capture_forward_trace requires a lazy-device tensor")
    return node


def trace_summary(root: TraceNode) -> dict[str, int]:
    """Aggregate statistics of a trace: ops by kind, totals."""
    order = _collect([root])
    by_op: dict[str, int] = {}
    for node in order:
        by_op[node.op] = by_op.get(node.op, 0) + 1
    return {
        "total_nodes": len(order),
        "sources": by_op.get("source", 0),
        "operations": len(order) - by_op.get("source", 0),
        **{f"op:{k}": v for k, v in sorted(by_op.items()) if k != "source"},
    }
