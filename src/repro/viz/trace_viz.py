"""LazyTensor trace visualisation (Figure 4).

Renders a trace DAG — as recorded by the lazy backend before
materialization — in two forms: an indented text tree for terminals and
Graphviz DOT for figures.  ``capture_forward_trace`` reproduces the
paper's Figure 4 setup: the trace of a model's forward pass.
"""

from __future__ import annotations

from typing import Iterable

from repro.tensor.lazy_backend import TraceNode


def _collect(roots: Iterable[TraceNode]) -> list[TraceNode]:
    order: list[TraceNode] = []
    seen: set[int] = set()
    stack = [(r, False) for r in roots]
    while stack:
        node, expanded = stack.pop()
        if node.id in seen:
            continue
        if expanded:
            seen.add(node.id)
            order.append(node)
        else:
            stack.append((node, True))
            for operand in node.inputs:
                if operand.id not in seen:
                    stack.append((operand, False))
    return order


def _label(node: TraceNode) -> str:
    shape = "x".join(map(str, node.shape)) if node.shape else "scalar"
    if node.is_source:
        return f"source f32[{shape}]"
    attrs = ""
    if node.attrs:
        attrs = " " + ", ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
    return f"{node.op} f32[{shape}]{attrs}"


def trace_to_text(roots: Iterable[TraceNode]) -> str:
    """One line per node in topological order, operands by id."""
    order = _collect(list(roots))
    index = {node.id: i for i, node in enumerate(order)}
    lines = []
    for i, node in enumerate(order):
        operands = ", ".join(f"%{index[x.id]}" for x in node.inputs)
        lines.append(f"%{i} = {_label(node)}" + (f" ({operands})" if operands else ""))
    return "\n".join(lines)


def trace_to_dot(roots: Iterable[TraceNode], name: str = "trace") -> str:
    """Graphviz DOT of the trace DAG (the Figure 4 rendering)."""
    order = _collect(list(roots))
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [shape=box, fontsize=10];']
    for node in order:
        shape_attr = ', style=filled, fillcolor="#dddddd"' if node.is_source else ""
        lines.append(f'  n{node.id} [label="{_label(node)}"{shape_attr}];')
    for node in order:
        for operand in node.inputs:
            lines.append(f"  n{operand.id} -> n{node.id};")
    lines.append("}")
    return "\n".join(lines)


def capture_forward_trace(model, example_input):
    """Run ``model(example_input)`` on its (lazy) device and return the
    output's trace root, without materializing anything."""
    output = model(example_input)
    node = output._impl
    if not isinstance(node, TraceNode):
        raise TypeError("capture_forward_trace requires a lazy-device tensor")
    return node


def trace_summary(root: TraceNode) -> dict[str, int]:
    """Aggregate statistics of a trace: ops by kind, totals."""
    order = _collect([root])
    by_op: dict[str, int] = {}
    for node in order:
        by_op[node.op] = by_op.get(node.op, 0) + 1
    return {
        "total_nodes": len(order),
        "sources": by_op.get("source", 0),
        "operations": len(order) - by_op.get("source", 0),
        **{f"op:{k}": v for k, v in sorted(by_op.items()) if k != "source"},
    }
