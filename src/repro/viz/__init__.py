"""Trace visualisation (Figure 4), with static-analysis annotations."""

from repro.viz.trace_viz import (
    capture_forward_trace,
    stability_timeline,
    trace_summary,
    trace_to_dot,
    trace_to_text,
)

__all__ = [
    "capture_forward_trace",
    "stability_timeline",
    "trace_summary",
    "trace_to_dot",
    "trace_to_text",
]
