"""Trace visualisation (Figure 4)."""

from repro.viz.trace_viz import (
    capture_forward_trace,
    trace_summary,
    trace_to_dot,
    trace_to_text,
)

__all__ = [
    "capture_forward_trace",
    "trace_summary",
    "trace_to_dot",
    "trace_to_text",
]
