"""Simulated devices and asynchronous kernel dispatch.

Reproduces the execution discipline of Section 3.2: the host dispatches
kernels asynchronously and runs ahead; the device consumes its queue; the
host blocks only when a program *observes* tensor contents.  Numerics run
immediately (NumPy); time is accounted on a simulated clock so the
eager/lazy/graph comparisons of Tables 1–4 are deterministic and portable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime import memory
from repro.runtime.costmodel import DeviceProfile, EngineProfile
from repro.runtime.kernels import ITEMSIZE, Kernel


@dataclass
class DeviceStats:
    """Counters for one simulated device."""

    kernels_launched: int = 0
    fused_kernels: int = 0
    ops_in_fused_kernels: int = 0
    flops: float = 0.0
    traffic_bytes: float = 0.0

    def reset(self) -> None:
        self.kernels_launched = 0
        self.fused_kernels = 0
        self.ops_in_fused_kernels = 0
        self.flops = 0.0
        self.traffic_bytes = 0.0


class SimDevice:
    """One accelerator (or mobile CPU) with its own busy-until timeline."""

    def __init__(self, profile: DeviceProfile, name: str = "") -> None:
        self.profile = profile
        self.name = name or profile.name
        self.busy_until = 0.0
        self.stats = DeviceStats()
        self.memory = memory.MemoryTracker()

    def reset(self) -> None:
        self.busy_until = 0.0
        self.stats.reset()
        self.memory.reset()

    def launch(
        self, kernel: Kernel, out_shape, in_shapes, host_time: float
    ) -> float:
        """Enqueue one kernel; returns its completion time."""
        flops = kernel.flops(out_shape, in_shapes)
        traffic = kernel.traffic(out_shape, in_shapes)
        duration = self.profile.kernel_time(flops, traffic)
        start = max(host_time, self.busy_until)
        self.busy_until = start + duration
        self.stats.kernels_launched += 1
        self.stats.flops += flops
        self.stats.traffic_bytes += traffic
        return self.busy_until

    def launch_fused(
        self, n_ops: int, flops: float, traffic: float, host_time: float
    ) -> float:
        """Enqueue one *fused* kernel covering ``n_ops`` primitive ops.

        Pays a single launch overhead and streams only the region's
        external inputs/outputs — the fusion benefit XLA delivers.
        """
        duration = self.profile.kernel_time(flops, traffic)
        start = max(host_time, self.busy_until)
        self.busy_until = start + duration
        self.stats.kernels_launched += 1
        self.stats.fused_kernels += 1
        self.stats.ops_in_fused_kernels += n_ops
        self.stats.flops += flops
        self.stats.traffic_bytes += traffic
        return self.busy_until

    def allocate(self, shape) -> None:
        nbytes = int(np.prod(shape)) * ITEMSIZE if shape else ITEMSIZE
        self.memory.allocate(nbytes)
        memory.allocate(nbytes)

    def free(self, shape) -> None:
        nbytes = int(np.prod(shape)) * ITEMSIZE if shape else ITEMSIZE
        self.memory.free(nbytes)
        memory.free(nbytes)


class Dispatcher:
    """Host-side asynchronous op-by-op dispatcher (define-by-run engine).

    ``dispatch`` computes the result immediately but accounts host dispatch
    overhead and device queueing on the simulated clock.  ``sync`` models a
    materialization point: the host waits for the device queue to drain.
    """

    def __init__(self, device: SimDevice, engine: EngineProfile) -> None:
        self.device = device
        self.engine = engine
        self.host_time = 0.0
        self.ops_dispatched = 0

    def reset(self) -> None:
        self.host_time = 0.0
        self.ops_dispatched = 0
        self.device.reset()

    def dispatch(self, kernel: Kernel, args, shaped_args=None):
        """Run ``kernel`` on ``args``; returns the ndarray result."""
        result = kernel(*args)
        memory.track_buffer(result)
        out_shape = np.shape(result)
        in_shapes = [np.shape(a) for a in (shaped_args or args) if _is_tensor(a)]
        self.host_time += self.engine.per_op_overhead
        self.device.launch(kernel, out_shape, in_shapes, self.host_time)
        self.ops_dispatched += 1
        return result

    def sync(self) -> float:
        self.host_time = max(self.host_time, self.device.busy_until)
        return self.host_time

    @property
    def elapsed(self) -> float:
        """Total simulated wall time including queued device work."""
        return max(self.host_time, self.device.busy_until)


def _is_tensor(a) -> bool:
    return isinstance(a, np.ndarray)
