"""Data-parallel cluster simulation (the Table 1 substrate).

A pod of N identical accelerator cores trains synchronously: every step,
each replica computes forward+backward on its shard of the global batch,
then the pod ring-all-reduces the gradients.  The multi-replica executor
(:mod:`repro.runtime.parallel`) runs real numerics for every replica on a
thread pool and hands this simulator the per-replica compute times; the
pod's step time merges them deterministically (the synchronous step waits
for the slowest replica) and adds the all-reduce cost — bucketed and
optionally overlapped with backward compute (:class:`AllReduceConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.runtime.costmodel import (
    SINGLE_SHOT,
    AllReduceConfig,
    DeviceProfile,
    bucket_gradient_bytes,
    overlapped_allreduce_time,
)


@dataclass
class StepTiming:
    compute_time: float
    #: All-reduce time *exposed* on the step's critical path.
    allreduce_time: float
    #: Total ring time across buckets (== allreduce_time when not
    #: overlapped; the difference is what compute overlap hid).
    allreduce_total: float = None  # type: ignore[assignment]
    n_buckets: int = 1
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.allreduce_total is None:
            self.allreduce_total = self.allreduce_time

    @property
    def total(self) -> float:
        return self.compute_time + self.allreduce_time

    @property
    def hidden_allreduce(self) -> float:
        """Communication time hidden under backward compute."""
        return self.allreduce_total - self.allreduce_time


class PodSimulator:
    """Synchronous data-parallel pod of ``n_cores`` devices."""

    def __init__(
        self,
        profile: DeviceProfile,
        n_cores: int,
        allreduce: Optional[AllReduceConfig] = None,
    ) -> None:
        if n_cores < 1:
            raise ValueError("a pod needs at least one core")
        self.profile = profile
        self.n_cores = n_cores
        self.allreduce = allreduce or SINGLE_SHOT

    def step_time(
        self,
        per_replica_compute: float,
        gradient_bytes: float,
        grad_leaf_bytes: Optional[Sequence[float]] = None,
        allreduce: Optional[AllReduceConfig] = None,
    ) -> StepTiming:
        """Simulated time of one synchronous training step.

        ``grad_leaf_bytes`` (backward production order) enables bucketing;
        without it the whole gradient is one bucket of ``gradient_bytes``.
        """
        return self.step_time_multi(
            [per_replica_compute],
            gradient_bytes,
            grad_leaf_bytes=grad_leaf_bytes,
            allreduce=allreduce,
        )

    def step_time_multi(
        self,
        per_replica_computes: Sequence[float],
        gradient_bytes: float,
        grad_leaf_bytes: Optional[Sequence[float]] = None,
        allreduce: Optional[AllReduceConfig] = None,
    ) -> StepTiming:
        """Merge per-replica compute times into one synchronous step.

        The merge is deterministic and independent of host thread
        scheduling: the synchronous pod proceeds at the pace of its
        slowest replica (``max``), regardless of the order the replica
        threads finished in.
        """
        if not per_replica_computes:
            raise ValueError("need at least one replica compute time")
        compute = max(per_replica_computes)
        config = allreduce or self.allreduce
        if self.n_cores == 1:
            # A single core has nobody to reduce with: gradient exchange
            # must cost exactly zero whatever the schedule says.
            timing = self.profile.allreduce_time(gradient_bytes, 1)
            assert timing == 0.0, "ring all-reduce of a 1-core pod must be free"
            return StepTiming(compute, 0.0, 0.0, n_buckets=0, overlap=config.overlap)
        if grad_leaf_bytes is not None:
            buckets = bucket_gradient_bytes(grad_leaf_bytes, config.bucket_bytes)
        else:
            buckets = [float(gradient_bytes)]
        comm = overlapped_allreduce_time(
            self.profile,
            buckets,
            self.n_cores,
            backward_time=compute * config.backward_fraction,
            overlap=config.overlap,
        )
        return StepTiming(
            compute,
            comm.exposed,
            comm.total,
            n_buckets=comm.n_buckets,
            overlap=comm.overlap,
        )

    def throughput(
        self, per_replica_compute: float, gradient_bytes: float, per_replica_batch: int
    ) -> float:
        """Global examples/second of the pod."""
        t = self.step_time(per_replica_compute, gradient_bytes).total
        return self.n_cores * per_replica_batch / t

    def per_core_throughput(
        self, per_replica_compute: float, gradient_bytes: float, per_replica_batch: int
    ) -> float:
        return (
            self.throughput(per_replica_compute, gradient_bytes, per_replica_batch)
            / self.n_cores
        )
