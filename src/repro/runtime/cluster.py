"""Data-parallel cluster simulation (the Table 1 substrate).

A pod of N identical accelerator cores trains synchronously: every step,
each replica computes forward+backward on its shard of the global batch,
then the pod ring-all-reduces the gradients.  One representative replica
runs the real numerics; the simulated step time combines its compute time
with the all-reduce cost model, which is what determines the per-core
throughput scaling the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.costmodel import DeviceProfile


@dataclass
class StepTiming:
    compute_time: float
    allreduce_time: float

    @property
    def total(self) -> float:
        return self.compute_time + self.allreduce_time


class PodSimulator:
    """Synchronous data-parallel pod of ``n_cores`` devices."""

    def __init__(self, profile: DeviceProfile, n_cores: int) -> None:
        if n_cores < 1:
            raise ValueError("a pod needs at least one core")
        self.profile = profile
        self.n_cores = n_cores

    def step_time(self, per_replica_compute: float, gradient_bytes: float) -> StepTiming:
        """Simulated time of one synchronous training step."""
        ar = self.profile.allreduce_time(gradient_bytes, self.n_cores)
        return StepTiming(compute_time=per_replica_compute, allreduce_time=ar)

    def throughput(
        self, per_replica_compute: float, gradient_bytes: float, per_replica_batch: int
    ) -> float:
        """Global examples/second of the pod."""
        t = self.step_time(per_replica_compute, gradient_bytes).total
        return self.n_cores * per_replica_batch / t

    def per_core_throughput(
        self, per_replica_compute: float, gradient_bytes: float, per_replica_batch: int
    ) -> float:
        return (
            self.throughput(per_replica_compute, gradient_bytes, per_replica_batch)
            / self.n_cores
        )
