"""Allocation tracking.

Tensor buffers register their sizes here so experiments can report peak
memory — used for the "avoiding model copies" result (Section 4.2) and the
on-device memory column of Table 4.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.locks import named_rlock

# Replica threads of the parallel executor allocate concurrently; the
# counters below are read-modify-write, so guard them with one lock.
# Reentrant: ``free`` runs from weakref finalizers, which the interpreter
# may invoke while the same thread already holds the lock in ``allocate``.
# Finalizers also mean this lock can be acquired while *any* other lock is
# held, so it must stay a leaf of the lock-order hierarchy (declared in
# ``repro.analysis.concurrency.lockorder``).
_LOCK = named_rlock("runtime.memory")


class MemoryTracker:
    """Counts live and peak bytes of tracked allocations."""

    def __init__(self) -> None:
        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_allocated = 0
        self.allocation_count = 0

    def allocate(self, nbytes: int) -> None:
        with _LOCK:
            self.live_bytes += nbytes
            self.total_allocated += nbytes
            self.allocation_count += 1
            if self.live_bytes > self.peak_bytes:
                self.peak_bytes = self.live_bytes

    def free(self, nbytes: int) -> None:
        with _LOCK:
            self.live_bytes -= nbytes

    def reset(self) -> None:
        # Guarded: experiments reset the process-wide tracker while replica
        # threads (or finalizers) may still be accounting buffers.
        with _LOCK:
            self.live_bytes = 0
            self.peak_bytes = 0
            self.total_allocated = 0
            self.allocation_count = 0


#: The default process-wide tracker.
TRACKER = MemoryTracker()

#: Trackers currently observing allocations (scoped measurements).  The
#: list itself is shared mutable state: ``track()`` scopes push/pop while
#: replica threads iterate, so every touch holds the module lock.
_ACTIVE: list[MemoryTracker] = [TRACKER]


def allocate(nbytes: int) -> None:
    with _LOCK:
        for tracker in _ACTIVE:
            tracker.allocate(nbytes)


def free(nbytes: int) -> None:
    with _LOCK:
        for tracker in _ACTIVE:
            tracker.free(nbytes)


def track_buffer(buffer, nbytes: int | None = None) -> None:
    """Account a buffer's allocation now and its release at GC time.

    Used by the eager dispatcher, the naive arrays, and lazy
    materialization so peak-memory experiments (Section 4.2, Table 4) see
    real buffer lifetimes.
    """
    import weakref

    if nbytes is None:
        nbytes = getattr(buffer, "nbytes", 0)
    if nbytes <= 0:
        return
    allocate(nbytes)
    try:
        weakref.finalize(buffer, free, nbytes)
    except TypeError:
        # Non-weakref-able buffer: account the allocation only.
        pass


@contextmanager
def track():
    """Measure allocations within a scope:

    >>> with track() as t:
    ...     ...
    >>> t.peak_bytes
    """
    tracker = MemoryTracker()
    with _LOCK:
        _ACTIVE.append(tracker)
    try:
        yield tracker
    finally:
        with _LOCK:
            _ACTIVE.remove(tracker)
