"""Allocation tracking.

Tensor buffers register their sizes here so experiments can report peak
memory — used for the "avoiding model copies" result (Section 4.2) and the
on-device memory column of Table 4.

Beyond the process-wide counters, this module carries the *dynamic half*
of the static memory planner (:mod:`repro.analysis.memory`): inside a
:func:`trace_attribution` scope the HLO executor tracks every owning
intermediate buffer it allocates and attributes the transient peak of each
run to the trace's canonical cache key, so static peak-bytes certificates
can be cross-checked against what actually happened.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.locks import named_rlock

# Replica threads of the parallel executor allocate concurrently; the
# counters below are read-modify-write, so guard them with one lock.
# Reentrant: ``free`` runs from weakref finalizers, which the interpreter
# may invoke while the same thread already holds the lock in ``allocate``.
# Finalizers also mean this lock can be acquired while *any* other lock is
# held, so it must stay a leaf of the lock-order hierarchy (declared in
# ``repro.analysis.concurrency.lockorder``).
_LOCK = named_rlock("runtime.memory")


class MemoryTracker:
    """Counts live and peak bytes of tracked allocations."""

    def __init__(self) -> None:
        self.live_bytes = 0
        self.peak_bytes = 0
        self.total_allocated = 0
        self.allocation_count = 0

    def allocate(self, nbytes: int) -> None:
        with _LOCK:
            self.live_bytes += nbytes
            self.total_allocated += nbytes
            self.allocation_count += 1
            if self.live_bytes > self.peak_bytes:
                self.peak_bytes = self.live_bytes

    def free(self, nbytes: int) -> None:
        with _LOCK:
            self.live_bytes -= nbytes

    def reset(self) -> None:
        # Guarded: experiments reset the process-wide tracker while replica
        # threads (or finalizers) may still be accounting buffers.
        with _LOCK:
            self.live_bytes = 0
            self.peak_bytes = 0
            self.total_allocated = 0
            self.allocation_count = 0

    def snapshot(self) -> tuple[int, int]:
        """(live_bytes, peak_bytes) read atomically."""
        with _LOCK:
            return self.live_bytes, self.peak_bytes


class TraceAttribution:
    """Per-trace peak-memory registry (the planner's dynamic oracle).

    ``depth`` counts nested :func:`trace_attribution` scopes — while it is
    positive the HLO executor tracks every owning intermediate buffer and
    :func:`attribute_trace` records each run's transient peak here, keyed
    by the trace's canonical cache key (``repro.analysis.tracing``).
    Every method takes the module lock, so the global instance is safe to
    read from replica threads.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.peaks: dict[str, int] = {}

    def enabled(self) -> bool:
        with _LOCK:
            return self.depth > 0

    def record(self, key: str, peak_bytes: int) -> None:
        with _LOCK:
            if peak_bytes > self.peaks.get(key, -1):
                self.peaks[key] = peak_bytes

    def peak_for(self, key: str) -> int | None:
        with _LOCK:
            return self.peaks.get(key)

    def clear(self) -> None:
        with _LOCK:
            self.peaks.clear()


#: The default process-wide tracker.
TRACKER = MemoryTracker()

#: Trackers currently observing allocations (scoped measurements).  The
#: list itself is shared mutable state: ``track()`` scopes push/pop while
#: replica threads iterate, so every touch holds the module lock.
_ACTIVE: list[MemoryTracker] = [TRACKER]

#: ids of buffers already accounted by :func:`track_buffer`.  Executor-side
#: intermediate tracking and ``_consume``-side output tracking can see the
#: same array object; the id registry keeps each buffer counted once.  A
#: buffer's finalizer discards its id before freeing, so id reuse by a new
#: object can never be mistaken for the dead one.
_TRACKED_IDS: set[int] = set()

#: The process-wide per-trace attribution registry (internally
#: synchronized, like TRACKER).
_ATTRIBUTION = TraceAttribution()


def allocate(nbytes: int) -> None:
    with _LOCK:
        for tracker in _ACTIVE:
            tracker.allocate(nbytes)


def free(nbytes: int) -> None:
    with _LOCK:
        for tracker in _ACTIVE:
            tracker.free(nbytes)


def _release(buffer_id: int, nbytes: int) -> None:
    """Finalizer of a tracked buffer: forget its id, then free its bytes."""
    with _LOCK:
        _TRACKED_IDS.discard(buffer_id)
        for tracker in _ACTIVE:
            tracker.free(nbytes)


def track_buffer(buffer, nbytes: int | None = None) -> None:
    """Account a buffer's allocation now and its release at GC time.

    Used by the eager dispatcher, the naive arrays, lazy materialization,
    and (inside a :func:`trace_attribution` scope) the HLO executor's
    per-instruction intermediates, so peak-memory experiments
    (Section 4.2, Table 4) see real buffer lifetimes.  Tracking is
    id-deduplicated: a buffer that is already accounted (e.g. an executor
    intermediate that becomes a materialized output) is not counted twice.
    """
    import weakref

    if nbytes is None:
        nbytes = getattr(buffer, "nbytes", 0)
    if nbytes <= 0:
        return
    buffer_id = id(buffer)
    with _LOCK:
        if buffer_id in _TRACKED_IDS:
            return
        try:
            weakref.finalize(buffer, _release, buffer_id, nbytes)
        except TypeError:
            # Non-weakref-able buffer: account the allocation only.
            for tracker in _ACTIVE:
                tracker.allocate(nbytes)
            return
        _TRACKED_IDS.add(buffer_id)
        for tracker in _ACTIVE:
            tracker.allocate(nbytes)


@contextmanager
def scoped_tracker():
    """Measure allocations within a scope:

    >>> with scoped_tracker() as t:
    ...     ...
    >>> t.peak_bytes

    Scopes nest (every active tracker sees every allocation), and the
    active-tracker stack is restored even when the body raises.
    """
    tracker = MemoryTracker()
    with _LOCK:
        _ACTIVE.append(tracker)
    try:
        yield tracker
    finally:
        with _LOCK:
            _ACTIVE.remove(tracker)


#: Backwards-compatible alias (the original scoped-measurement spelling).
track = scoped_tracker


def intermediates_tracked() -> bool:
    """True while a :func:`trace_attribution` scope is active — the HLO
    executor checks this to decide whether to track per-instruction
    intermediate buffers (off by default: finalizer bookkeeping per
    instruction is measurable overhead)."""
    return _ATTRIBUTION.enabled()


@contextmanager
def trace_attribution():
    """Enable per-trace peak attribution within a scope.

    >>> with trace_attribution() as attribution:
    ...     ...  # materialize traces
    >>> attribution.peak_for(canonical_key)
    """
    with _LOCK:
        _ATTRIBUTION.depth += 1
    try:
        yield _ATTRIBUTION
    finally:
        with _LOCK:
            _ATTRIBUTION.depth -= 1


@contextmanager
def attribute_trace(key_fn):
    """Executor-side hook: attribute one run's transient peak to its trace.

    ``key_fn`` must return the trace's canonical cache key; it is called
    *before* the body runs (execution consumes the trace DAG the key is
    computed from).  Outside a :func:`trace_attribution` scope this is a
    no-op that never calls ``key_fn``.
    """
    if not _ATTRIBUTION.enabled():
        yield None
        return
    key = key_fn()
    with scoped_tracker() as tracker:
        yield tracker
    _, peak = tracker.snapshot()
    _ATTRIBUTION.record(key, peak)
