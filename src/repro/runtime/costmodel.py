"""Deterministic cost model for simulated hardware.

The paper's evaluation ran on TPUv3 pods, an NVIDIA GTX 1080, and a Google
Pixel 3.  None of those are available here, so cross-"hardware" experiments
(Tables 1–4) run on a simulated clock driven by this cost model, while the
numerical computation itself runs for real on NumPy.  The model captures
exactly the effects the paper's comparisons isolate:

* **per-op host dispatch overhead** — dominates eager op-by-op execution;
* **kernel launch overhead + memory-bandwidth/FLOP roofline** — device time;
* **fusion** — a fused elementwise region pays one launch and streams its
  inputs/outputs once instead of materializing every intermediate;
* **tracing and JIT-compilation overheads** — the LazyTensor costs of
  Section 3.4;
* **interconnect** — ring all-reduce for data-parallel scaling (Table 1).

All constants are centralized here and documented; they were chosen so that
single-device throughput ratios land in the regime the paper reports, and
the *shape* of every comparison (ordering, rough factors, crossovers) is
robust to moderate changes — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware parameters of one simulated device."""

    name: str
    kind: str  # "cpu" | "gpu" | "tpu" | "mobile"
    flops_per_sec: float
    mem_bw_bytes_per_sec: float
    kernel_launch_overhead: float  # seconds per kernel launch on device
    #: Interconnect (for multi-device pods).
    link_bandwidth_bytes_per_sec: float = 0.0
    link_latency: float = 0.0

    def kernel_time(self, flops: float, traffic_bytes: float) -> float:
        """Roofline execution time of one kernel on this device."""
        compute = flops / self.flops_per_sec
        memory = traffic_bytes / self.mem_bw_bytes_per_sec
        return self.kernel_launch_overhead + max(compute, memory)

    def allreduce_time(self, nbytes: float, n_devices: int) -> float:
        """Ring all-reduce: 2(N-1) steps of latency + per-shard transfer."""
        if n_devices <= 1:
            return 0.0
        steps = 2 * (n_devices - 1)
        shard = nbytes / n_devices
        return steps * (self.link_latency + shard / self.link_bandwidth_bytes_per_sec)


# ---------------------------------------------------------------------------
# Bucketed, compute-overlapped gradient all-reduce (the DDP discipline).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AllReduceConfig:
    """How a pod reduces gradients at the end of each step.

    ``overlap=False`` with a single bucket is the legacy model: the whole
    gradient is ring-all-reduced after backward finishes, fully exposed.
    ``overlap=True`` buckets gradient leaves (in the order backward
    produces them) and all-reduces bucket *k* while backward still computes
    the gradients of bucket *k+1* — only the tail of the communication
    pipeline is exposed on the step's critical path.
    """

    #: Close a bucket once it holds at least this many gradient bytes.
    bucket_bytes: float = 4 * 1024 * 1024
    overlap: bool = True
    #: Share of per-replica compute spent in backward (the window that can
    #: hide communication).  Forward:backward ~ 1:2 for conv/dense nets.
    backward_fraction: float = 2.0 / 3.0


#: The legacy single-shot schedule (one bucket, nothing hidden).
SINGLE_SHOT = AllReduceConfig(bucket_bytes=float("inf"), overlap=False)


def bucket_gradient_bytes(
    leaf_bytes: Sequence[float], bucket_bytes: float
) -> list[float]:
    """Greedily pack gradient-leaf sizes into all-reduce buckets.

    ``leaf_bytes`` must be in the order backward *produces* the gradients
    (last layer first); a bucket is flushed as soon as it reaches the
    threshold, so every bucket except possibly the last holds at least
    ``bucket_bytes``.
    """
    buckets: list[float] = []
    current = 0.0
    for nbytes in leaf_bytes:
        if nbytes < 0:
            raise ValueError(f"negative gradient-leaf size {nbytes!r}")
        current += float(nbytes)
        if current >= bucket_bytes:
            buckets.append(current)
            current = 0.0
    if current > 0.0 or not buckets:
        buckets.append(current)
    return buckets


@dataclass(frozen=True)
class AllReduceTiming:
    """The communication outcome of one step under a schedule."""

    #: Time on the step's critical path (after backward has finished).
    exposed: float
    #: Total ring time summed over buckets (≥ exposed when overlapped).
    total: float
    n_buckets: int
    overlap: bool


def overlapped_allreduce_time(
    profile: DeviceProfile,
    buckets: Sequence[float],
    n_devices: int,
    backward_time: float,
    overlap: bool,
) -> AllReduceTiming:
    """Pipeline buckets of gradient all-reduce against backward compute.

    Bucket *k* becomes ready once backward has produced its gradients —
    modelled as the byte-proportional prefix of ``backward_time`` — and the
    interconnect is serial: ring *k* starts at ``max(ready_k, done_{k-1})``.
    ``exposed`` is what the pipeline sticks out past the end of backward;
    with ``overlap=False`` every ring runs after backward and ``exposed ==
    total``.
    """
    buckets = [float(b) for b in buckets]
    if n_devices <= 1:
        return AllReduceTiming(0.0, 0.0, len(buckets), overlap)
    durations = [profile.allreduce_time(b, n_devices) for b in buckets]
    total = sum(durations)
    if not overlap:
        return AllReduceTiming(total, total, len(buckets), overlap)
    total_bytes = sum(buckets)
    done = 0.0
    produced = 0.0
    for nbytes, duration in zip(buckets, durations):
        produced += nbytes
        ready = (
            backward_time * (produced / total_bytes) if total_bytes else 0.0
        )
        done = max(ready, done) + duration
    exposed = max(done - backward_time, 0.0)
    return AllReduceTiming(exposed, total, len(buckets), overlap)


# ---------------------------------------------------------------------------
# Device profiles (order-of-magnitude hardware constants).
# ---------------------------------------------------------------------------

#: A TPUv3 core: ~123 TFLOP/s per chip / 2 cores, HBM ~900 GB/s.
TPU_V3_CORE = DeviceProfile(
    name="tpuv3-core",
    kind="tpu",
    flops_per_sec=60e12,
    mem_bw_bytes_per_sec=450e9,
    kernel_launch_overhead=2e-6,
    link_bandwidth_bytes_per_sec=70e9,
    link_latency=3e-6,
)

#: NVIDIA GTX 1080: ~8.9 TFLOP/s fp32, 320 GB/s GDDR5X.
GTX_1080 = DeviceProfile(
    name="gtx-1080",
    kind="gpu",
    flops_per_sec=8.9e12,
    mem_bw_bytes_per_sec=320e9,
    kernel_launch_overhead=5e-6,
)

#: A mobile-phone big core (Pixel-3 class): ~20 GFLOP/s scalar-ish, 15 GB/s.
MOBILE_CPU = DeviceProfile(
    name="mobile-cpu",
    kind="mobile",
    flops_per_sec=2e9,
    mem_bw_bytes_per_sec=15e9,
    kernel_launch_overhead=1e-7,
)

#: Desktop CPU reference.
DESKTOP_CPU = DeviceProfile(
    name="desktop-cpu",
    kind="cpu",
    flops_per_sec=100e9,
    mem_bw_bytes_per_sec=40e9,
    kernel_launch_overhead=2e-7,
)


@dataclass(frozen=True)
class EngineProfile:
    """Host-side execution-engine parameters (framework, not hardware).

    The Table 3 comparison is, at heart, a comparison of these overheads:
    S4TF's eager mode pays TensorFlow-Eager's per-op dispatch cost; its
    LazyTensor mode pays cheap per-op *tracing* plus amortized compilation;
    PyTorch's eager core dispatches ops much faster; graph executors hoist
    dispatch out of the loop entirely.
    """

    name: str
    #: Host time to dispatch one operation (eager) or execute one graph node.
    per_op_overhead: float
    #: Host time to record one op into a lazy trace (lazy engines only).
    trace_op_overhead: float = 0.0
    #: One-time compile cost per op of a new trace (lazy/JIT engines only).
    compile_cost_per_op: float = 0.0
    compile_cost_base: float = 0.0
    #: Whether the engine's compiler fuses elementwise regions.
    fuses: bool = False
    #: Fixed per-step framework overhead (session / runtime entry).
    per_step_overhead: float = 0.0
    #: Host time to dispatch one op when a lazy engine falls back to
    #: op-by-op execution while an asynchronous compile is still in
    #: flight (the TF-Eager escape hatch under the LazyTensor trace).
    fallback_op_overhead: float = 55e-6


#: Swift for TensorFlow eager mode, backed by TensorFlow-Eager's C API:
#: comparatively heavy per-op dispatch (the cause of Table 3's 730 ex/s).
S4TF_EAGER = EngineProfile(name="s4tf-eager", per_op_overhead=55e-6)

#: S4TF LazyTensor: cheap per-op tracing, XLA compile amortized via the
#: trace cache, fused execution.
S4TF_LAZY = EngineProfile(
    name="s4tf-lazy",
    per_op_overhead=0.0,
    trace_op_overhead=16e-6,
    compile_cost_per_op=9e-4,
    compile_cost_base=0.05,
    fuses=True,
)

#: PyTorch-like optimized eager core.
TORCH_LIKE = EngineProfile(name="pytorch", per_op_overhead=10e-6)

#: TensorFlow-like graph executor (graph built once, no per-step tracing).
TF_GRAPH = EngineProfile(
    name="tensorflow-graph", per_op_overhead=12e-6, per_step_overhead=40e-6
)

#: JAX-like jit: traces a pure function once per input signature, then runs
#: the fused executable with near-zero per-op host cost.
JAX_JIT = EngineProfile(
    name="jax-jit",
    per_op_overhead=0.0,
    trace_op_overhead=0.0,  # trace happens once, accounted as compile
    compile_cost_per_op=9e-4,
    compile_cost_base=0.05,
    fuses=True,
    per_step_overhead=25e-6,
)

#: TF-Mobile-like heavyweight mobile graph interpreter.
TF_MOBILE = EngineProfile(
    name="tf-mobile", per_op_overhead=170e-6, per_step_overhead=9e-4
)

#: TFLite-like lightweight mobile interpreter (standard op set).
TFLITE = EngineProfile(name="tflite", per_op_overhead=6e-6, per_step_overhead=25e-6)

#: TFLite with a manually fused custom training op: the whole inner loop is
#: one op.
TFLITE_FUSED = EngineProfile(
    name="tflite-fused", per_op_overhead=6e-6, per_step_overhead=25e-6, fuses=True
)

#: S4TF AOT-compiled native code on mobile: no interpreter between ops.
S4TF_MOBILE = EngineProfile(name="s4tf-mobile", per_op_overhead=1.2e-6)
