"""Kernel runtime: NumPy kernels, simulated devices, cost model, memory.

Every accelerated path in the platform (eager backend, compiled HLO,
baseline framework engines) executes through :mod:`repro.runtime.kernels`
and accounts time via :mod:`repro.runtime.costmodel`.
"""

from repro.runtime.cluster import PodSimulator, StepTiming
from repro.runtime.costmodel import (
    SINGLE_SHOT,
    AllReduceConfig,
    AllReduceTiming,
    bucket_gradient_bytes,
    overlapped_allreduce_time,
)
from repro.runtime.costmodel import (
    DESKTOP_CPU,
    GTX_1080,
    JAX_JIT,
    MOBILE_CPU,
    S4TF_EAGER,
    S4TF_LAZY,
    S4TF_MOBILE,
    TF_GRAPH,
    TF_MOBILE,
    TFLITE,
    TFLITE_FUSED,
    TORCH_LIKE,
    TPU_V3_CORE,
    DeviceProfile,
    EngineProfile,
)
from repro.runtime.device import DeviceStats, Dispatcher, SimDevice
from repro.runtime.kernels import DTYPE, ITEMSIZE, KERNELS, Kernel, get_kernel
from repro.runtime.memory import TRACKER, MemoryTracker, track
from repro.runtime.parallel.executor import MultiReplicaExecutor

__all__ = [
    "PodSimulator",
    "StepTiming",
    "SINGLE_SHOT",
    "AllReduceConfig",
    "AllReduceTiming",
    "bucket_gradient_bytes",
    "overlapped_allreduce_time",
    "MultiReplicaExecutor",
    "DESKTOP_CPU",
    "GTX_1080",
    "JAX_JIT",
    "MOBILE_CPU",
    "S4TF_EAGER",
    "S4TF_LAZY",
    "S4TF_MOBILE",
    "TF_GRAPH",
    "TF_MOBILE",
    "TFLITE",
    "TFLITE_FUSED",
    "TORCH_LIKE",
    "TPU_V3_CORE",
    "DeviceProfile",
    "EngineProfile",
    "DeviceStats",
    "Dispatcher",
    "SimDevice",
    "DTYPE",
    "ITEMSIZE",
    "KERNELS",
    "Kernel",
    "get_kernel",
    "TRACKER",
    "MemoryTracker",
    "track",
]
