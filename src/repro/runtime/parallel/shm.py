"""Zero-copy shared-memory gradient exchange for process replicas.

When replicas run in worker *processes*, gradients must cross an address
space boundary.  Pickling every tangent leaf through a pipe would copy
each array twice per step (serialize + deserialize); instead the driver
creates one POSIX shared-memory segment per ``(replica, tangent leaf)``
plus one averaged segment per leaf, and both sides map NumPy views
directly onto the segments:

* each worker writes its gradient leaves into its own replica slots (the
  only copy the exchange performs — ``np.copyto`` from the worker's
  array, which also linearizes non-contiguous sources);
* the driver reduces **in place** over the mapped views — sum in
  replica-id order, then scale, exactly mirroring the thread trainer's
  ``_average_leaves`` so the merged bits are identical across backends;
* each worker reads the averaged leaves back through its own view.

No gradient byte is ever pickled.  Scalar (non-tensor) tangent leaves
ride in 0-d float64 slots so the merge reproduces the thread path's
Python-float (IEEE double) accumulation bit for bit.

**Ownership and crash cleanup.**  Only the driver ever *creates* (and
therefore unlinks) segments; workers attach by name and explicitly
unregister from :mod:`multiprocessing.resource_tracker` so a worker
death — even ``SIGKILL`` — can neither leak a segment nor let the
tracker unlink one the driver still owns.  Every created name is
recorded in the process-wide :data:`_SEGMENT_REGISTRY` (guarded by the
``runtime.parallel.shm`` lock) and unlinked deterministically: by
:meth:`GradientExchange.unlink`, or at interpreter exit by the
``atexit`` sweep.  A forked child clears its inherited registry copy so
it can never unlink the parent's segments.
"""

from __future__ import annotations

import atexit
import itertools
import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.locks import named_rlock

#: Guards the created-segment registry and the token counter.
_SHM_LOCK = named_rlock("runtime.parallel.shm")

#: Names of segments created (and still owned) by THIS process.
_SEGMENT_REGISTRY: set = set()

#: Monotonic exchange tokens (unique within the process; combined with
#: the pid for cross-process uniqueness).
_TOKENS = itertools.count()

#: Live exchanges, so the atexit sweep can release their NumPy views
#: (and thus close their mappings cleanly) before unlinking by name.
_LIVE_EXCHANGES: "weakref.WeakSet[GradientExchange]" = weakref.WeakSet()


def _next_token() -> str:
    with _SHM_LOCK:
        serial = next(_TOKENS)
    return f"{os.getpid():x}-{serial:x}-{os.urandom(3).hex()}"


def _register(name: str) -> None:
    with _SHM_LOCK:
        _SEGMENT_REGISTRY.add(name)


def _deregister(name: str) -> None:
    with _SHM_LOCK:
        _SEGMENT_REGISTRY.discard(name)


def registered_segments() -> Tuple[str, ...]:
    """Names of segments this process has created and not yet unlinked."""
    with _SHM_LOCK:
        return tuple(sorted(_SEGMENT_REGISTRY))


def _clear_registry_in_child() -> None:
    # A forked child inherits the registry but not ownership: clearing it
    # keeps the child's exit (or its atexit sweep) from unlinking the
    # parent's live segments.  The child also gets its own private
    # resource tracker: the module-level register/unregister are bound
    # methods of the parent's tracker instance, and a child sharing that
    # pipe would corrupt the parent's leak accounting (its attach-side
    # unregisters would deregister names the parent still owns).
    with _SHM_LOCK:
        _SEGMENT_REGISTRY.clear()
    try:  # pragma: no cover - tracker internals are advisory
        from multiprocessing import resource_tracker

        tracker = resource_tracker.ResourceTracker()
        resource_tracker._resource_tracker = tracker
        resource_tracker.ensure_running = tracker.ensure_running
        resource_tracker.register = tracker.register
        resource_tracker.unregister = tracker.unregister
        resource_tracker.getfd = tracker.getfd
    except Exception:
        pass


os.register_at_fork(after_in_child=_clear_registry_in_child)


def _cleanup_registered_segments() -> None:
    """Unlink every segment this process still owns (atexit safety net).

    Deterministic cleanup is :meth:`GradientExchange.unlink`; this sweep
    only catches a driver that exits without shutting its trainer down.
    """
    for exchange in list(_LIVE_EXCHANGES):
        exchange.unlink()
    with _SHM_LOCK:
        names = list(_SEGMENT_REGISTRY)
        _SEGMENT_REGISTRY.clear()
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            continue
        try:
            # unlink() also deregisters the name from the resource
            # tracker; if the file vanished underneath us, deregister
            # explicitly so the tracker does not warn about a leak.
            segment.unlink()
        except FileNotFoundError:
            _unregister_from_tracker(segment)
        _close_quietly(segment)


atexit.register(_cleanup_registered_segments)


def _unregister_from_tracker(segment: shared_memory.SharedMemory) -> None:
    """Detach ``segment`` from the resource tracker (attach-only use).

    The tracker unlinks every segment still registered when its client
    processes die (bpo-38119): an *attaching* process must unregister or
    its death would tear down a segment the creating process still owns.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker internals are advisory
        pass


def _close_quietly(segment: shared_memory.SharedMemory) -> None:
    # close() raises BufferError while NumPy views still reference the
    # mapping.  Abandon the handle instead: drop the fd now and orphan
    # the mmap — the views' buffer chain keeps it alive, and it unmaps
    # itself when the last view dies.  Clearing the attributes also
    # keeps SharedMemory.__del__ from retrying the close and warning.
    try:
        segment.close()
    except BufferError:
        if getattr(segment, "_fd", -1) >= 0:
            try:
                os.close(segment._fd)
            except OSError:  # pragma: no cover - fd already gone
                pass
            segment._fd = -1
        segment._mmap = None


def _untrack_attachment(segment: shared_memory.SharedMemory) -> None:
    """Undo the tracker registration an *attach* performed.

    Attaching registers the name just like creating does (bpo-38119), so
    an attach-only handle must deregister — unless this process owns the
    segment, in which case the attach's register was a set no-op and
    deregistering would strip the owner's own entry.
    """
    with _SHM_LOCK:
        owned = segment.name in _SEGMENT_REGISTRY
    if not owned:
        _unregister_from_tracker(segment)


def segment_exists(name: str) -> bool:
    """True iff ``name`` can still be attached (tests' orphan probe)."""
    try:
        segment = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    _untrack_attachment(segment)
    _close_quietly(segment)
    return True


@dataclass(frozen=True)
class LeafSpec:
    """Shape/dtype contract for one tangent leaf's slot.

    ``kind`` is ``"array"`` for tensor leaves (stored in their own dtype,
    f32 on the trainer path) or ``"scalar"`` for Python-float leaves
    (stored as 0-d float64 so the merge matches f64 float arithmetic).
    """

    kind: str
    dtype: str
    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("array", "scalar"):
            raise ValueError(f"unknown leaf kind {self.kind!r}")

    @property
    def count(self) -> int:
        n = 1
        for dim in self.shape:
            n *= int(dim)
        return n

    @property
    def nbytes(self) -> int:
        return self.count * np.dtype(self.dtype).itemsize

    @staticmethod
    def for_value(value) -> "LeafSpec":
        """The slot spec for one materialized tangent leaf."""
        if isinstance(value, (int, float)):
            return LeafSpec("scalar", "float64", ())
        array = np.asarray(value)
        return LeafSpec("array", str(array.dtype), tuple(array.shape))


def _view(segment: shared_memory.SharedMemory, spec: LeafSpec) -> np.ndarray:
    flat = np.frombuffer(segment.buf, dtype=np.dtype(spec.dtype),
                         count=spec.count)
    return flat.reshape(spec.shape)


class GradientExchange:
    """Driver-side owner of one trainer's gradient segments.

    Creates ``n_replicas`` gradient slots plus one averaged slot per
    tangent leaf, all uniquely named under one exchange token, and is
    the only party that ever unlinks them.  Two live exchanges — even
    with identical leaf layouts, even in concurrent processes — can
    never alias: the token embeds the pid, a process-monotonic serial,
    and fresh random bytes.
    """

    def __init__(self, n_replicas: int, specs: Sequence[LeafSpec]) -> None:
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        if not specs:
            raise ValueError("need at least one tangent leaf")
        self.n_replicas = n_replicas
        self.specs = list(specs)
        self.token = _next_token()
        self._segments: List[shared_memory.SharedMemory] = []
        self._grad_names: List[List[str]] = []
        self._avg_names: List[str] = []
        self._grad_views: List[List[np.ndarray]] = []
        self._avg_views: List[np.ndarray] = []
        self._unlinked = False
        try:
            for replica in range(n_replicas):
                names, views = [], []
                for j, spec in enumerate(self.specs):
                    name = f"repro-shm-{self.token}-g{replica}x{j}"
                    views.append(self._create(name, spec))
                    names.append(name)
                self._grad_names.append(names)
                self._grad_views.append(views)
            for j, spec in enumerate(self.specs):
                name = f"repro-shm-{self.token}-avg{j}"
                self._avg_views.append(self._create(name, spec))
                self._avg_names.append(name)
        except BaseException:
            self.unlink()
            raise
        _LIVE_EXCHANGES.add(self)

    def _create(self, name: str, spec: LeafSpec) -> np.ndarray:
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, spec.nbytes)
        )
        _register(name)
        self._segments.append(segment)
        return _view(segment, spec)

    # -- driver-side access --------------------------------------------------

    def segment_names(self) -> List[str]:
        return [n for names in self._grad_names for n in names] + list(
            self._avg_names
        )

    def grad_view(self, replica: int, leaf: int) -> np.ndarray:
        return self._grad_views[replica][leaf]

    def avg_view(self, leaf: int) -> np.ndarray:
        return self._avg_views[leaf]

    def write(self, replica: int, leaf: int, value) -> None:
        """Copy one leaf into its slot (the exchange's single copy)."""
        view = self._grad_views[replica][leaf]
        if self.specs[leaf].kind == "scalar":
            view[...] = float(value)
        else:
            np.copyto(view, value)

    def reduce_mean(self) -> None:
        """Averaged slots <- replica-ordered sum-then-scale of the slots.

        Bit-compatible with the thread trainer's ``_average_leaves``:
        array leaves accumulate with ``np.add(..., out=)`` in replica-id
        order and scale by ``dtype(1/n)`` (``np.float32`` on the trainer
        path); scalar leaves accumulate and divide in float64, matching
        Python-float arithmetic.
        """
        n = self.n_replicas
        for j, spec in enumerate(self.specs):
            acc = self._avg_views[j]
            np.copyto(acc, self._grad_views[0][j])
            for replica in range(1, n):
                np.add(acc, self._grad_views[replica][j], out=acc)
            if spec.kind == "scalar":
                np.divide(acc, n, out=acc)
            else:
                np.multiply(acc, acc.dtype.type(1.0 / n), out=acc)

    def averaged(self) -> List:
        """Fresh copies of the averaged leaves (floats for scalar slots)."""
        out: List = []
        for j, spec in enumerate(self.specs):
            if spec.kind == "scalar":
                out.append(float(self._avg_views[j]))
            else:
                out.append(np.array(self._avg_views[j], copy=True))
        return out

    # -- worker handshake ----------------------------------------------------

    def worker_payload(self, replica: int) -> Dict:
        """Everything replica ``replica`` needs to attach its slots."""
        return {
            "specs": list(self.specs),
            "grad_names": list(self._grad_names[replica]),
            "avg_names": list(self._avg_names),
        }

    # -- lifecycle -----------------------------------------------------------

    def unlink(self) -> None:
        """Unlink every created segment (idempotent, exception-safe)."""
        if self._unlinked:
            return
        self._unlinked = True
        self._grad_views = []
        self._avg_views = []
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:
                # Already gone (atexit sweep, another cleanup path):
                # deregister from the tracker ourselves, since unlink
                # only does so on success.
                _unregister_from_tracker(segment)
            _deregister(segment.name)
            _close_quietly(segment)
        self._segments = []

    def __enter__(self) -> "GradientExchange":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()


class WorkerAttachment:
    """Worker-side mapping of one replica's slots (attach-only, never unlinks)."""

    def __init__(self, payload: Dict) -> None:
        self.specs: List[LeafSpec] = list(payload["specs"])
        self._segments: List[shared_memory.SharedMemory] = []
        self._grad_views: List[np.ndarray] = []
        self._avg_views: List[np.ndarray] = []
        for name, spec in zip(payload["grad_names"], self.specs, strict=True):
            self._grad_views.append(self._attach(name, spec))
        for name, spec in zip(payload["avg_names"], self.specs, strict=True):
            self._avg_views.append(self._attach(name, spec))

    def _attach(self, name: str, spec: LeafSpec) -> np.ndarray:
        segment = shared_memory.SharedMemory(name=name, create=False)
        _untrack_attachment(segment)
        self._segments.append(segment)
        return _view(segment, spec)

    def write_leaves(self, values: Sequence) -> None:
        """Publish this replica's gradient leaves into its slots."""
        for j, (spec, value) in enumerate(zip(self.specs, values, strict=True)):
            if spec.kind == "scalar":
                self._grad_views[j][...] = float(value)
            else:
                np.copyto(self._grad_views[j], value)

    def read_averaged(self) -> List:
        """Fresh copies of the averaged leaves (safe past the next step)."""
        out: List = []
        for j, spec in enumerate(self.specs):
            if spec.kind == "scalar":
                out.append(float(self._avg_views[j]))
            else:
                out.append(np.array(self._avg_views[j], copy=True))
        return out

    def close(self) -> None:
        self._grad_views = []
        self._avg_views = []
        for segment in self._segments:
            _close_quietly(segment)
        self._segments = []
