"""Synchronous data-parallel training with *every* replica running for real.

The original :class:`~repro.training.distributed.DataParallelTrainer`
executes one representative replica and assumes the rest identical (true
under synchronous SGD, but untested).  This trainer removes the
assumption: ``n_replicas`` lazy devices each run real forward+backward
numerics concurrently, gradients are all-reduced (averaged) in fixed
replica order, and every replica applies the identical averaged
gradient — exactly the lockstep the paper's TPU pods execute.

Three backends share one step contract (``backend=`` knob, resolved by
:func:`~repro.runtime.parallel.executor.resolve_backend`):

* ``serial``/``thread`` — replicas live in this process; the executor
  overlaps them (or not) and the merge runs host-side in
  :func:`_average_leaves`;
* ``process`` — replicas live in forked worker processes
  (:class:`~repro.runtime.parallel.process.ReplicaWorkerPool`), each
  owning its device/model/optimizer, and gradients cross the address
  spaces through :class:`~repro.runtime.parallel.shm.GradientExchange`
  shared-memory views — zero-copy, no gradient byte ever pickled.  The
  driver reduces in place over the mapped views with the *same*
  replica-ordered sum-then-scale, so all three backends produce
  bit-identical losses, averaged gradients, and post-step weights (the
  differential harness pins this).

Determinism: all cross-replica merges happen in replica-id order (loss
list, gradient sum, simulated-clock ``max``), so results and timings are
bit-identical run to run regardless of host scheduling.  With a
power-of-two replica count and identical shards, the averaged gradient
is bit-identical to a single replica's (f32 addition of equal values and
division by 2^k are exact), which the differential tests pin down.

Crash-cleanup invariant (process backend): a step that fails for *any*
reason — a replica raising, a worker dying, even ``SIGKILL`` mid-step —
tears the gradient exchange down before the exception reaches the
caller, so no shared-memory segment outlives a failed step.  The next
``step()`` respawns dead workers, restores them from a live survivor's
snapshot, and builds a fresh exchange: the trainer stays usable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.optim.tree import tangent_leaf_sizes, tree_map
from repro.runtime.cluster import PodSimulator, StepTiming
from repro.runtime.costmodel import (
    S4TF_LAZY,
    TPU_V3_CORE,
    AllReduceConfig,
    DeviceProfile,
    EngineProfile,
)
from repro.runtime.device import DeviceStats
from repro.runtime.parallel.executor import MultiReplicaExecutor, resolve_backend
from repro.runtime.parallel.shm import GradientExchange, LeafSpec, WorkerAttachment


@dataclass
class ParallelStepStats:
    """One synchronous step as observed across the whole pod."""

    losses: List[float]
    replica_compute_times: List[float]
    timing: StepTiming
    gradient_bytes: int
    #: Per-leaf gradient bytes in parameter traversal order (reverse of
    #: backward production order) — the bucketing input.
    grad_leaf_bytes: List[int] = field(default_factory=list)
    device_stats: List[DeviceStats] = field(default_factory=list)
    async_compile: dict = field(default_factory=dict)
    #: The merged gradient leaves every replica applied (f32 arrays /
    #: floats, in tangent traversal order) — what the differential
    #: harness compares bit-for-bit across backends.
    averaged_leaves: list = field(default_factory=list)

    @property
    def loss(self) -> float:
        """Pod loss (replica mean, accumulated in replica order)."""
        total = 0.0
        for value in self.losses:
            total += value
        return total / len(self.losses)

    @property
    def compute_time(self) -> float:
        return self.timing.compute_time

    @property
    def allreduce_time(self) -> float:
        return self.timing.allreduce_time

    @property
    def step_time(self) -> float:
        return self.timing.total


class ParallelDataParallelTrainer:
    """Train ``n_replicas`` real model replicas in lockstep.

    ``build_model(device)`` must be deterministic in the device (same
    seed per replica) so replicas start identical, as a synchronously
    initialized pod does.  When ``async_compile`` is true the replicas
    share one fresh :class:`AsyncCompiler`, so a cold trace is compiled
    once in the background while every replica falls back to op-by-op
    execution — no replica ever stalls on the JIT.

    ``backend="process"`` forks the replicas into worker processes at
    construction time: ``build_model``/``optimizer_factory`` may be any
    closure (inherited through fork), but ``loss_fn`` passed to
    :meth:`step` must be picklable by reference (module level) because
    it rides the command pipe each step.  ``async_compile`` is
    incompatible with the process backend (the compiler's threads cannot
    span address spaces).
    """

    def __init__(
        self,
        build_model: Callable,
        optimizer_factory: Callable,
        n_replicas: int,
        profile: Optional[DeviceProfile] = None,
        engine: Optional[EngineProfile] = None,
        allreduce: Optional[AllReduceConfig] = None,
        async_compile=False,
        serial: bool = False,
        device_kind: str = "lazy",
        pod_size: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        from repro.hlo.compiler import AsyncCompiler
        from repro.tensor.device import Device

        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self.profile = profile or TPU_V3_CORE
        self.engine = engine or S4TF_LAZY
        self.backend = resolve_backend(n_replicas, backend, serial)
        if self.backend == "process" and async_compile:
            raise ValueError(
                "backend='process' is incompatible with async_compile: the "
                "background compiler's threads cannot span worker processes"
            )
        if async_compile is True:
            self.compiler: Optional[AsyncCompiler] = AsyncCompiler()
        elif isinstance(async_compile, AsyncCompiler):
            self.compiler = async_compile
        else:
            self.compiler = None
        # ``pod_size`` decouples the simulated pod from the number of real
        # replicas: a 128-core pod can be driven by (say) 4 real replicas
        # when running all 128 would be infeasible on the host.
        self.pod = PodSimulator(self.profile, pod_size or n_replicas, allreduce)
        if self.backend == "process":
            from repro.runtime.parallel.process import ReplicaWorkerPool

            # Replica state (device, model, optimizer) lives only in the
            # workers; the factory and its closures cross via fork.
            profile_, engine_ = self.profile, self.engine

            def factory(replica: int) -> "_ProcessReplicaState":
                return _ProcessReplicaState(
                    replica,
                    build_model,
                    optimizer_factory,
                    profile_,
                    engine_,
                    device_kind,
                )

            self.devices: list = []
            self.models: list = []
            self.optimizers: list = []
            self.executor: Optional[MultiReplicaExecutor] = None
            self.pool = ReplicaWorkerPool(n_replicas, factory)
            self._exchange: Optional[GradientExchange] = None
            return
        kwargs = {}
        if device_kind == "lazy":
            kwargs["async_compile"] = self.compiler or False
        self.devices = [
            Device(
                device_kind,
                self.profile,
                self.engine,
                name=f"replica:{i}",
                **kwargs,
            )
            for i in range(n_replicas)
        ]
        self.models = [build_model(device) for device in self.devices]
        self.optimizers = [optimizer_factory() for _ in range(n_replicas)]
        self.executor = MultiReplicaExecutor(n_replicas, backend=self.backend)
        self.pool = None
        self._exchange = None

    # -- batch placement -----------------------------------------------------

    def place_shards(self, shards: Sequence[Tuple]) -> List[Tuple]:
        """Place per-replica ``(x, y)`` arrays on their replica's device.

        Under ``backend="process"`` the driver holds no devices; shards
        stay host arrays and each worker places its own on arrival.
        """
        from repro.tensor.tensor import Tensor

        if len(shards) != self.n_replicas:
            raise ValueError(
                f"got {len(shards)} shards for {self.n_replicas} replicas"
            )
        if self.backend == "process":
            return [(np.asarray(x), np.asarray(y)) for x, y in shards]
        return [
            (Tensor(x, device), Tensor(y, device))
            for (x, y), device in zip(shards, self.devices)
        ]

    def replicate_batch(self, x, y) -> List[Tuple]:
        """The same batch on every replica (for bit-identity tests)."""
        return self.place_shards([(x, y)] * self.n_replicas)

    # -- the synchronous step ------------------------------------------------

    def step(self, loss_fn: Callable, shards: Sequence[Tuple]) -> ParallelStepStats:
        """One lockstep training step over per-replica ``(x, y)`` tensors."""
        from repro.core import value_and_gradient

        if len(shards) != self.n_replicas:
            raise ValueError(
                f"got {len(shards)} shards for {self.n_replicas} replicas"
            )
        if self.backend == "process":
            return self._step_process(loss_fn, shards)

        def forward_backward(i: int):
            device = self.devices[i]
            x, y = shards[i]
            start = device.elapsed
            loss, gradient = value_and_gradient(
                loss_fn, self.models[i], x, y, wrt=0
            )
            leaves = _tangent_leaves(gradient)
            values = _materialize(device, [loss] + _tensor_leaves(leaves))
            device.sync()
            loss_value = float(np.asarray(values[0]).reshape(()))
            grad_values = _leaf_values(leaves, values[1:])
            return loss_value, gradient, grad_values, device.elapsed - start

        passes = self.executor.run(forward_backward)
        losses = [p[0] for p in passes]
        gradient_trees = [p[1] for p in passes]
        forward_times = [p[3] for p in passes]

        # Host-side all-reduce: sum in replica order, then scale — the
        # deterministic merge every replica receives identically.
        averaged = _average_leaves([p[2] for p in passes])

        def apply_update(i: int) -> float:
            device = self.devices[i]
            start = device.elapsed
            averaged_tree = _rebuild(gradient_trees[i], averaged, device)
            self.optimizers[i].update(self.models[i], averaged_tree)
            if device.kind == "lazy":
                from repro.tensor import LazyTensorBarrier

                LazyTensorBarrier(device)
            device.sync()
            return device.elapsed - start

        update_times = self.executor.run(apply_update)
        compute_times = [f + u for f, u in zip(forward_times, update_times)]

        leaf_sizes = tangent_leaf_sizes(gradient_trees[0])
        gradient_bytes = sum(leaf_sizes)
        timing = self.pod.step_time_multi(
            compute_times,
            gradient_bytes,
            # Backward produces gradients output-to-input: reverse of the
            # parameter traversal order, which is what bucketing sees.
            grad_leaf_bytes=list(reversed(leaf_sizes)),
        )
        stats = ParallelStepStats(
            losses=losses,
            replica_compute_times=compute_times,
            timing=timing,
            gradient_bytes=gradient_bytes,
            grad_leaf_bytes=leaf_sizes,
            device_stats=[
                dataclasses.replace(device.sim.stats) for device in self.devices
            ],
            averaged_leaves=list(averaged),
        )
        if self.compiler is not None:
            stats.async_compile = self.compiler.stats_dict()
        return stats

    # -- the process-backed step ---------------------------------------------

    def _step_process(
        self, loss_fn: Callable, shards: Sequence[Tuple]
    ) -> ParallelStepStats:
        """The same lockstep over forked workers and shared-memory slots.

        Phases (each an ordered ``gather`` that drains every live worker
        before raising): ``step`` — workers run forward+backward and
        publish gradient leaves into their slots; driver ``reduce_mean``
        — in-place replica-ordered merge over the mapped views;
        ``apply`` — workers read the averaged leaves back and update.
        Any failure anywhere tears the exchange down (segments never
        survive a failed step) and the exception propagates in replica-id
        order; :meth:`_ensure_workers` heals the pool on the next call.
        """
        self._ensure_workers()
        payloads = [
            {"x": x, "y": y, "loss_fn": loss_fn} for x, y in shards
        ]
        try:
            passes = self.pool.gather("step", payloads)
            losses = [p[0] for p in passes]
            forward_times = [p[1] for p in passes]
            layouts = [p[2] for p in passes]
            specs = layouts[0]["specs"]
            for i in range(1, self.n_replicas):
                if layouts[i]["specs"] != specs:
                    raise RuntimeError(
                        f"replica {i} produced a different gradient layout "
                        "than replica 0 — replicas must be identical"
                    )
            leaf_sizes = layouts[0]["leaf_sizes"]
            if self._exchange is not None and self._exchange.specs != specs:
                self._teardown_exchange()
            if self._exchange is None:
                # Driver creates (and alone may unlink) the segments;
                # workers attach and flush the leaves they were holding.
                self._exchange = GradientExchange(self.n_replicas, specs)
                self.pool.gather(
                    "attach",
                    [
                        self._exchange.worker_payload(i)
                        for i in range(self.n_replicas)
                    ],
                )
            self._exchange.reduce_mean()
            averaged = self._exchange.averaged()
            applies = self.pool.gather("apply", [None] * self.n_replicas)
        except BaseException:
            # The crash-cleanup invariant: no segment survives a failed
            # step, whatever the failure mode.
            self._teardown_exchange()
            raise
        update_times = [a[0] for a in applies]
        device_stats = [a[1] for a in applies]
        compute_times = [f + u for f, u in zip(forward_times, update_times)]
        gradient_bytes = sum(leaf_sizes)
        timing = self.pod.step_time_multi(
            compute_times,
            gradient_bytes,
            grad_leaf_bytes=list(reversed(leaf_sizes)),
        )
        return ParallelStepStats(
            losses=losses,
            replica_compute_times=compute_times,
            timing=timing,
            gradient_bytes=gradient_bytes,
            grad_leaf_bytes=leaf_sizes,
            device_stats=device_stats,
            averaged_leaves=averaged,
        )

    def _ensure_workers(self) -> None:
        """Respawn dead workers, restoring state from a live survivor.

        A respawned worker starts from the deterministic initial state;
        when any sibling survived, the lowest-id survivor's snapshot
        (weights + optimizer state) is restored into each respawn so the
        pod stays in lockstep.  Attachments are stale after any death, so
        the exchange is torn down and rebuilt on the next step.
        """
        dead = self.pool.dead_replicas()
        if not dead:
            return
        self._teardown_exchange()
        survivors = [i for i in range(self.n_replicas) if i not in dead]
        for i in dead:
            self.pool.respawn(i)
        if survivors:
            snapshot = self.pool.request(survivors[0], "snapshot")
            for i in dead:
                self.pool.request(i, "restore", snapshot)

    def _teardown_exchange(self) -> None:
        if self._exchange is not None:
            exchange, self._exchange = self._exchange, None
            exchange.unlink()

    # -- introspection (all backends) ----------------------------------------

    def weights_bytes(self, replica: int) -> bytes:
        """A deterministic byte serialization of one replica's weights —
        the cross-backend bit-identity probe."""
        if self.backend == "process":
            return self.pool.request(replica, "weights")
        return _model_weight_bytes(self.models[replica])

    def worker_pid(self, replica: int) -> int:
        """The worker process id (process backend only; fault tests)."""
        if self.backend != "process":
            raise ValueError(f"backend {self.backend!r} has no worker processes")
        return self.pool.request(replica, "pid")

    def segment_names(self) -> List[str]:
        """Live shared-memory segment names (empty unless a process-backend
        exchange is currently established)."""
        if self._exchange is None:
            return []
        return self._exchange.segment_names()

    # -- reporting -----------------------------------------------------------

    def throughput(
        self, stats: ParallelStepStats, per_replica_batch: int
    ) -> Tuple[float, float]:
        """(global examples/s, per-core examples/s) for a measured step."""
        n_cores = self.pod.n_cores
        total = n_cores * per_replica_batch / stats.step_time
        return total, total / n_cores

    def async_stats(self) -> dict:
        return self.compiler.stats_dict() if self.compiler is not None else {}

    def wait_for_compiles(self) -> None:
        if self.compiler is not None:
            self.compiler.wait()

    def shutdown(self) -> None:
        if self.executor is not None:
            self.executor.shutdown()
        if self.pool is not None:
            self.pool.shutdown()
        self._teardown_exchange()


# -- worker-side replica state (process backend) ------------------------------


class _TensorLeaf:
    """Picklable stand-in for a tensor leaf inside a state snapshot."""

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray) -> None:
        self.array = array


class _ProcessReplicaState:
    """One replica's device/model/optimizer, living inside a forked worker.

    Serves the trainer's commands (see
    :class:`~repro.runtime.parallel.process.ReplicaWorkerPool`): ``step``
    runs forward+backward with the exact thread-path numerics and
    publishes the f32 gradient leaves into this replica's shared-memory
    slots; ``apply`` reads the averaged leaves back and updates; the
    ``snapshot``/``restore`` pair moves weights + optimizer state into a
    freshly respawned sibling after a crash.
    """

    def __init__(
        self,
        replica: int,
        build_model: Callable,
        optimizer_factory: Callable,
        profile,
        engine,
        device_kind: str,
    ) -> None:
        from repro.tensor.device import Device

        self.replica = replica
        kwargs = {"async_compile": False} if device_kind == "lazy" else {}
        self.device = Device(
            device_kind,
            profile,
            engine,
            name=f"replica:{replica}",
            **kwargs,
        )
        self.model = build_model(self.device)
        self._optimizer_factory = optimizer_factory
        self.optimizer = optimizer_factory()
        self.attachment: Optional[WorkerAttachment] = None
        self._pending_leaves: Optional[list] = None
        self._last_gradient = None
        self._placed: Optional[tuple] = None

    def handle(self, command: str, payload):
        if command == "step":
            return self._step(payload["x"], payload["y"], payload["loss_fn"])
        if command == "attach":
            return self._attach(payload)
        if command == "apply":
            return self._apply()
        if command == "weights":
            return _model_weight_bytes(self.model)
        if command == "snapshot":
            return self._snapshot()
        if command == "restore":
            return self._restore(payload)
        if command == "pid":
            import os

            return os.getpid()
        raise ValueError(f"unknown replica command {command!r}")

    def _place(self, x, y) -> tuple:
        """This replica's batch tensors, reusing the previous placement
        when the arrays are unchanged — mirroring the in-process trainer,
        where ``replicate_batch`` places once and ``step`` reuses, so the
        simulated clock charges batch upload once, not per step."""
        from repro.tensor.tensor import Tensor

        if self._placed is not None:
            px, py, xt, yt = self._placed
            if (
                px.shape == x.shape
                and px.dtype == x.dtype
                and py.shape == y.shape
                and py.dtype == y.dtype
                and np.array_equal(px, x)
                and np.array_equal(py, y)
            ):
                return xt, yt
        xt, yt = Tensor(x, self.device), Tensor(y, self.device)
        self._placed = (x, y, xt, yt)
        return xt, yt

    def _step(self, x, y, loss_fn: Callable):
        from repro.core import value_and_gradient

        device = self.device
        xt, yt = self._place(x, y)
        start = device.elapsed
        loss, gradient = value_and_gradient(loss_fn, self.model, xt, yt, wrt=0)
        leaves = _tangent_leaves(gradient)
        values = _materialize(device, [loss] + _tensor_leaves(leaves))
        device.sync()
        loss_value = float(np.asarray(values[0]).reshape(()))
        grad_values = _leaf_values(leaves, values[1:])
        forward_time = device.elapsed - start
        self._last_gradient = gradient
        # Always hold the leaves: if the driver replaced the exchange
        # (first step, post-crash rebuild), this replica's attachment is
        # stale or absent and the upcoming "attach" must flush them into
        # the *new* segments.
        self._pending_leaves = grad_values
        if self.attachment is not None:
            self.attachment.write_leaves(grad_values)
        layout = {
            "specs": [LeafSpec.for_value(v) for v in grad_values],
            "leaf_sizes": tangent_leaf_sizes(gradient),
        }
        return loss_value, forward_time, layout

    def _attach(self, payload) -> None:
        if self.attachment is not None:
            self.attachment.close()
        self.attachment = WorkerAttachment(payload)
        if self._pending_leaves is not None:
            self.attachment.write_leaves(self._pending_leaves)
            self._pending_leaves = None

    def _apply(self):
        if self.attachment is None:
            raise RuntimeError("apply before attach: no exchange established")
        device = self.device
        start = device.elapsed
        averaged = self.attachment.read_averaged()
        averaged_tree = _rebuild(self._last_gradient, averaged, device)
        self.optimizer.update(self.model, averaged_tree)
        if device.kind == "lazy":
            from repro.tensor import LazyTensorBarrier

            LazyTensorBarrier(device)
        device.sync()
        return (
            device.elapsed - start,
            dataclasses.replace(device.sim.stats),
        )

    def _snapshot(self) -> dict:
        """Weights + optimizer state for restoring a respawned sibling.

        The model crosses as its checkpoint ``state_dict`` (path-keyed
        ndarrays); optimizer state attrs are tangent trees, so their
        tensor leaves ride as :class:`_TensorLeaf` markers.
        """
        from repro.nn.checkpoint import state_dict

        def encode(leaf):
            if _is_tensor(leaf):
                return _TensorLeaf(np.array(leaf.numpy(), copy=True))
            return leaf

        return {
            "model": state_dict(self.model),
            "optimizer": {
                name: tree_map(encode, value)
                for name, value in vars(self.optimizer).items()
            },
        }

    def _restore(self, snapshot: dict) -> None:
        from repro.nn.checkpoint import load_state_dict
        from repro.tensor.tensor import Tensor

        def decode(leaf):
            if isinstance(leaf, _TensorLeaf):
                return Tensor(leaf.array, self.device)
            return leaf

        load_state_dict(self.model, snapshot["model"])
        self.optimizer = self._optimizer_factory()
        for name, value in snapshot["optimizer"].items():
            setattr(self.optimizer, name, tree_map(decode, value))
        self._last_gradient = None
        self._pending_leaves = None
        if self.attachment is not None:
            self.attachment.close()
            self.attachment = None

    def close(self) -> None:
        if self.attachment is not None:
            self.attachment.close()
            self.attachment = None


# -- tangent-tree plumbing ---------------------------------------------------


def _tangent_leaves(tree) -> list:
    """Non-ZERO leaves in :func:`tree_map` traversal order."""
    leaves: list = []

    def visit(leaf):
        leaves.append(leaf)
        return leaf

    tree_map(visit, tree)
    return leaves


def _is_tensor(leaf) -> bool:
    return hasattr(leaf, "_impl") and hasattr(leaf, "device")


def _tensor_leaves(leaves: Sequence) -> list:
    return [leaf for leaf in leaves if _is_tensor(leaf)]


def _materialize(device, tensors: Sequence) -> list:
    """Observe many tensors in one materialization (one fused fragment)."""
    if device.kind == "lazy":
        return device.runtime.materialize([t._impl for t in tensors])
    return [t.numpy() for t in tensors]


def _leaf_values(leaves: Sequence, tensor_values: Sequence) -> list:
    """Align materialized arrays back onto the full leaf list (floats pass
    through unchanged)."""
    values = []
    it = iter(tensor_values)
    for leaf in leaves:
        if _is_tensor(leaf):
            values.append(np.asarray(next(it), dtype=np.float32))
        else:
            values.append(float(leaf))
    return values


def _average_leaves(replica_values: Sequence[Sequence]) -> list:
    """Leafwise mean across replicas, accumulated in replica-id order.

    Sum-then-scale keeps the merge deterministic and, for power-of-two
    replica counts with identical addends, exact in f32.
    :meth:`~repro.runtime.parallel.shm.GradientExchange.reduce_mean` is
    the shared-memory mirror of this merge; the two must stay
    bit-compatible (the determinism analysis probes both).
    """
    n = len(replica_values)
    averaged = []
    for j in range(len(replica_values[0])):
        first = replica_values[0][j]
        if isinstance(first, float):
            acc = first
            for r in range(1, n):
                acc += replica_values[r][j]
            averaged.append(acc / n)
        else:
            acc = np.array(first, dtype=np.float32, copy=True)
            for r in range(1, n):
                np.add(acc, replica_values[r][j], out=acc)
            np.multiply(acc, np.float32(1.0 / n), out=acc)
            averaged.append(acc)
    return averaged


def _rebuild(tree, leaf_values: Sequence, device):
    """A tangent tree congruent to ``tree`` with ``leaf_values`` leaves,
    tensor leaves placed on ``device``."""
    from repro.tensor.tensor import Tensor

    it = iter(leaf_values)

    def place(leaf):
        value = next(it)
        if _is_tensor(leaf):
            return Tensor(value, device)
        return value

    return tree_map(place, tree)


def _model_weight_bytes(model) -> bytes:
    """Deterministic byte serialization of a model's parameters (its
    checkpoint ``state_dict`` in sorted path order) — the cross-backend
    and cross-process bit-identity probe."""
    from repro.nn.checkpoint import state_dict

    state = state_dict(model)
    return b"|".join(
        key.encode() + b"=" + np.ascontiguousarray(state[key]).tobytes()
        for key in sorted(state)
    )
