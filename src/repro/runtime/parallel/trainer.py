"""Synchronous data-parallel training with *every* replica running for real.

The original :class:`~repro.training.distributed.DataParallelTrainer`
executes one representative replica and assumes the rest identical (true
under synchronous SGD, but untested).  This trainer removes the
assumption: ``n_replicas`` lazy devices each run real forward+backward
numerics concurrently on a :class:`MultiReplicaExecutor`, gradients are
all-reduced (averaged) host-side in fixed replica order, and every
replica applies the identical averaged gradient — exactly the lockstep
the paper's TPU pods execute.

Determinism: all cross-thread merges happen in replica-id order (loss
list, gradient sum, simulated-clock ``max``), so results and timings are
bit-identical run to run regardless of host thread scheduling.  With a
power-of-two replica count and identical shards, the averaged gradient
is bit-identical to a single replica's (f32 addition of equal values and
division by 2^k are exact), which the differential tests pin down.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.optim.tree import tangent_leaf_sizes, tree_map
from repro.runtime.cluster import PodSimulator, StepTiming
from repro.runtime.costmodel import (
    S4TF_LAZY,
    TPU_V3_CORE,
    AllReduceConfig,
    DeviceProfile,
    EngineProfile,
)
from repro.runtime.device import DeviceStats
from repro.runtime.parallel.executor import MultiReplicaExecutor


@dataclass
class ParallelStepStats:
    """One synchronous step as observed across the whole pod."""

    losses: List[float]
    replica_compute_times: List[float]
    timing: StepTiming
    gradient_bytes: int
    #: Per-leaf gradient bytes in parameter traversal order (reverse of
    #: backward production order) — the bucketing input.
    grad_leaf_bytes: List[int] = field(default_factory=list)
    device_stats: List[DeviceStats] = field(default_factory=list)
    async_compile: dict = field(default_factory=dict)

    @property
    def loss(self) -> float:
        """Pod loss (replica mean, accumulated in replica order)."""
        total = 0.0
        for value in self.losses:
            total += value
        return total / len(self.losses)

    @property
    def compute_time(self) -> float:
        return self.timing.compute_time

    @property
    def allreduce_time(self) -> float:
        return self.timing.allreduce_time

    @property
    def step_time(self) -> float:
        return self.timing.total


class ParallelDataParallelTrainer:
    """Train ``n_replicas`` real model replicas in lockstep on a thread pool.

    ``build_model(device)`` must be deterministic in the device (same
    seed per replica) so replicas start identical, as a synchronously
    initialized pod does.  When ``async_compile`` is true the replicas
    share one fresh :class:`AsyncCompiler`, so a cold trace is compiled
    once in the background while every replica falls back to op-by-op
    execution — no replica ever stalls on the JIT.
    """

    def __init__(
        self,
        build_model: Callable,
        optimizer_factory: Callable,
        n_replicas: int,
        profile: Optional[DeviceProfile] = None,
        engine: Optional[EngineProfile] = None,
        allreduce: Optional[AllReduceConfig] = None,
        async_compile=False,
        serial: bool = False,
        device_kind: str = "lazy",
        pod_size: Optional[int] = None,
    ) -> None:
        from repro.hlo.compiler import AsyncCompiler
        from repro.tensor.device import Device

        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self.profile = profile or TPU_V3_CORE
        self.engine = engine or S4TF_LAZY
        if async_compile is True:
            self.compiler: Optional[AsyncCompiler] = AsyncCompiler()
        elif isinstance(async_compile, AsyncCompiler):
            self.compiler = async_compile
        else:
            self.compiler = None
        kwargs = {}
        if device_kind == "lazy":
            kwargs["async_compile"] = self.compiler or False
        self.devices = [
            Device(
                device_kind,
                self.profile,
                self.engine,
                name=f"replica:{i}",
                **kwargs,
            )
            for i in range(n_replicas)
        ]
        self.models = [build_model(device) for device in self.devices]
        self.optimizers = [optimizer_factory() for _ in range(n_replicas)]
        # ``pod_size`` decouples the simulated pod from the number of real
        # replicas: a 128-core pod can be driven by (say) 4 real replicas
        # when running all 128 would be infeasible on the host.
        self.pod = PodSimulator(self.profile, pod_size or n_replicas, allreduce)
        self.executor = MultiReplicaExecutor(n_replicas, serial=serial)

    # -- batch placement -----------------------------------------------------

    def place_shards(self, shards: Sequence[Tuple]) -> List[Tuple]:
        """Place per-replica ``(x, y)`` arrays on their replica's device."""
        from repro.tensor.tensor import Tensor

        if len(shards) != self.n_replicas:
            raise ValueError(
                f"got {len(shards)} shards for {self.n_replicas} replicas"
            )
        return [
            (Tensor(x, device), Tensor(y, device))
            for (x, y), device in zip(shards, self.devices)
        ]

    def replicate_batch(self, x, y) -> List[Tuple]:
        """The same batch on every replica (for bit-identity tests)."""
        return self.place_shards([(x, y)] * self.n_replicas)

    # -- the synchronous step ------------------------------------------------

    def step(self, loss_fn: Callable, shards: Sequence[Tuple]) -> ParallelStepStats:
        """One lockstep training step over per-replica ``(x, y)`` tensors."""
        from repro.core import value_and_gradient

        if len(shards) != self.n_replicas:
            raise ValueError(
                f"got {len(shards)} shards for {self.n_replicas} replicas"
            )

        def forward_backward(i: int):
            device = self.devices[i]
            x, y = shards[i]
            start = device.elapsed
            loss, gradient = value_and_gradient(
                loss_fn, self.models[i], x, y, wrt=0
            )
            leaves = _tangent_leaves(gradient)
            values = _materialize(device, [loss] + _tensor_leaves(leaves))
            device.sync()
            loss_value = float(np.asarray(values[0]).reshape(()))
            grad_values = _leaf_values(leaves, values[1:])
            return loss_value, gradient, grad_values, device.elapsed - start

        passes = self.executor.run(forward_backward)
        losses = [p[0] for p in passes]
        gradient_trees = [p[1] for p in passes]
        forward_times = [p[3] for p in passes]

        # Host-side all-reduce: sum in replica order, then scale — the
        # deterministic merge every replica receives identically.
        averaged = _average_leaves([p[2] for p in passes])

        def apply_update(i: int) -> float:
            device = self.devices[i]
            start = device.elapsed
            averaged_tree = _rebuild(gradient_trees[i], averaged, device)
            self.optimizers[i].update(self.models[i], averaged_tree)
            if device.kind == "lazy":
                from repro.tensor import LazyTensorBarrier

                LazyTensorBarrier(device)
            device.sync()
            return device.elapsed - start

        update_times = self.executor.run(apply_update)
        compute_times = [f + u for f, u in zip(forward_times, update_times)]

        leaf_sizes = tangent_leaf_sizes(gradient_trees[0])
        gradient_bytes = sum(leaf_sizes)
        timing = self.pod.step_time_multi(
            compute_times,
            gradient_bytes,
            # Backward produces gradients output-to-input: reverse of the
            # parameter traversal order, which is what bucketing sees.
            grad_leaf_bytes=list(reversed(leaf_sizes)),
        )
        stats = ParallelStepStats(
            losses=losses,
            replica_compute_times=compute_times,
            timing=timing,
            gradient_bytes=gradient_bytes,
            grad_leaf_bytes=leaf_sizes,
            device_stats=[
                dataclasses.replace(device.sim.stats) for device in self.devices
            ],
        )
        if self.compiler is not None:
            stats.async_compile = self.compiler.stats_dict()
        return stats

    # -- reporting -----------------------------------------------------------

    def throughput(
        self, stats: ParallelStepStats, per_replica_batch: int
    ) -> Tuple[float, float]:
        """(global examples/s, per-core examples/s) for a measured step."""
        n_cores = self.pod.n_cores
        total = n_cores * per_replica_batch / stats.step_time
        return total, total / n_cores

    def async_stats(self) -> dict:
        return self.compiler.stats_dict() if self.compiler is not None else {}

    def wait_for_compiles(self) -> None:
        if self.compiler is not None:
            self.compiler.wait()

    def shutdown(self) -> None:
        self.executor.shutdown()


# -- tangent-tree plumbing ---------------------------------------------------


def _tangent_leaves(tree) -> list:
    """Non-ZERO leaves in :func:`tree_map` traversal order."""
    leaves: list = []

    def visit(leaf):
        leaves.append(leaf)
        return leaf

    tree_map(visit, tree)
    return leaves


def _is_tensor(leaf) -> bool:
    return hasattr(leaf, "_impl") and hasattr(leaf, "device")


def _tensor_leaves(leaves: Sequence) -> list:
    return [leaf for leaf in leaves if _is_tensor(leaf)]


def _materialize(device, tensors: Sequence) -> list:
    """Observe many tensors in one materialization (one fused fragment)."""
    if device.kind == "lazy":
        return device.runtime.materialize([t._impl for t in tensors])
    return [t.numpy() for t in tensors]


def _leaf_values(leaves: Sequence, tensor_values: Sequence) -> list:
    """Align materialized arrays back onto the full leaf list (floats pass
    through unchanged)."""
    values = []
    it = iter(tensor_values)
    for leaf in leaves:
        if _is_tensor(leaf):
            values.append(np.asarray(next(it), dtype=np.float32))
        else:
            values.append(float(leaf))
    return values


def _average_leaves(replica_values: Sequence[Sequence]) -> list:
    """Leafwise mean across replicas, accumulated in replica-id order.

    Sum-then-scale keeps the merge deterministic and, for power-of-two
    replica counts with identical addends, exact in f32.
    """
    n = len(replica_values)
    averaged = []
    for j in range(len(replica_values[0])):
        first = replica_values[0][j]
        if isinstance(first, float):
            acc = first
            for r in range(1, n):
                acc += replica_values[r][j]
            averaged.append(acc / n)
        else:
            acc = np.array(first, dtype=np.float32, copy=True)
            for r in range(1, n):
                np.add(acc, replica_values[r][j], out=acc)
            np.multiply(acc, np.float32(1.0 / n), out=acc)
            averaged.append(acc)
    return averaged


def _rebuild(tree, leaf_values: Sequence, device):
    """A tangent tree congruent to ``tree`` with ``leaf_values`` leaves,
    tensor leaves placed on ``device``."""
    from repro.tensor.tensor import Tensor

    it = iter(leaf_values)

    def place(leaf):
        value = next(it)
        if _is_tensor(leaf):
            return Tensor(value, device)
        return value

    return tree_map(place, tree)
