"""Concurrent execution engine: real numerics for every pod replica.

``MultiReplicaExecutor`` fans per-replica work out to a thread pool with
deterministic (replica-id-ordered) merges; ``ParallelDataParallelTrainer``
uses it to run synchronous data-parallel training where *all* replicas
execute real NumPy numerics — the concurrent upgrade of the
single-representative :class:`~repro.training.distributed.DataParallelTrainer`.
"""

from repro.runtime.parallel.executor import MultiReplicaExecutor
from repro.runtime.parallel.trainer import (
    ParallelDataParallelTrainer,
    ParallelStepStats,
)

__all__ = [
    "MultiReplicaExecutor",
    "ParallelDataParallelTrainer",
    "ParallelStepStats",
]
