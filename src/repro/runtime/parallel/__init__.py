"""Concurrent execution engine: real numerics for every pod replica.

``MultiReplicaExecutor`` fans per-replica work out over a selectable
backend — ``"serial"`` (the oracle loop), ``"thread"`` (a pool; NumPy
releases the GIL), or ``"process"`` (forked workers; true multi-core) —
always with deterministic, replica-id-ordered merges.
``ParallelDataParallelTrainer`` uses it to run synchronous data-parallel
training where *all* replicas execute real NumPy numerics; under the
process backend, gradients cross address spaces through the zero-copy
shared-memory views of :mod:`repro.runtime.parallel.shm`.  The
differential harness proves the three backends bit-identical.
"""

from repro.runtime.parallel.executor import (
    BACKENDS,
    MultiReplicaExecutor,
    resolve_backend,
)
from repro.runtime.parallel.process import (
    ProcessReplicaExecutor,
    ReplicaError,
    ReplicaWorkerPool,
    WorkerCrash,
    current_worker_replica,
    fork_supported,
)
from repro.runtime.parallel.shm import (
    GradientExchange,
    LeafSpec,
    WorkerAttachment,
    registered_segments,
    segment_exists,
)
from repro.runtime.parallel.trainer import (
    ParallelDataParallelTrainer,
    ParallelStepStats,
)

__all__ = [
    "BACKENDS",
    "GradientExchange",
    "LeafSpec",
    "MultiReplicaExecutor",
    "ParallelDataParallelTrainer",
    "ParallelStepStats",
    "ProcessReplicaExecutor",
    "ReplicaError",
    "ReplicaWorkerPool",
    "WorkerAttachment",
    "WorkerCrash",
    "current_worker_replica",
    "fork_supported",
    "registered_segments",
    "resolve_backend",
    "segment_exists",
]
