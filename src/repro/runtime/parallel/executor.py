"""Multi-backend execution of per-replica work.

The paper's pods run every replica for real; the previous simulation
shortcut ran one representative replica and assumed the rest identical.
:class:`MultiReplicaExecutor` removes the shortcut and now selects *how*
the replicas overlap through a ``backend`` knob:

* ``"serial"`` — a plain loop (the semantic oracle the differential
  tests compare everything against);
* ``"thread"`` — a thread pool: NumPy kernels release the GIL, so the
  numeric phases overlap on multi-core hosts;
* ``"process"`` — forked worker processes
  (:class:`~repro.runtime.parallel.process.ProcessReplicaExecutor`): the
  *whole* replica overlaps, pure-Python phases included.

Whatever the backend, results come back in replica-id order — never
completion order — and the first replica exception (in id order)
propagates only after every submitted replica has finished, so no worker
is abandoned mid-step and downstream merges stay deterministic.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, TypeVar

T = TypeVar("T")

BACKENDS = ("serial", "thread", "process")


def resolve_backend(
    n_replicas: int, backend: Optional[str], serial: bool
) -> str:
    """The effective backend for ``n_replicas`` replicas.

    ``backend`` wins when given; otherwise the legacy ``serial`` flag
    picks serial vs thread.  A single replica always degrades to serial
    (there is nothing to overlap).
    """
    if backend is None:
        backend = "serial" if serial else "thread"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; expected one of {BACKENDS}"
        )
    if n_replicas == 1:
        return "serial"
    return backend


class MultiReplicaExecutor:
    """Run a callable once per replica, concurrently and deterministically.

    ``run(fn)`` maps ``fn`` over replica ids ``0..n_replicas-1``.  Results
    are ordered by replica id — never by completion order — and the first
    replica exception (in id order) propagates to the caller after every
    submitted replica has finished, so no worker is abandoned mid-step.
    ``backend="serial"`` degrades to a plain loop with identical
    semantics, which the differential tests use to pin schedule-order
    independence; ``backend="process"`` forks a child per replica per
    run (closures are inherited, results must be picklable).
    """

    def __init__(
        self,
        n_replicas: int,
        max_workers: Optional[int] = None,
        serial: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self.backend = resolve_backend(n_replicas, backend, serial)
        self.serial = self.backend == "serial"
        self._pool: Optional[ThreadPoolExecutor] = None
        self._process_executor = None
        if self.backend == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers or n_replicas,
                thread_name_prefix="replica",
            )
        elif self.backend == "process":
            from repro.runtime.parallel.process import ProcessReplicaExecutor

            self._process_executor = ProcessReplicaExecutor(n_replicas)

    def run(self, fn: Callable[[int], T]) -> List[T]:
        """``[fn(0), fn(1), ...]`` — computed concurrently, returned in order."""
        if self._process_executor is not None:
            return self._process_executor.run(fn)
        if self.serial or self._pool is None:
            return [fn(i) for i in range(self.n_replicas)]
        futures = [self._pool.submit(fn, i) for i in range(self.n_replicas)]
        # Drain every future before raising so a failing replica does not
        # leave siblings running against half-updated shared state.
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcomes.append((None, exc))
        for _, exc in outcomes:
            if exc is not None:
                raise exc
        return [value for value, _ in outcomes]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._process_executor is not None:
            self._process_executor.shutdown()

    def __enter__(self) -> "MultiReplicaExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
