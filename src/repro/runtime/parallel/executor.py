"""Thread-pool execution of per-replica work.

The paper's pods run every replica for real; the previous simulation
shortcut ran one representative replica and assumed the rest identical.
:class:`MultiReplicaExecutor` removes the shortcut: each replica's NumPy
numerics run on their own worker thread (NumPy kernels release the GIL,
so they genuinely overlap on multi-core hosts), and results come back in
replica-id order so downstream merges are deterministic regardless of
host thread scheduling.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, TypeVar

T = TypeVar("T")


class MultiReplicaExecutor:
    """Run a callable once per replica, concurrently and deterministically.

    ``run(fn)`` maps ``fn`` over replica ids ``0..n_replicas-1``.  Results
    are ordered by replica id — never by completion order — and the first
    replica exception (in id order) propagates to the caller after every
    submitted replica has finished, so no worker is abandoned mid-step.
    ``serial=True`` degrades to a plain loop with identical semantics,
    which the differential tests use to pin thread-order independence.
    """

    def __init__(
        self,
        n_replicas: int,
        max_workers: Optional[int] = None,
        serial: bool = False,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self.serial = serial or n_replicas == 1
        self._pool: Optional[ThreadPoolExecutor] = None
        if not self.serial:
            self._pool = ThreadPoolExecutor(
                max_workers=max_workers or n_replicas,
                thread_name_prefix="replica",
            )

    def run(self, fn: Callable[[int], T]) -> List[T]:
        """``[fn(0), fn(1), ...]`` — computed concurrently, returned in order."""
        if self.serial or self._pool is None:
            return [fn(i) for i in range(self.n_replicas)]
        futures = [self._pool.submit(fn, i) for i in range(self.n_replicas)]
        # Drain every future before raising so a failing replica does not
        # leave siblings running against half-updated shared state.
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcomes.append((None, exc))
        for _, exc in outcomes:
            if exc is not None:
                raise exc
        return [value for value, _ in outcomes]

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "MultiReplicaExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
