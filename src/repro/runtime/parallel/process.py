"""Process-backed replica execution: true multi-core, same contracts.

The thread executor overlaps replicas only while NumPy holds the GIL
released; pure-Python phases (tracing, SIL interpretation, the optimizer
walk) serialize.  This module runs each replica in its own *process* so
the whole step overlaps, while preserving the exact executor contracts
the differential harness pins: replica-id-ordered results, drain-before-
raise, and bit-identical numerics.

Two building blocks:

* :class:`ProcessReplicaExecutor` — the generic ``run(fn)`` face.  Each
  ``run`` **forks** one short-lived child per replica, so ``fn`` may be
  any closure (it is inherited through fork, never pickled); only the
  *result* crosses the pipe.  Children are drained in replica-id order
  and the first failure (in id order) is raised after every sibling has
  been collected.

* :class:`ReplicaWorkerPool` — persistent command-loop workers for the
  process trainer.  Each worker owns replica state (device, model,
  optimizer) built *in the worker* by a factory inherited through fork,
  and answers ``(command, payload)`` requests over a duplex pipe.  A
  worker death (``SIGKILL``, crash) surfaces as :class:`WorkerCrash`
  after the siblings drain; the pool stays usable — dead replicas are
  respawned on demand and restored from a survivor's snapshot.

Pool lifecycle state (pipes, process handles, death marks) is guarded by
the ``runtime.parallel.pool`` lock, registered with the concurrency
inventory.  Fork safety: :mod:`repro.locks` reinitializes every
instrumented lock in the child via ``os.register_at_fork``, and
:mod:`repro.runtime.parallel.shm` clears the child's inherited segment
registry so only the driver ever unlinks shared memory.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from typing import Callable, List, Optional, Tuple, TypeVar

from repro.locks import named_rlock

T = TypeVar("T")

#: Set inside a worker process to its replica id (None on the driver).
#: Fault-injection tests read this to target one replica from a shared
#: loss closure.
_WORKER_REPLICA = None


def current_worker_replica() -> Optional[int]:
    """The replica id when called inside a process worker, else None."""
    return _WORKER_REPLICA


def fork_supported() -> bool:
    """True when the host can fork (the process backend's requirement)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _require_fork():
    if not fork_supported():
        raise RuntimeError(
            "backend='process' needs the fork start method (replica "
            "closures are inherited, not pickled); this platform offers "
            f"{multiprocessing.get_all_start_methods()}"
        )
    return multiprocessing.get_context("fork")


class ReplicaError(RuntimeError):
    """A replica's work raised; re-raised on the driver after the drain."""

    def __init__(self, replica: int, exc_type: str, message: str,
                 tb: str = "") -> None:
        super().__init__(
            f"replica {replica} raised {exc_type}: {message}"
            + (f"\n--- worker traceback ---\n{tb}" if tb else "")
        )
        self.replica = replica
        self.exc_type = exc_type


class WorkerCrash(RuntimeError):
    """A replica worker died (killed or crashed) before replying."""

    def __init__(self, replica: int) -> None:
        super().__init__(
            f"replica {replica} worker died mid-step (killed or crashed)"
        )
        self.replica = replica


def _error_payload(exc: BaseException) -> Tuple[str, str, str]:
    return (type(exc).__name__, str(exc), traceback.format_exc())


# ---------------------------------------------------------------------------
# Fork-per-run executor (generic closures, no persistent state)
# ---------------------------------------------------------------------------


def _run_replica_child(fn, replica: int, conn) -> None:
    global _WORKER_REPLICA
    _WORKER_REPLICA = replica
    try:
        result = fn(replica)
    except BaseException as exc:  # noqa: BLE001 - shipped to the driver
        conn.send(("error", _error_payload(exc)))
    else:
        conn.send(("ok", result))
    finally:
        conn.close()


class ProcessReplicaExecutor:
    """Run ``fn`` once per replica, each in a freshly-forked process.

    Same contract as the thread executor: results in replica-id order,
    every child drained before the first (id-ordered) failure is raised.
    ``fn`` is inherited through fork so arbitrary closures work; the
    returned values must be picklable (they ride the result pipe).
    """

    def __init__(self, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self._ctx = _require_fork()

    def run(self, fn: Callable[[int], T]) -> List[T]:
        conns, procs = [], []
        for i in range(self.n_replicas):
            # Sequential create-start-close keeps each pipe's write end
            # confined to its own child, so a child death EOFs its pipe.
            recv_conn, send_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_run_replica_child,
                args=(fn, i, send_conn),
                daemon=True,
                name=f"replica-proc:{i}",
            )
            proc.start()
            send_conn.close()
            conns.append(recv_conn)
            procs.append(proc)
        outcomes: List[Tuple[Optional[T], Optional[BaseException]]] = []
        for i in range(self.n_replicas):
            try:
                status, payload = conns[i].recv()
            except EOFError:
                outcomes.append((None, WorkerCrash(i)))
            else:
                if status == "ok":
                    outcomes.append((payload, None))
                else:
                    outcomes.append((None, ReplicaError(i, *payload)))
            finally:
                conns[i].close()
                procs[i].join()
        for _, exc in outcomes:
            if exc is not None:
                raise exc
        return [value for value, _ in outcomes]

    def shutdown(self) -> None:
        """Nothing persistent to tear down (children die per run)."""

    def __enter__(self) -> "ProcessReplicaExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# Persistent command-loop workers (the trainer's replicas)
# ---------------------------------------------------------------------------


def _worker_main(replica: int, conn, worker_factory) -> None:
    """The worker process body: build replica state, serve commands."""
    global _WORKER_REPLICA
    _WORKER_REPLICA = replica
    try:
        state = worker_factory(replica)
    except BaseException as exc:  # noqa: BLE001 - surfaced on first request
        conn.send(("error", _error_payload(exc)))
        conn.close()
        return
    try:
        while True:
            try:
                command, payload = conn.recv()
            except EOFError:
                break
            if command == "shutdown":
                try:
                    state.close()
                finally:
                    conn.send(("ok", None))
                break
            try:
                result = state.handle(command, payload)
            except BaseException as exc:  # noqa: BLE001 - to the driver
                conn.send(("error", _error_payload(exc)))
            else:
                conn.send(("ok", result))
    finally:
        # close() is idempotent; an EOF exit (driver died) must still
        # release this worker's shared-memory attachments cleanly.
        state.close()
        conn.close()


class ReplicaWorkerPool:
    """``n_replicas`` persistent forked workers answering ordered commands.

    ``worker_factory(replica_id)`` runs *inside* each worker and must
    return an object with ``handle(command, payload)`` and ``close()``.
    The factory and everything it closes over are inherited through
    fork — only command payloads and replies are pickled, and the
    trainer keeps gradient arrays out of both (they go through
    :mod:`repro.runtime.parallel.shm`).
    """

    def __init__(self, n_replicas: int, worker_factory) -> None:
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        self.n_replicas = n_replicas
        self._factory = worker_factory
        self._ctx = _require_fork()
        self._lifecycle = named_rlock("runtime.parallel.pool")
        self._conns: List = [None for _ in range(n_replicas)]
        self._procs: List = [None for _ in range(n_replicas)]
        with self._lifecycle:
            for i in range(n_replicas):
                self._spawn(i)

    # -- lifecycle (all mutations under the pool lock) ----------------------

    def _spawn(self, replica: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(replica, child_conn, self._factory),
            daemon=True,
            name=f"replica-worker:{replica}",
        )
        proc.start()
        child_conn.close()
        self._conns[replica] = parent_conn
        self._procs[replica] = proc

    def _mark_dead(self, replica: int) -> None:
        with self._lifecycle:
            conn, proc = self._conns[replica], self._procs[replica]
            self._conns[replica] = None
            self._procs[replica] = None
        if conn is not None:
            conn.close()
        if proc is not None:
            proc.join(timeout=5)

    def alive(self, replica: int) -> bool:
        with self._lifecycle:
            proc = self._procs[replica]
            return proc is not None and proc.is_alive()

    def dead_replicas(self) -> List[int]:
        return [i for i in range(self.n_replicas) if not self.alive(i)]

    def respawn(self, replica: int) -> None:
        """Replace a dead worker with a fresh fork (initial replica state)."""
        self._mark_dead(replica)
        with self._lifecycle:
            self._spawn(replica)

    def shutdown(self) -> None:
        with self._lifecycle:
            conns = list(self._conns)
            procs = list(self._procs)
            self._conns = [None] * self.n_replicas
            self._procs = [None] * self.n_replicas
        for conn in conns:
            if conn is None:
                continue
            try:
                conn.send(("shutdown", None))
                conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
        for proc in procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in conns:
            if conn is not None:
                conn.close()

    # -- ordered request/drain ----------------------------------------------

    def request(self, replica: int, command: str, payload=None):
        """One command to one worker; its reply (or raises)."""
        results = self._exchange(command, {replica: payload})
        return results[replica]

    def gather(self, command: str, payloads: List) -> List:
        """The command to every worker; replica-id-ordered replies.

        Sends to all, then drains *every* live worker before raising the
        first failure in replica-id order — a dying replica never
        abandons a sibling mid-command.
        """
        if len(payloads) != self.n_replicas:
            raise ValueError(
                f"got {len(payloads)} payloads for {self.n_replicas} replicas"
            )
        results = self._exchange(command, dict(enumerate(payloads)))
        return [results[i] for i in range(self.n_replicas)]

    def _exchange(self, command: str, payloads: dict):
        with self._lifecycle:
            conns = {i: self._conns[i] for i in payloads}
        failures: dict = {}
        pending: List[int] = []
        for i in sorted(payloads):
            conn = conns[i]
            if conn is None:
                failures[i] = WorkerCrash(i)
                continue
            try:
                conn.send((command, payloads[i]))
            except (OSError, BrokenPipeError):
                failures[i] = WorkerCrash(i)
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                raise TypeError(
                    "backend='process' ships command payloads by pickle; "
                    f"payload for {command!r} is not picklable (define "
                    "loss functions at module level): " + str(exc)
                ) from exc
            else:
                pending.append(i)
        results: dict = {}
        for i in pending:  # replica-id order; drains every live worker
            try:
                status, payload = conns[i].recv()
            except (EOFError, OSError):
                failures[i] = WorkerCrash(i)
            else:
                if status == "ok":
                    results[i] = payload
                else:
                    failures[i] = ReplicaError(i, *payload)
        for i in failures:
            if isinstance(failures[i], WorkerCrash):
                self._mark_dead(i)
        if failures:
            raise failures[min(failures)]
        return results

    def __enter__(self) -> "ReplicaWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
