"""The pre-compiled kernel library.

Every accelerated execution path — the eager Tensor backend, the HLO
compiler's generated code, and the baseline framework engines — bottoms out
in these NumPy kernels, so all engines compute identical numerics and
differ only in *how* they schedule and fuse kernels.  Each kernel carries a
FLOP and memory-traffic estimator consumed by the simulated-device cost
model.

Convolutions use im2col (vectorized NumPy, per the project's performance
guidance) rather than Python loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

DTYPE = np.float32
ITEMSIZE = 4


def _numel(shape) -> int:
    return int(np.prod(shape)) if shape else 1


@dataclass(frozen=True)
class Kernel:
    """A named device kernel with cost estimators.

    ``flops(out_shape, in_shapes)`` and ``traffic(out_shape, in_shapes)``
    feed the roofline model; ``elementwise`` marks fusion candidates.
    """

    name: str
    fn: Callable
    elementwise: bool = False
    flops_per_element: float = 1.0
    flops_fn: Optional[Callable] = None
    traffic_fn: Optional[Callable] = None

    def flops(self, out_shape, in_shapes) -> float:
        if self.flops_fn is not None:
            return self.flops_fn(out_shape, in_shapes)
        return self.flops_per_element * _numel(out_shape)

    def traffic(self, out_shape, in_shapes) -> float:
        if self.traffic_fn is not None:
            return self.traffic_fn(out_shape, in_shapes)
        total = _numel(out_shape)
        for s in in_shapes:
            total += _numel(s)
        return total * ITEMSIZE

    def __call__(self, *args):
        return self.fn(*args)


KERNELS: dict[str, Kernel] = {}


def kernel(name: str, **kwargs) -> Callable[[Callable], Kernel]:
    def register(fn: Callable) -> Kernel:
        if name in KERNELS:
            raise ValueError(f"kernel {name!r} already registered")
        k = Kernel(name, fn, **kwargs)
        KERNELS[name] = k
        return k

    return register


def get_kernel(name: str) -> Kernel:
    return KERNELS[name]


# ---------------------------------------------------------------------------
# Elementwise kernels (fusion candidates).
# ---------------------------------------------------------------------------


@kernel("add", elementwise=True)
def add(x, y):
    return np.add(x, y, dtype=DTYPE)


@kernel("sub", elementwise=True)
def sub(x, y):
    return np.subtract(x, y, dtype=DTYPE)


@kernel("mul", elementwise=True)
def mul(x, y):
    return np.multiply(x, y, dtype=DTYPE)


@kernel("div", elementwise=True)
def div(x, y):
    return np.divide(x, y, dtype=DTYPE)


@kernel("pow", elementwise=True, flops_per_element=10.0)
def pow_(x, y):
    return np.power(x, y, dtype=DTYPE)


@kernel("neg", elementwise=True)
def neg(x):
    return np.negative(x)


@kernel("exp", elementwise=True, flops_per_element=10.0)
def exp(x):
    return np.exp(x, dtype=DTYPE)


@kernel("log", elementwise=True, flops_per_element=10.0)
def log(x):
    return np.log(x, dtype=DTYPE)


@kernel("sqrt", elementwise=True, flops_per_element=4.0)
def sqrt(x):
    return np.sqrt(x, dtype=DTYPE)


@kernel("rsqrt", elementwise=True, flops_per_element=4.0)
def rsqrt(x):
    return (1.0 / np.sqrt(x)).astype(DTYPE)


@kernel("tanh", elementwise=True, flops_per_element=10.0)
def tanh(x):
    return np.tanh(x, dtype=DTYPE)


@kernel("sigmoid", elementwise=True, flops_per_element=10.0)
def sigmoid(x):
    return (1.0 / (1.0 + np.exp(-x))).astype(DTYPE)


@kernel("relu", elementwise=True)
def relu(x):
    return np.maximum(x, 0.0).astype(DTYPE)


@kernel("abs", elementwise=True)
def abs_(x):
    return np.abs(x)


@kernel("sign", elementwise=True)
def sign(x):
    return np.sign(x).astype(DTYPE)


@kernel("maximum", elementwise=True)
def maximum(x, y):
    return np.maximum(x, y)


@kernel("minimum", elementwise=True)
def minimum(x, y):
    return np.minimum(x, y)


@kernel("select", elementwise=True)
def select(cond, x, y):
    return np.where(cond, x, y).astype(DTYPE)


@kernel("greater", elementwise=True)
def greater(x, y):
    return np.greater(x, y)


@kernel("greater_equal", elementwise=True)
def greater_equal(x, y):
    return np.greater_equal(x, y)


@kernel("less", elementwise=True)
def less(x, y):
    return np.less(x, y)


@kernel("less_equal", elementwise=True)
def less_equal(x, y):
    return np.less_equal(x, y)


@kernel("equal", elementwise=True)
def equal(x, y):
    return np.equal(x, y)


@kernel("cast", elementwise=True)
def cast(x):
    return np.asarray(x, dtype=DTYPE)


# ---------------------------------------------------------------------------
# Shape / data-movement kernels.
# ---------------------------------------------------------------------------


@kernel("reshape", flops_per_element=0.0)
def reshape(x, shape):
    return np.reshape(x, shape)


@kernel("transpose", flops_per_element=0.0)
def transpose(x, axes):
    return np.transpose(x, axes)


@kernel("broadcast_to", flops_per_element=0.0)
def broadcast_to(x, shape):
    return np.broadcast_to(x, shape)


@kernel("pad")
def pad(x, paddings):
    return np.pad(x, paddings)


@kernel("slice", flops_per_element=0.0)
def slice_(x, starts, sizes):
    index = tuple(slice(b, b + s) for b, s in zip(starts, sizes))
    return np.ascontiguousarray(x[index])


@kernel("concat")
def concat(*args):
    *arrays, axis = args
    return np.concatenate(arrays, axis=axis)


@kernel("gather")
def gather(x, indices, axis):
    return np.take(x, indices.astype(np.int64), axis=axis)


@kernel("one_hot")
def one_hot(indices, depth):
    return np.eye(depth, dtype=DTYPE)[indices.astype(np.int64)]


@kernel("iota", flops_per_element=0.0)
def iota(n):
    return np.arange(n, dtype=DTYPE)


# ---------------------------------------------------------------------------
# Reductions.
# ---------------------------------------------------------------------------


def _reduce_flops(out_shape, in_shapes):
    return _numel(in_shapes[0])


@kernel("reduce_sum", flops_fn=_reduce_flops)
def reduce_sum(x, axes, keepdims):
    return np.sum(x, axis=axes, keepdims=keepdims, dtype=DTYPE)


@kernel("reduce_mean", flops_fn=_reduce_flops)
def reduce_mean(x, axes, keepdims):
    return np.mean(x, axis=axes, keepdims=keepdims, dtype=DTYPE)


@kernel("reduce_max", flops_fn=_reduce_flops)
def reduce_max(x, axes, keepdims):
    return np.max(x, axis=axes, keepdims=keepdims)


@kernel("argmax", flops_fn=_reduce_flops)
def argmax(x, axis):
    return np.argmax(x, axis=axis).astype(DTYPE)


# ---------------------------------------------------------------------------
# Linear algebra.
# ---------------------------------------------------------------------------


def _matmul_flops(out_shape, in_shapes):
    (a_shape, b_shape) = in_shapes
    k = a_shape[-1]
    return 2.0 * _numel(out_shape) * k


@kernel("matmul", flops_fn=_matmul_flops)
def matmul(a, b):
    return np.matmul(a, b).astype(DTYPE)


# ---------------------------------------------------------------------------
# Convolutions & pooling (NHWC, im2col formulation).
# ---------------------------------------------------------------------------


def _conv_out_hw(h, w, kh, kw, stride, padding):
    if padding == "same":
        oh = math.ceil(h / stride)
        ow = math.ceil(w / stride)
    else:
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
    return oh, ow


def _same_pads(size, k, stride):
    out = math.ceil(size / stride)
    total = max((out - 1) * stride + k - size, 0)
    return total // 2, total - total // 2


def _im2col(x, kh, kw, stride, padding):
    """(N,H,W,C) -> (N,OH,OW,KH*KW*C) patch matrix."""
    n, h, w, c = x.shape
    if padding == "same":
        ph = _same_pads(h, kh, stride)
        pw = _same_pads(w, kw, stride)
        x = np.pad(x, ((0, 0), ph, pw, (0, 0)))
        h, w = x.shape[1], x.shape[2]
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, kh, kw, c),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )
    return patches.reshape(n, oh, ow, kh * kw * c), (oh, ow)


def _conv_flops(out_shape, in_shapes):
    x_shape, f_shape = in_shapes[0], in_shapes[1]
    kh, kw, cin, _ = f_shape
    return 2.0 * _numel(out_shape) * kh * kw * cin


@kernel("conv2d", flops_fn=_conv_flops)
def conv2d(x, filters, stride, padding):
    """NHWC x (KH,KW,CIN,COUT) -> NHWC."""
    kh, kw, cin, cout = filters.shape
    cols, (oh, ow) = _im2col(x, kh, kw, stride, padding)
    out = cols.reshape(-1, kh * kw * cin) @ filters.reshape(kh * kw * cin, cout)
    return out.reshape(x.shape[0], oh, ow, cout).astype(DTYPE)


@kernel("conv2d_grad_filter", flops_fn=_conv_flops)
def conv2d_grad_filter(x, grad_out, filter_shape, stride, padding):
    kh, kw, cin, cout = filter_shape
    cols, (oh, ow) = _im2col(x, kh, kw, stride, padding)
    cols2d = cols.reshape(-1, kh * kw * cin)
    g2d = grad_out.reshape(-1, cout)
    return (cols2d.T @ g2d).reshape(kh, kw, cin, cout).astype(DTYPE)


@kernel("conv2d_grad_input", flops_fn=_conv_flops)
def conv2d_grad_input(grad_out, filters, input_shape, stride, padding):
    n, h, w, cin = input_shape
    kh, kw, _, cout = filters.shape
    if padding == "same":
        ph = _same_pads(h, kh, stride)
        pw = _same_pads(w, kw, stride)
    else:
        ph = (0, 0)
        pw = (0, 0)
    padded_h, padded_w = h + sum(ph), w + sum(pw)
    oh, ow = grad_out.shape[1], grad_out.shape[2]
    # Scatter col gradients back into the padded input.
    gcols = grad_out.reshape(-1, cout) @ filters.reshape(kh * kw * cin, cout).T
    gcols = gcols.reshape(n, oh, ow, kh, kw, cin)
    gx = np.zeros((n, padded_h, padded_w, cin), dtype=DTYPE)
    for i in range(kh):
        for j in range(kw):
            gx[:, i : i + oh * stride : stride, j : j + ow * stride : stride, :] += (
                gcols[:, :, :, i, j, :]
            )
    return gx[:, ph[0] : ph[0] + h, pw[0] : pw[0] + w, :]


def _pool_flops(out_shape, in_shapes):
    return _numel(in_shapes[0])


@kernel("avg_pool2d", flops_fn=_pool_flops)
def avg_pool2d(x, pool, stride):
    cols, (oh, ow) = _im2col_pool(x, pool, stride)
    return cols.mean(axis=3).astype(DTYPE)


@kernel("avg_pool2d_grad", flops_fn=_pool_flops)
def avg_pool2d_grad(grad_out, input_shape, pool, stride):
    n, h, w, c = input_shape
    oh, ow = grad_out.shape[1], grad_out.shape[2]
    gx = np.zeros(input_shape, dtype=DTYPE)
    scale = 1.0 / (pool * pool)
    g = grad_out * scale
    for i in range(pool):
        for j in range(pool):
            gx[:, i : i + oh * stride : stride, j : j + ow * stride : stride, :] += g
    return gx


@kernel("max_pool2d", flops_fn=_pool_flops)
def max_pool2d(x, pool, stride):
    cols, (oh, ow) = _im2col_pool(x, pool, stride)
    return cols.max(axis=3)


@kernel("max_pool2d_grad", flops_fn=_pool_flops)
def max_pool2d_grad(x, grad_out, pool, stride):
    cols, (oh, ow) = _im2col_pool(x, pool, stride)
    maxed = cols.max(axis=3, keepdims=True)
    mask = (cols == maxed).astype(DTYPE)
    mask /= np.maximum(mask.sum(axis=3, keepdims=True), 1.0)
    g = mask * grad_out[:, :, :, None, :]
    gx = np.zeros_like(x, dtype=DTYPE)
    g = g.reshape(x.shape[0], oh, ow, pool, pool, x.shape[3])
    for i in range(pool):
        for j in range(pool):
            gx[:, i : i + oh * stride : stride, j : j + ow * stride : stride, :] += g[
                :, :, :, i, j, :
            ]
    return gx


def _im2col_pool(x, pool, stride):
    n, h, w, c = x.shape
    oh = (h - pool) // stride + 1
    ow = (w - pool) // stride + 1
    s0, s1, s2, s3 = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, oh, ow, pool, pool, c),
        strides=(s0, s1 * stride, s2 * stride, s1, s2, s3),
        writeable=False,
    )
    return patches.reshape(n, oh, ow, pool * pool, c), (oh, ow)


# ---------------------------------------------------------------------------
# Fused training kernels (used by graph engines and softmax losses).
# ---------------------------------------------------------------------------


@kernel("softmax", flops_per_element=12.0)
def softmax(logits):
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return (e / e.sum(axis=-1, keepdims=True)).astype(DTYPE)


@kernel("softmax_cross_entropy", flops_per_element=14.0)
def softmax_cross_entropy(logits, labels):
    """Mean cross entropy of one-hot ``labels`` (N,C)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    return np.asarray(-(labels * log_probs).sum(axis=-1).mean(), dtype=DTYPE)


@kernel("softmax_cross_entropy_grad", flops_per_element=14.0)
def softmax_cross_entropy_grad(logits, labels):
    p = softmax.fn(logits)
    return ((p - labels) / logits.shape[0]).astype(DTYPE)
