"""Mobile deployment runtimes — the Table 4 comparison.

Four ways to run the spline fine-tuning workload on a phone:

* **TF-Mobile-like** — the full TensorFlow runtime interpreting a graph:
  very heavy per-node cost, big resident runtime, big binary;
* **TFLite-like (standard ops)** — a lean flatbuffer interpreter walking
  one vectorized op graph per loss/gradient evaluation;
* **TFLite-like (fused custom op)** — the whole evaluation hand-fused into
  a single custom kernel: one interpreter dispatch per evaluation;
* **S4TF-like (AOT native)** — the model compiled ahead of time against
  the naive Tensor: no interpreter at all, scalar code with per-op cost at
  native-call scale (no NEON vectorization, per the paper's caveat), the
  smallest runtime footprint, but a bigger binary than TFLite because the
  language runtime is statically linked.

The *numerics* of fine-tuning are always the real thing — the platform's
own spline + line-search code running to convergence.  The runtimes differ
in the simulated time/memory/binary models, whose constants live here with
their rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.spline_data import SplineDataset
from repro.runtime.costmodel import MOBILE_CPU
from repro.sil.frontend import lower_function
from repro.sil.interp import count_instructions
from repro.spline.model import SplineModel, fine_tune, spline_evaluate


@dataclass(frozen=True)
class MobilePlatform:
    """Cost-model parameters of one deployment stack."""

    name: str
    #: Host time to execute one graph node / native op.
    per_op_overhead: float
    #: Per-evaluation session/invocation entry cost.
    per_invocation_overhead: float
    #: The whole evaluation is one fused op (TFLite custom op).
    fused_evaluation: bool
    #: Ops are vectorized over the dataset (graph frameworks) rather than
    #: executed per-sample (scalar AOT code).
    vectorized: bool
    #: Resident runtime memory (interpreter + framework libraries).
    runtime_memory_bytes: int
    #: Uncompressed binary size of the shipped runtime + model.
    binary_size_bytes: int


#: Full TF runtime on-device: ~170us/node interpreter cost, tens of MB of
#: framework residency, a 6MB+ shared library.
TF_MOBILE_PLATFORM = MobilePlatform(
    name="TensorFlow Mobile",
    per_op_overhead=170e-6,
    per_invocation_overhead=9e-4,
    fused_evaluation=False,
    vectorized=True,
    runtime_memory_bytes=78_000_000,
    binary_size_bytes=6_200_000,
)

#: TFLite flatbuffer interpreter, standard op set.
TFLITE_STANDARD_PLATFORM = MobilePlatform(
    name="TensorFlow Lite (standard operations)",
    per_op_overhead=6e-6,
    per_invocation_overhead=2.5e-5,
    fused_evaluation=False,
    vectorized=True,
    runtime_memory_bytes=11_500_000,
    binary_size_bytes=1_800_000,
)

#: TFLite with a manually fused training op (one NEON-vectorized kernel
#: per evaluation) — the fastest but least flexible variant.
TFLITE_FUSED_PLATFORM = MobilePlatform(
    name="TensorFlow Lite (manually fused custom operation)",
    per_op_overhead=6e-6,
    # The custom op copies training state in/out of the interpreter per
    # invocation, so its entry cost exceeds a plain standard-op invoke.
    per_invocation_overhead=2.5e-4,
    fused_evaluation=True,
    vectorized=True,
    runtime_memory_bytes=5_400_000,
    binary_size_bytes=1_800_000,
)

#: S4TF cross-compiled AOT: straight-line scalar native code (the Swift
#: compiler could not emit NEON on Android at the time — Section 5.1.3),
#: near-zero runtime residency, Swift runtime statically linked into the
#: binary (hence larger than TFLite's).
S4TF_MOBILE_PLATFORM = MobilePlatform(
    name="Swift for TensorFlow",
    per_op_overhead=1.2e-7,
    per_invocation_overhead=1e-6,
    fused_evaluation=False,
    vectorized=False,
    runtime_memory_bytes=3_500_000,
    binary_size_bytes=3_600_000,
)

ALL_PLATFORMS = [
    TF_MOBILE_PLATFORM,
    TFLITE_STANDARD_PLATFORM,
    TFLITE_FUSED_PLATFORM,
    S4TF_MOBILE_PLATFORM,
]


@dataclass
class MobileRunResult:
    platform: str
    training_time_s: float
    memory_bytes: int
    binary_size_bytes: int
    final_loss: float
    control_points_match: bool
    steps: int
    evaluations: int


def _graph_ops_per_evaluation(model: SplineModel) -> int:
    """Op count of one *vectorized* evaluation graph.

    A graph framework evaluates the spline over the whole dataset with
    tensor ops: one op per scalar operation of a single spline evaluation
    (each op now carries the full batch) plus the reduction/loss tail."""
    func = lower_function(spline_evaluate)
    return count_instructions(func, (model, 0.41)) + 6


def _scalar_ops_per_evaluation(model: SplineModel, n_points: int) -> int:
    """Dynamic op count of an unvectorized (per-sample) evaluation."""
    func = lower_function(spline_evaluate)
    per_point = count_instructions(func, (model, 0.41))
    return per_point * n_points + 4 * n_points


def run_mobile_fine_tuning(
    platform: MobilePlatform,
    global_model: SplineModel,
    user_data: SplineDataset,
    max_steps: int = 40,
    reference_model: SplineModel | None = None,
) -> MobileRunResult:
    """Fine-tune on one platform; returns measured/modelled statistics."""
    from repro.runtime import track

    with track() as tracker:
        personal, report = fine_tune(
            global_model, user_data.xs, user_data.ys, max_steps=max_steps
        )

    n = len(user_data)
    if platform.vectorized:
        ops_per_eval = _graph_ops_per_evaluation(global_model)
    else:
        ops_per_eval = _scalar_ops_per_evaluation(global_model, n)
    # One gradient evaluation per step (forward + reverse ≈ 4x forward ops)
    # plus the line search's extra loss evaluations.
    grad_evals = report.steps
    loss_evals = report.loss_evaluations
    total_ops = 4 * ops_per_eval * grad_evals + ops_per_eval * loss_evals
    invocations = grad_evals + loss_evals

    if platform.fused_evaluation:
        dispatched_ops = invocations  # the whole evaluation is one op
    else:
        dispatched_ops = total_ops

    host = (
        invocations * platform.per_invocation_overhead
        + dispatched_ops * platform.per_op_overhead
    )
    # Arithmetic itself: ~2 flops per scalar op over the dataset.
    flops = 2.0 * (4 * grad_evals + loss_evals) * (
        _scalar_ops_per_evaluation(global_model, n)
    )
    compute = flops / MOBILE_CPU.flops_per_sec
    training_time = host + compute

    match = True
    if reference_model is not None:
        match = all(
            abs(a - b) <= 0.015 * max(abs(a), abs(b), 1e-6)
            for a, b in zip(
                personal.control_points, reference_model.control_points
            )
        )

    memory = platform.runtime_memory_bytes + tracker.peak_bytes
    return MobileRunResult(
        platform=platform.name,
        training_time_s=training_time,
        memory_bytes=memory,
        binary_size_bytes=platform.binary_size_bytes,
        final_loss=report.final_loss,
        control_points_match=match,
        steps=report.steps,
        evaluations=invocations,
    )
