"""Graph program extraction — the Section 3.5 alternative to lazy tracing.

Before LazyTensor, the Swift for TensorFlow project explored slicing the
user's program into an accelerator program compiled fully ahead of time.
This module implements that approach as a partial evaluator over SIL:

* the model and all configuration are **compile-time constants**;
* tensor arguments are **abstract** (shape-only) values;
* concrete control flow (config `if`s, `for` loops over static layer
  lists) is evaluated away at extraction time;
* every tensor operation encountered is emitted into an HLO graph, which
  compiles to a single fused executable with *zero* per-step tracing cost.

And it reproduces the approach's documented limitation: any branch or
loop bound that depends on a *runtime tensor value* cannot be extracted —
:class:`GraphExtractionError` — which is exactly why the project moved to
lazy tracing ("models often rely on dynamically configured values that
are only available at runtime", Section 3.5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.hlo.builder import HloBuilder
from repro.hlo.compiler import Executable, compile_module
from repro.hlo.ir import Shape
from repro.sil import ir
from repro.sil.frontend import lower_function
from repro.sil.primitives import Primitive


class GraphExtractionError(ReproError):
    """The program cannot be compiled fully ahead of time."""


class AbstractTensor:
    """A shape-only stand-in for a runtime tensor during extraction."""

    __slots__ = ("inst",)

    def __init__(self, inst) -> None:
        self.inst = inst  # the HLO instruction producing this value

    @property
    def shape(self) -> tuple[int, ...]:
        return self.inst.shape.dims


class ExtractedProgram:
    """An AOT-compiled tensor program: run it with concrete arrays."""

    def __init__(self, executable: Executable, input_shapes) -> None:
        self.executable = executable
        self.input_shapes = list(input_shapes)

    @property
    def op_count(self) -> int:
        return self.executable.kernel_count

    def run(self, *arrays: np.ndarray, device=None, host_time: float = 0.0):
        args = [np.asarray(a, dtype=np.float32) for a in arrays]
        for a, expected in zip(args, self.input_shapes):
            if tuple(a.shape) != tuple(expected):
                raise GraphExtractionError(
                    f"extracted program expects input shape {expected}, "
                    f"got {a.shape} (static shapes are fixed at extraction)"
                )
        return self.executable.run(args, device=device, host_time=host_time)


#: SIL primitive name -> HLO emission for abstract tensor operands.
def _emit_binary(builder, op):
    def emit(args):
        a, b = (_as_hlo(builder, x) for x in args)
        dims = np.broadcast_shapes(a.shape.dims, b.shape.dims)
        return AbstractTensor(
            builder.binary(op, builder.broadcast(a, dims), builder.broadcast(b, dims))
        )

    return emit


def _emit_unary(builder, op):
    def emit(args):
        return AbstractTensor(builder.unary(op, _as_hlo(builder, args[0])))

    return emit


def _as_hlo(builder, value):
    if isinstance(value, AbstractTensor):
        return value.inst
    if isinstance(value, (int, float)):
        return builder.constant(float(value))
    from repro.tensor import Tensor

    if isinstance(value, Tensor):
        # A concrete tensor (model weight): embed as a constant.
        return builder.constant(value.numpy())
    raise GraphExtractionError(f"cannot lower {type(value).__name__} to HLO")


class _Extractor:
    """Partially evaluates a SIL function, emitting HLO for tensor ops."""

    def __init__(self, builder: HloBuilder) -> None:
        self.builder = builder
        b = builder
        self.tensor_rules = {
            "add": _emit_binary(b, "add"),
            "sub": _emit_binary(b, "subtract"),
            "mul": _emit_binary(b, "multiply"),
            "div": _emit_binary(b, "divide"),
            "pow": _emit_binary(b, "power"),
            "neg": _emit_unary(b, "negate"),
            "exp": _emit_unary(b, "exponential"),
            "log": _emit_unary(b, "log"),
            "tanh": _emit_unary(b, "tanh"),
            "sigmoid": _emit_unary(b, "logistic"),
            "relu": _emit_unary(b, "relu"),
            "sqrt": _emit_unary(b, "sqrt"),
            "rsqrt": _emit_unary(b, "rsqrt"),
            "abs": _emit_unary(b, "abs"),
            "identity": lambda args: args[0],
            "lt": self._emit_compare("lt"),
            "le": self._emit_compare("le"),
            "gt": self._emit_compare("gt"),
            "ge": self._emit_compare("ge"),
            "matmul_op": self._emit_matmul,
            "matmul": self._emit_matmul,
            "conv2d": self._emit_conv2d,
            "avg_pool2d": self._emit_avg_pool,
            "max_pool2d": self._emit_max_pool,
            "tensor_sum": self._emit_reduce("sum"),
            "tensor_mean": self._emit_reduce("mean"),
            "tensor_max": self._emit_reduce("max"),
            "tensor_reshape": self._emit_reshape,
            "flatten_batch": self._emit_flatten,
            "softmax_cross_entropy": self._emit_softmax_ce,
        }

    # -- emission helpers -----------------------------------------------------

    def _emit_compare(self, direction):
        def emit(args):
            a, b = (_as_hlo(self.builder, x) for x in args)
            dims = np.broadcast_shapes(a.shape.dims, b.shape.dims)
            return AbstractTensor(
                self.builder.binary(
                    "compare",
                    self.builder.broadcast(a, dims),
                    self.builder.broadcast(b, dims),
                    comparison=direction,
                )
            )

        return emit

    def _emit_matmul(self, args):
        a, b = (_as_hlo(self.builder, x) for x in args)
        return AbstractTensor(self.builder.dot(a, b))

    def _emit_conv2d(self, args):
        x = _as_hlo(self.builder, args[0])
        filters = _as_hlo(self.builder, args[1])
        stride = args[2] if len(args) > 2 else 1
        padding = args[3] if len(args) > 3 else "valid"
        if isinstance(stride, AbstractTensor) or isinstance(padding, AbstractTensor):
            raise GraphExtractionError("conv2d configuration must be static")
        return AbstractTensor(self.builder.convolution(x, filters, stride, padding))

    def _emit_avg_pool(self, args):
        x = _as_hlo(self.builder, args[0])
        pool = args[1] if len(args) > 1 else 2
        stride = args[2] if len(args) > 2 else 2
        return AbstractTensor(self.builder.avg_pool(x, pool, stride))

    def _emit_max_pool(self, args):
        x = _as_hlo(self.builder, args[0])
        pool = args[1] if len(args) > 1 else 2
        stride = args[2] if len(args) > 2 else 2
        return AbstractTensor(self.builder.max_pool(x, pool, stride))

    def _emit_reduce(self, kind):
        def emit(args):
            x = _as_hlo(self.builder, args[0])
            axes = args[1] if len(args) > 1 else None
            keepdims = args[2] if len(args) > 2 else False
            if isinstance(axes, AbstractTensor):
                raise GraphExtractionError("reduction axes must be static")
            return AbstractTensor(self.builder.reduce(x, kind, axes, bool(keepdims)))

        return emit

    def _emit_reshape(self, args):
        x = _as_hlo(self.builder, args[0])
        dims = args[1]
        if isinstance(dims, AbstractTensor):
            raise GraphExtractionError("reshape dims must be static")
        dims = tuple(dims)
        if -1 in dims:
            known = int(np.prod([d for d in dims if d != -1]))
            dims = tuple(
                x.shape.num_elements // known if d == -1 else d for d in dims
            )
        return AbstractTensor(self.builder.reshape(x, dims))

    def _emit_flatten(self, args):
        x = _as_hlo(self.builder, args[0])
        n = x.shape.dims[0]
        return AbstractTensor(
            self.builder.reshape(x, (n, x.shape.num_elements // n))
        )

    def _emit_softmax_ce(self, args):
        logits = _as_hlo(self.builder, args[0])
        labels = _as_hlo(self.builder, args[1])
        return AbstractTensor(self.builder.softmax_ce(logits, labels))

    # -- partial evaluation ------------------------------------------------------

    def evaluate(self, func: ir.Function, args: Sequence[object]):
        """Interpret ``func``; concrete values fold, abstract tensors emit."""
        env: dict[int, object] = {}
        block = func.entry
        block_args = list(args)
        steps = 0
        while True:
            steps += 1
            if steps > 100_000:
                raise GraphExtractionError(
                    "extraction did not terminate (unbounded static loop?)"
                )
            for param, value in zip(block.args, block_args):
                env[param.id] = value
            for inst in block.body:
                env[inst.result.id] = self._eval_inst(inst, env)
            term = block.terminator
            if isinstance(term, ir.ReturnInst):
                return env[term.value.id]
            if isinstance(term, ir.BrInst):
                block_args = [env[v.id] for v in term.operands]
                block = term.dest
                continue
            cond = env[term.cond.id]
            if isinstance(cond, AbstractTensor):
                raise GraphExtractionError(
                    "control flow depends on a runtime tensor value; "
                    "ahead-of-time extraction cannot slice it (Section 3.5) "
                    "— use the LazyTensor device instead"
                )
            if cond:
                block_args = [env[v.id] for v in term.true_args]
                block = term.true_dest
            else:
                block_args = [env[v.id] for v in term.false_args]
                block = term.false_dest

    def _eval_inst(self, inst: ir.Instruction, env):
        if isinstance(inst, ir.ConstInst):
            return inst.literal
        if isinstance(inst, ir.TupleInst):
            return tuple(env[v.id] for v in inst.operands)
        if isinstance(inst, ir.TupleExtractInst):
            return env[inst.operands[0].id][inst.index]
        if isinstance(inst, ir.StructExtractInst):
            owner = env[inst.operands[0].id]
            if isinstance(owner, AbstractTensor):
                if inst.field == "shape":
                    return owner.shape
                raise GraphExtractionError(
                    f"attribute {inst.field!r} of a runtime tensor is not static"
                )
            return getattr(owner, inst.field)
        if isinstance(inst, ir.ApplyInst):
            return self._eval_apply(inst, env)
        raise GraphExtractionError(f"cannot extract {inst}")

    def _eval_apply(self, inst: ir.ApplyInst, env):
        args = [env[v.id] for v in inst.args]
        callee = env[inst.callee.id] if inst.is_indirect else inst.callee.target
        has_abstract = any(isinstance(a, AbstractTensor) for a in args)

        if isinstance(callee, Primitive):
            if has_abstract or isinstance(callee.fn, type(None)):
                rule = self.tensor_rules.get(callee.name)
                if rule is None:
                    if not has_abstract:
                        return callee.fn(*args)
                    raise GraphExtractionError(
                        f"no static lowering for primitive {callee.name!r}"
                    )
                return rule(args)
            return callee.fn(*args)

        if isinstance(callee, ir.Function):
            return self.evaluate(callee, args)

        # Layers and other differentiable callables: inline their SIL.
        call_fn = getattr(type(callee), "__call_fn__", None)
        if call_fn is not None:
            return self.evaluate(call_fn.func, [callee, *args])
        sil_func = getattr(callee, "__sil_function__", None)
        if sil_func is not None:
            return self.evaluate(sil_func, args)
        if callable(callee) and not has_abstract:
            return callee(*args)
        try:
            lowered = lower_function(callee)
        except Exception as exc:
            raise GraphExtractionError(
                f"cannot statically inline call to {callee!r}: {exc}"
            ) from exc
        return self.evaluate(lowered, args)


def extract_program(
    fn,
    *static_args,
    input_shapes: Sequence[Sequence[int]],
    fuse: bool = True,
) -> ExtractedProgram:
    """Compile ``fn(*static_args, *tensors)`` fully ahead of time.

    ``static_args`` (the model, configuration) are compile-time constants;
    ``input_shapes`` describe the runtime tensor parameters that follow
    them.  Returns an :class:`ExtractedProgram` whose per-call cost is one
    fused executable launch — no tracing, no dispatch, ever.
    """
    sil_func = getattr(fn, "__sil_function__", None) or lower_function(fn)
    builder = HloBuilder("extracted")
    extractor = _Extractor(builder)
    abstract_inputs = [
        AbstractTensor(builder.parameter(Shape(tuple(s)))) for s in input_shapes
    ]
    result = extractor.evaluate(sil_func, [*static_args, *abstract_inputs])
    if not isinstance(result, AbstractTensor):
        raise GraphExtractionError(
            f"program result is static ({type(result).__name__}); nothing to compile"
        )
    module = builder.build(result.inst, module_name="extracted")
    executable = compile_module(module, use_cache=False, fuse=fuse)
    return ExtractedProgram(executable, [tuple(s) for s in input_shapes])


def check_shapes(fn, *static_args, input_shapes: Sequence[Sequence[int]]):
    """Static shape tracking (the Section 4 "Tensors Fitting Perfectly"
    analysis): verify a tensor program's shapes *before execution*.

    Abstractly interprets the program with shape-only tensor values.
    Returns the output shape on success; raises
    :class:`~repro.errors.ShapeError` at the offending operation (with
    HLO-level shape detail) or :class:`GraphExtractionError` if the
    program's control flow depends on runtime tensor values.
    """
    sil_func = getattr(fn, "__sil_function__", None) or lower_function(fn)
    builder = HloBuilder("shape_check")
    extractor = _Extractor(builder)
    abstract_inputs = [
        AbstractTensor(builder.parameter(Shape(tuple(s)))) for s in input_shapes
    ]
    result = extractor.evaluate(sil_func, [*static_args, *abstract_inputs])
    if isinstance(result, AbstractTensor):
        return result.shape
    if isinstance(result, tuple):
        return tuple(
            r.shape if isinstance(r, AbstractTensor) else type(r).__name__
            for r in result
        )
    return type(result).__name__
