"""Step-program capture: extract a training step as a portable HLO program.

The baseline frameworks in the paper's comparisons (TensorFlow graphs,
PyTorch eager, JAX jit, TFLite) each execute a fixed computation per
training step; what differs is *how* their runtimes schedule it.  We
extract that fixed computation once — by tracing one real training step on
a lazy device — and hand the resulting program to engines that replay it
under different runtime disciplines and cost profiles.  All engines
therefore compute the exact same numerics on the shared kernel library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.hlo.parser import parse_module
from repro.runtime.costmodel import S4TF_LAZY, DeviceProfile
from repro.tensor.device import Device


@dataclass
class StepProgram:
    """A captured training-step program: canonical text + example inputs."""

    module_text: str
    example_args: list[np.ndarray]

    @property
    def op_count(self) -> int:
        module = self.to_module()
        return sum(
            1
            for inst in module.entry.post_order()
            if inst.opcode not in ("parameter", "constant", "tuple")
        )

    def to_module(self):
        """A fresh, independently-optimizable HloModule."""
        return parse_module(self.module_text)


def capture_step_program(
    run_one_step: Callable[[Device], None],
    profile: Optional[DeviceProfile] = None,
) -> StepProgram:
    """Trace ``run_one_step`` once on a lazy device and extract its program.

    ``run_one_step(device)`` must build its tensors on the given device and
    end with a single materialization point (the training library's
    automatic barrier provides exactly that).
    """
    device = Device("lazy", profile, S4TF_LAZY)
    device.runtime.capture_traces = True
    run_one_step(device)
    traces = device.runtime.captured_traces
    if not traces:
        raise RuntimeError("the step function never materialized a trace")
    # The step's barrier fragment is the largest captured trace.
    text, args = max(traces, key=lambda t: len(t[0]))
    return StepProgram(text, args)
