"""Baseline framework engines for the paper's comparisons (Tables 2-4)."""

from repro.frameworks.capture import StepProgram, capture_step_program
from repro.frameworks.graph_extraction import (
    ExtractedProgram,
    GraphExtractionError,
    check_shapes,
    extract_program,
)
from repro.frameworks.engines import (
    FusedJitEngine,
    GraphInterpreterEngine,
    OpByOpEngine,
    StepTiming,
)
from repro.frameworks.mobile import (
    ALL_PLATFORMS,
    S4TF_MOBILE_PLATFORM,
    TF_MOBILE_PLATFORM,
    TFLITE_FUSED_PLATFORM,
    TFLITE_STANDARD_PLATFORM,
    MobilePlatform,
    MobileRunResult,
    run_mobile_fine_tuning,
)

__all__ = [
    "ExtractedProgram",
    "GraphExtractionError",
    "check_shapes",
    "extract_program",
    "StepProgram",
    "capture_step_program",
    "FusedJitEngine",
    "GraphInterpreterEngine",
    "OpByOpEngine",
    "StepTiming",
    "ALL_PLATFORMS",
    "S4TF_MOBILE_PLATFORM",
    "TF_MOBILE_PLATFORM",
    "TFLITE_FUSED_PLATFORM",
    "TFLITE_STANDARD_PLATFORM",
    "MobilePlatform",
    "MobileRunResult",
    "run_mobile_fine_tuning",
]
