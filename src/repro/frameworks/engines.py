"""Baseline execution engines replaying a captured step program.

Each engine models one runtime discipline from the paper's comparisons:

* :class:`OpByOpEngine` — define-by-run eager execution: the host pays a
  per-op dispatch cost before each kernel launch and runs ahead of the
  device (PyTorch-style with a fast core, TF-Eager-style with a heavier
  one, mobile interpreters with very heavy ones).
* :class:`FusedJitEngine` — whole-program compilation: pay JIT once (per
  program/shape), then run the fused executable with only a small fixed
  per-step entry cost (XLA-backed TF graphs, JAX ``jit``, TFLite's fused
  custom op).
* :class:`GraphInterpreterEngine` — a pre-built graph walked node-by-node
  (classic TF graph executor / TF-Mobile, TFLite's standard-op path): no
  per-step tracing, but per-node execution overhead and no fusion.

Numerics are identical across engines (same kernels, same program).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hlo.compiler import Executable
from repro.hlo.passes import optimize
from repro.runtime.costmodel import DeviceProfile, EngineProfile
from repro.runtime.device import SimDevice
from repro.frameworks.capture import StepProgram


@dataclass
class StepTiming:
    host_time: float
    device_time: float
    elapsed: float


class _EngineBase:
    def __init__(
        self,
        program: StepProgram,
        engine: EngineProfile,
        device_profile: DeviceProfile,
        efficiency: float = 1.0,
    ) -> None:
        self.program = program
        self.engine = engine
        self.device = SimDevice(device_profile)
        #: Runtime maturity factor (the paper's Table 2 caveat: "some
        #: codebases have been better optimized for benchmark purposes").
        self.efficiency = efficiency
        self.host_time = 0.0
        self.steps_run = 0

    def reset(self) -> None:
        self.host_time = 0.0
        self.steps_run = 0
        self.device.reset()

    def _advance_device(self, executable: Executable, start: float) -> float:
        """Execute on the simulated device; returns device completion."""
        before = self.device.busy_until
        executable.run(self.program.example_args, self.device, start)
        span = self.device.busy_until - max(before, start)
        # Efficiency scales device-side time (runtime maturity).
        self.device.busy_until = max(before, start) + span / self.efficiency
        return self.device.busy_until

    def step(self) -> StepTiming:
        raise NotImplementedError

    def steady_state_step_time(self, warmup: int = 1, measure: int = 3) -> float:
        """Simulated seconds per step after warm-up."""
        self.reset()
        for _ in range(warmup):
            self.step()
        start = max(self.host_time, self.device.busy_until)
        for _ in range(measure):
            self.step()
        end = max(self.host_time, self.device.busy_until)
        return (end - start) / measure


class OpByOpEngine(_EngineBase):
    """Eager define-by-run: per-op host dispatch, unfused kernels."""

    def __init__(self, program, engine, device_profile, efficiency=1.0):
        super().__init__(program, engine, device_profile, efficiency)
        module = program.to_module()
        optimize(module, fuse=False)
        self.executable = Executable(module)

    def step(self) -> StepTiming:
        start_host = self.host_time
        # The host dispatches each op, paying the framework's per-op cost;
        # kernels queue asynchronously behind the dispatch front.
        self.host_time += self.engine.per_step_overhead
        self.host_time += self.engine.per_op_overhead * self.executable.kernel_count
        device_done = self._advance_device(self.executable, start_host)
        self.steps_run += 1
        elapsed = max(self.host_time, device_done)
        return StepTiming(self.host_time - start_host, device_done, elapsed)


class GraphInterpreterEngine(_EngineBase):
    """Pre-built graph walked node-by-node (no tracing, no fusion)."""

    def __init__(self, program, engine, device_profile, efficiency=1.0):
        super().__init__(program, engine, device_profile, efficiency)
        module = program.to_module()
        optimize(module, fuse=False)
        self.executable = Executable(module)

    def step(self) -> StepTiming:
        start_host = self.host_time
        self.host_time += self.engine.per_step_overhead
        self.host_time += self.engine.per_op_overhead * self.executable.kernel_count
        device_done = self._advance_device(self.executable, start_host)
        self.steps_run += 1
        elapsed = max(self.host_time, device_done)
        return StepTiming(self.host_time - start_host, device_done, elapsed)


class LazyTraceEngine(_EngineBase):
    """S4TF LazyTensor discipline in engine form (for symmetric tables).

    Every step re-traces the program (paying per-op tracing cost — the
    Section 3.4 overhead), hits the compile cache after the first step, and
    executes the fused program.
    """

    def __init__(self, program, engine, device_profile, efficiency=1.0):
        super().__init__(program, engine, device_profile, efficiency)
        module = program.to_module()
        self.traced_op_count = program.op_count
        optimize(module, fuse=True)
        self.executable = Executable(module)
        self.compiled = False

    def step(self) -> StepTiming:
        start_host = self.host_time
        # Re-tracing happens every iteration.
        self.host_time += self.engine.trace_op_overhead * self.traced_op_count
        if not self.compiled:
            self.host_time += (
                self.engine.compile_cost_base
                + self.engine.compile_cost_per_op * len(self.executable.order)
            )
            self.compiled = True
        device_done = self._advance_device(self.executable, self.host_time)
        self.steps_run += 1
        elapsed = max(self.host_time, device_done)
        return StepTiming(self.host_time - start_host, device_done, elapsed)


class FusedJitEngine(_EngineBase):
    """Compile once (fused), then run with near-zero per-op host cost."""

    def __init__(self, program, engine, device_profile, efficiency=1.0):
        super().__init__(program, engine, device_profile, efficiency)
        module = program.to_module()
        optimize(module, fuse=True)
        self.executable = Executable(module)
        self.compiled = False

    def step(self) -> StepTiming:
        start_host = self.host_time
        if not self.compiled:
            self.host_time += (
                self.engine.compile_cost_base
                + self.engine.compile_cost_per_op * len(self.executable.order)
            )
            self.compiled = True
        self.host_time += self.engine.per_step_overhead
        device_done = self._advance_device(self.executable, self.host_time)
        self.steps_run += 1
        elapsed = max(self.host_time, device_done)
        return StepTiming(self.host_time - start_host, device_done, elapsed)
