"""Shared benchmark plumbing: results are rendered to benchmarks/results/."""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it for the log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
