"""Figure 9 / Appendix B — subscript pullback: O(n) functional vs O(1)
mutable value semantics.  Real wall-clock measurements via pytest-benchmark
at a fixed n, plus a sweep establishing the asymptotic shape.
"""

import pytest
from conftest import save_result

from repro.core.pullback_styles import (
    my_op_with_functional_pullback,
    my_op_with_mutable_pullback,
)
from repro.experiments import render_figure9, run_figure9

N = 16384


@pytest.fixture(scope="module")
def values():
    return [float(i) for i in range(N)]


def test_functional_pullback_o_n(benchmark, values):
    _, pb = my_op_with_functional_pullback(values, 1, N - 2)
    benchmark(pb, 1.0)


def test_mutable_pullback_o_1(benchmark, values):
    _, pb = my_op_with_mutable_pullback(values, 1, N - 2)
    adjoint = [0.0] * N
    benchmark(pb, 1.0, adjoint)


def test_figure9_sweep(benchmark):
    points = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    save_result("figure9_subscript_pullback", render_figure9(points))

    f = [p.functional_seconds for p in points]
    m = [p.mutable_seconds for p in points]
    assert f[-1] > 10 * f[0]     # functional grows with n
    assert m[-1] < 5 * m[0]      # mutable flat
    assert f[-1] / m[-1] > 50    # decisive at large n
