"""Ablations of the AD and value-semantics design choices.

* **gradient overhead** — the "efficient gradient" goal (Section 4.3):
  computing value+gradient should cost a small constant factor over the
  forward computation alone;
* **AOT vs per-call transformation** — what the ahead-of-time design
  saves: re-running lowering + synthesis on every gradient call;
* **COW value copies** — Section 4's "large values are copied lazily":
  copying a ValueArray is O(1); the deep copy happens only on shared
  mutation, and unshared mutation never copies.
"""

import math

from conftest import save_result

from repro.core import value_and_gradient
from repro.core.api import DifferentiableFunction
from repro.valsem import ValueArray, copy_counting


def heavy(x):
    total = 0.0
    for i in range(30):
        total += math.tanh(x * float(i) * 0.1) + math.sin(total * 0.05)
    return total


def test_gradient_overhead_constant_factor(benchmark):
    """value_and_gradient vs plain forward execution (real wall clock)."""
    import time

    value_and_gradient(heavy, 0.7)  # warm the AOT caches

    start = time.perf_counter()
    for _ in range(50):
        heavy(0.7)
    forward = (time.perf_counter() - start) / 50

    def grad_call():
        return value_and_gradient(heavy, 0.7)

    result = benchmark(grad_call)
    grad_time = benchmark.stats.stats.mean
    factor = grad_time / forward
    save_result(
        "ablation_ad_overhead",
        "Ablation: cost of the gradient vs the plain function\n"
        f"  forward only:        {forward*1e6:9.2f} us\n"
        f"  value_and_gradient:  {grad_time*1e6:9.2f} us\n"
        f"  overhead factor:     {factor:.1f}x\n"
        "  (the augmented forward runs on the SIL interpreter, so the\n"
        "   factor includes interpretation, not just derivative work)",
    )
    assert result is not None


def test_aot_saves_retransformation(benchmark):
    """Per-call re-transformation (what tracing AD effectively does) vs the
    AOT design's cached plans."""
    import time
    import types

    def fresh_function():
        # A new function object each call defeats every cache — the
        # "transform every call" strawman.
        clone = types.FunctionType(
            heavy.__code__, heavy.__globals__, "heavy_clone", None, None
        )
        return clone

    def transform_every_call():
        fn = fresh_function()
        df = DifferentiableFunction(fn)
        return df.vjp(0.7)[0]

    # AOT path: everything cached after the first call.
    df = DifferentiableFunction(heavy)

    def aot_call():
        return df.vjp(0.7)[0]

    aot_call()
    start = time.perf_counter()
    for _ in range(20):
        aot_call()
    aot = (time.perf_counter() - start) / 20

    benchmark.pedantic(transform_every_call, rounds=3, iterations=2)
    per_call = benchmark.stats.stats.mean

    save_result(
        "ablation_aot",
        "Ablation: ahead-of-time transformation vs per-call transformation\n"
        f"  AOT (cached plans):      {aot*1e6:9.1f} us/gradient\n"
        f"  re-transform each call:  {per_call*1e6:9.1f} us/gradient\n"
        f"  AOT saves {per_call / aot:.1f}x",
    )
    assert per_call > 2 * aot


def test_cow_copy_is_o1(benchmark):
    """Value copies of a large array are O(1); deep copies happen only on
    shared mutation."""
    big = ValueArray(range(1_000_000))

    def value_copy():
        return big.copy()

    benchmark(value_copy)
    copy_time = benchmark.stats.stats.mean

    import time

    with copy_counting() as stats:
        copies = [big.copy() for _ in range(100)]
        assert stats.deep_copies == 0  # 100 copies, zero storage duplications

        start = time.perf_counter()
        copies[0][0] = 42  # first shared mutation pays the deep copy
        deep_time = time.perf_counter() - start
        assert stats.deep_copies == 1

        start = time.perf_counter()
        copies[0][1] = 43  # now unshared: in-place
        inplace_time = time.perf_counter() - start
        assert stats.deep_copies == 1

    save_result(
        "ablation_cow",
        "Ablation: copy-on-write value semantics (1M-element array)\n"
        f"  value copy (O(1)):         {copy_time*1e6:9.2f} us\n"
        f"  first shared mutation:     {deep_time*1e6:9.2f} us (deep copy)\n"
        f"  subsequent mutation:       {inplace_time*1e6:9.2f} us (in place)\n"
        f"  copy is {deep_time / max(copy_time, 1e-9):.0f}x cheaper than the "
        "deferred deep copy",
    )
    assert copy_time < deep_time / 50
