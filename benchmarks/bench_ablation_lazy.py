"""Ablations of the LazyTensor design choices (Sections 3.3-3.4).

Each ablation removes one ingredient of the lazy pipeline and measures the
consequence on the simulated clock:

* **fusion off** — compile the same trace without elementwise fusion:
  more kernels, more memory traffic, slower device time;
* **trace cache off** — recompile every step: the Section 3.4 cache is
  what amortizes JIT cost across iterations;
* **auto-barrier sweep** — the automatic trace-cutting extension: small
  thresholds fragment the trace (less fusion, more dispatches), huge
  thresholds delay execution; the default (explicit barriers from the
  training library) sits at the optimum for a training loop.
"""

import numpy as np
import pytest
from conftest import save_result

from repro.frameworks import capture_step_program
from repro.frameworks.engines import FusedJitEngine, LazyTraceEngine
from repro.hlo import clear_cache
from repro.hlo.compiler import Executable, optimize
from repro.nn import MLP, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.costmodel import GTX_1080, S4TF_LAZY
from repro.runtime.device import SimDevice
from repro.tensor import Device, Tensor, lazy_device, one_hot
from repro.training import train_step


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


def _one_step(device: Device) -> None:
    model = MLP.create(64, [64, 64], 10, device=device, seed=0)
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((32, 64)).astype(np.float32), device)
    y = one_hot(Tensor(rng.integers(0, 10, 32).astype(np.float32), device), 10)
    train_step(model, SGD(0.05), _loss, x, y, device)


@pytest.fixture(scope="module")
def program():
    return capture_step_program(_one_step, GTX_1080)


def test_ablation_fusion(benchmark, program):
    """Fusion on vs off: same numerics, fewer kernels, less device time."""

    def run(fuse: bool) -> tuple[int, float]:
        module = program.to_module()
        optimize(module, fuse=fuse)
        exe = Executable(module)
        device = SimDevice(GTX_1080)
        exe.run(program.example_args, device=device)
        return exe.kernel_count, device.busy_until

    (k_fused, t_fused) = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    k_unfused, t_unfused = run(False)

    save_result(
        "ablation_fusion",
        "Ablation: elementwise fusion (one training-step program)\n"
        f"  fused:   {k_fused:4d} kernels, device time {t_fused*1e6:9.1f} us\n"
        f"  unfused: {k_unfused:4d} kernels, device time {t_unfused*1e6:9.1f} us\n"
        f"  kernel reduction: {k_unfused / k_fused:.2f}x, "
        f"speedup: {t_unfused / t_fused:.2f}x",
    )
    assert k_fused < k_unfused
    assert t_fused < t_unfused


def test_ablation_trace_cache(benchmark, program):
    """With the XLA-program cache disabled, every step pays compilation."""

    class NoCacheEngine(LazyTraceEngine):
        def step(self):
            self.compiled = False  # forget the executable every step
            return super().step()

    def steady(engine_cls) -> float:
        engine = engine_cls(program, S4TF_LAZY, GTX_1080)
        return engine.steady_state_step_time(warmup=1, measure=3)

    cached = benchmark.pedantic(
        steady, args=(LazyTraceEngine,), rounds=1, iterations=1
    )
    uncached = steady(NoCacheEngine)
    save_result(
        "ablation_trace_cache",
        "Ablation: trace-hash compile cache (per-step time)\n"
        f"  cache on:  {cached*1e3:8.3f} ms/step\n"
        f"  cache off: {uncached*1e3:8.3f} ms/step\n"
        f"  the cache buys {uncached / cached:.1f}x",
    )
    assert uncached > 3 * cached


def test_ablation_auto_barrier_threshold(benchmark):
    """Sweep the automatic trace-cut threshold on a long op chain."""

    def run(threshold):
        clear_cache()
        device = lazy_device(auto_barrier_threshold=threshold)
        x = Tensor(np.ones(1024, np.float32), device)
        y = x
        for _ in range(128):
            y = (y * 1.01).tanh()
        y.numpy()
        device.sync()
        return device.elapsed, device.sim.stats.kernels_launched

    rows = ["Ablation: automatic trace cutting (128-op chain)"]
    results = {}
    for threshold in (4, 16, 64, None):
        elapsed, kernels = benchmark.pedantic(
            run, args=(threshold,), rounds=1, iterations=1
        ) if threshold == 4 else run(threshold)
        label = str(threshold) if threshold else "off (single fragment)"
        rows.append(
            f"  threshold {label:>22}: {elapsed*1e3:8.3f} ms simulated, "
            f"{kernels:3d} kernels"
        )
        results[threshold] = (elapsed, kernels)
    save_result("ablation_auto_barrier", "\n".join(rows))

    # Finer fragmentation -> more kernels (less fusion across cuts).
    assert results[4][1] > results[64][1] >= results[None][1]
