"""Table 4 — on-device spline fine-tuning across four deployment stacks.

Paper (Pixel 3): TF-Mobile 5926ms/80MB/6.2MB, TFLite-std 266ms/12.3MB/1.8MB,
TFLite-fused 63ms/6.2MB/1.8MB, S4TF 128ms/4.2MB/3.6MB.
"""

from conftest import save_result

from repro.experiments import run_table4


def test_table4_mobile_spline(benchmark):
    table = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    save_result("table4_mobile_spline", table.render())

    times = {k: v.training_time_s for k, v in table.results.items()}
    memories = {k: v.memory_bytes for k, v in table.results.items()}

    assert times["TensorFlow Mobile"] > 10 * times["TensorFlow Lite (standard operations)"]
    assert (
        times["TensorFlow Lite (standard operations)"]
        > times["Swift for TensorFlow"]
        > times["TensorFlow Lite (manually fused custom operation)"]
    )
    assert memories["Swift for TensorFlow"] == min(memories.values())
