"""Figure 4 — the LazyTensor trace of LeNet-5's forward pass.

Benchmarks the *tracing* cost itself (recording the forward-pass DAG,
which recurs every iteration per Section 3.4) and saves the rendered DAG.
"""

import numpy as np
from conftest import save_result

from repro.experiments import run_figure4
from repro.nn import LeNet
from repro.runtime.costmodel import S4TF_LAZY, TPU_V3_CORE
from repro.tensor import Device, Tensor


def test_figure4_lenet_trace(benchmark):
    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = LeNet.create(device, seed=0)
    x = Tensor(np.zeros((1, 28, 28, 1), np.float32), device)

    def record_forward_trace():
        return model(x)  # records the DAG; never materializes

    benchmark(record_forward_trace)

    figure = run_figure4()
    save_result(
        "figure4_lenet_trace",
        figure.text + "\n\nsummary: " + repr(figure.summary) + "\n\n" + figure.dot,
    )
    assert figure.summary["op:conv2d"] == 2
    assert figure.summary["op:matmul"] == 3
