"""Section 3.1's claim: the naive Tensor "has advantages when working with
small Tensors, including portability, low computation and memory overheads".

Measured in real wall clock: for tiny tensors, the pure-Python naive
backend beats the NumPy-backed eager backend (whose per-op dispatch and
array-creation overheads dominate at that size), while large tensors
invert the comparison decisively.
"""

import numpy as np
import pytest
from conftest import save_result

from repro.tensor import Tensor, eager_device, naive_device


def _chain(x):
    return ((x * 2.0 + 1.0) * x - 0.5) + x


def _run_chain(device, data, repeats=1):
    t = Tensor(data, device)
    for _ in range(repeats):
        out = _chain(t)
    return out


@pytest.mark.parametrize("backend", ["naive", "eager"])
def test_small_tensor_chain(benchmark, backend):
    device = naive_device() if backend == "naive" else eager_device()
    data = [1.0, 2.0, 3.0, 4.0]
    benchmark(lambda: _run_chain(device, data))


def test_small_vs_large_crossover(benchmark):
    import time

    def mean_time(device_factory, n, repeats=200):
        device = device_factory()
        data = [float(i % 7) for i in range(n)]
        t = Tensor(data, device)
        start = time.perf_counter()
        for _ in range(repeats):
            _chain(t)
        return (time.perf_counter() - start) / repeats

    rows = [
        "Small-tensor overhead: naive (pure Python) vs eager (NumPy+dispatch)",
        f"{'n':>8} | {'naive':>12} | {'eager':>12} | winner",
        "-" * 55,
    ]
    crossover_seen = {"small_naive_wins": False, "large_eager_wins": False}
    for n in (4, 16, 64, 1024, 16384):
        t_naive = mean_time(naive_device, n)
        t_eager = mean_time(eager_device, n)
        winner = "naive" if t_naive < t_eager else "eager"
        rows.append(
            f"{n:>8} | {t_naive:12.3e} | {t_eager:12.3e} | {winner}"
        )
        if n <= 16 and t_naive < t_eager:
            crossover_seen["small_naive_wins"] = True
        if n >= 16384 and t_eager < t_naive:
            crossover_seen["large_eager_wins"] = True
    save_result("naive_small_tensors", "\n".join(rows))

    benchmark.pedantic(lambda: mean_time(naive_device, 4, repeats=20), rounds=1)
    # The paper's claim: small tensors favour the naive implementation;
    # the accelerated path wins at scale.
    assert crossover_seen["small_naive_wins"]
    assert crossover_seen["large_eager_wins"]
