"""Concurrent execution engine benchmark: parallel replicas + async JIT.

Two comparisons, both written to ``BENCH_parallel.json``:

* **Simulated engine clock** (deterministic): cold-start training with the
  synchronous JIT (every new trace stalls the host on compilation) vs the
  asynchronous compile cache (misses fall back to op-by-op execution while
  the compile runs in the background).  Asserts the async engine is at
  least 1.5x faster over the cold-start window on 4 replicas.

* **Host wall-clock** (hardware-dependent): the same lockstep steps run
  through the serial executor vs the thread-pool executor.  NumPy releases
  the GIL, so replicas overlap on multi-core hosts; the speedup assert is
  gated on ``os.cpu_count() >= 4`` because a single-core host cannot
  overlap anything.

Run directly: ``python benchmarks/bench_parallel_replicas.py --quick``
or via pytest: ``pytest benchmarks/bench_parallel_replicas.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np


def _workload(quick: bool):
    from repro.nn import MLP, softmax_cross_entropy

    hidden = [32] if quick else [64, 64]

    def build(device):
        return MLP.create(16, hidden, 8, device=device, seed=0)

    def loss_fn(model, x, y):
        return softmax_cross_entropy(model(x), y)

    rng = np.random.default_rng(7)
    x = rng.standard_normal((16, 16)).astype(np.float32)
    y = np.eye(8, dtype=np.float32)[rng.integers(0, 8, 16)]
    return build, loss_fn, x, y


def _run_steps(trainer, loss_fn, x, y, steps: int):
    """Run ``steps`` lockstep steps; return (total simulated step time,
    per-replica compute-time totals, per-step host wall times)."""
    shards = trainer.replicate_batch(x, y)
    total = 0.0
    replica_totals: list[float] = []
    step_walls: list[float] = []
    for _ in range(steps):
        t0 = time.perf_counter()
        stats = trainer.step(loss_fn, shards)
        step_walls.append(time.perf_counter() - t0)
        total += stats.step_time
        if not replica_totals:
            replica_totals = [0.0] * len(stats.replica_compute_times)
        for i, t in enumerate(stats.replica_compute_times):
            replica_totals[i] += t
    return total, replica_totals, step_walls


def run_bench(quick: bool = True, n_replicas: int = 4, steps: int = 6) -> dict:
    from repro.hlo import compiler as hlo_compiler
    from repro.optim import SGD
    from repro.runtime.parallel import ParallelDataParallelTrainer

    build, loss_fn, x, y = _workload(quick)

    def make_trainer(async_compile, serial=False):
        return ParallelDataParallelTrainer(
            build,
            lambda: SGD(learning_rate=0.05),
            n_replicas,
            async_compile=async_compile,
            serial=serial,
        )

    # -- simulated clock: sync JIT stall vs async compile + fallback --------
    hlo_compiler.clear_cache()
    sync_trainer = make_trainer(async_compile=False)
    sim_sync, _, _ = _run_steps(sync_trainer, loss_fn, x, y, steps)

    async_trainer = make_trainer(async_compile=True)
    sim_async, _, _ = _run_steps(async_trainer, loss_fn, x, y, steps)
    async_trainer.wait_for_compiles()
    async_stats = async_trainer.async_stats()
    sim_speedup = sim_sync / sim_async

    # -- host wall-clock: serial executor vs thread pool --------------------
    wall_steps = steps if quick else steps * 4
    serial_trainer = make_trainer(async_compile=False, serial=True)
    _run_steps(serial_trainer, loss_fn, x, y, 2)  # warm the JIT cache
    t0 = time.perf_counter()
    _, _, serial_step_walls = _run_steps(serial_trainer, loss_fn, x, y, wall_steps)
    wall_serial = time.perf_counter() - t0

    parallel_trainer = make_trainer(async_compile=False, serial=False)
    _run_steps(parallel_trainer, loss_fn, x, y, 2)
    t0 = time.perf_counter()
    _, replica_compute_totals, parallel_step_walls = _run_steps(
        parallel_trainer, loss_fn, x, y, wall_steps
    )
    wall_parallel = time.perf_counter() - t0
    parallel_trainer.shutdown()

    cpu_count = os.cpu_count() or 1
    wall_speedup = wall_serial / wall_parallel if wall_parallel > 0 else 0.0
    multicore = cpu_count >= 4
    skip_reason = (
        None
        if multicore
        else (
            f"cpu_count={cpu_count} < 4: replicas cannot overlap on this "
            "host, so the wall-clock speedup assertion is skipped"
        )
    )

    result = {
        "n_replicas": n_replicas,
        "steps": steps,
        "quick": quick,
        "simulated_clock": {
            "sync_compile_total_s": sim_sync,
            "async_compile_total_s": sim_async,
            "speedup": sim_speedup,
            "async_stats": async_stats,
        },
        "wall_clock": {
            "serial_s": wall_serial,
            "parallel_s": wall_parallel,
            "speedup": wall_speedup,
            "cpu_count": cpu_count,
            "speedup_asserted": multicore,
            "skip_reason": skip_reason,
            "serial_step_wall_s": serial_step_walls,
            "parallel_step_wall_s": parallel_step_walls,
            "per_replica_compute_s": replica_compute_totals,
        },
    }

    assert sim_speedup >= 1.5, (
        f"async compile engine only {sim_speedup:.2f}x faster than the "
        f"blocking JIT over the cold-start window (need >= 1.5x)"
    )
    if multicore:
        assert wall_speedup >= 1.5, (
            f"thread-pool executor only {wall_speedup:.2f}x faster than "
            f"serial on a {cpu_count}-core host (need >= 1.5x)"
        )
    return result


def test_parallel_replicas_quick():
    result = run_bench(quick=True)
    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    assert result["simulated_clock"]["speedup"] >= 1.5


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_parallel.json"),
    )
    args = parser.parse_args()
    result = run_bench(quick=args.quick)
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
