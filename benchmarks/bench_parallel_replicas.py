"""Concurrent execution engine benchmark: parallel replicas + async JIT.

Two comparisons, both written to ``BENCH_parallel.json``:

* **Simulated engine clock** (deterministic): cold-start training with the
  synchronous JIT (every new trace stalls the host on compilation) vs the
  asynchronous compile cache (misses fall back to op-by-op execution while
  the compile runs in the background).  Asserts the async engine is at
  least 1.5x faster over the cold-start window on 4 replicas.

* **Host wall-clock backend sweep** (hardware-dependent): the same
  lockstep steps run through every executor backend — ``serial``,
  ``thread`` (GIL-released NumPy overlap), ``process`` (forked workers
  exchanging gradients over shared memory).  Each entry records its
  ``executor_backend``, wall times, and a ``speedup_asserted`` gate keyed
  on ``os.cpu_count() >= n_replicas``: a host that cannot overlap the
  replicas keeps an honest ``skip_reason`` instead of a vacuous assert.

Run directly: ``python benchmarks/bench_parallel_replicas.py --quick``
or via pytest: ``pytest benchmarks/bench_parallel_replicas.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.nn import softmax_cross_entropy

#: Backends swept by the wall-clock comparison, serial oracle first.
WALL_BACKENDS = ("serial", "thread", "process")


def bench_loss(model, x, y):
    """Module-level so the process backend can ship it by reference."""
    return softmax_cross_entropy(model(x), y)


def _workload(quick: bool):
    from repro.nn import MLP

    hidden = [32] if quick else [64, 64]

    def build(device):
        return MLP.create(16, hidden, 8, device=device, seed=0)

    rng = np.random.default_rng(7)
    x = rng.standard_normal((16, 16)).astype(np.float32)
    y = np.eye(8, dtype=np.float32)[rng.integers(0, 8, 16)]
    return build, bench_loss, x, y


def _run_steps(trainer, loss_fn, x, y, steps: int):
    """Run ``steps`` lockstep steps; return (total simulated step time,
    per-replica compute-time totals, per-step host wall times)."""
    shards = trainer.replicate_batch(x, y)
    total = 0.0
    replica_totals: list[float] = []
    step_walls: list[float] = []
    for _ in range(steps):
        t0 = time.perf_counter()
        stats = trainer.step(loss_fn, shards)
        step_walls.append(time.perf_counter() - t0)
        total += stats.step_time
        if not replica_totals:
            replica_totals = [0.0] * len(stats.replica_compute_times)
        for i, t in enumerate(stats.replica_compute_times):
            replica_totals[i] += t
    return total, replica_totals, step_walls


def run_bench(quick: bool = True, n_replicas: int = 4, steps: int = 6) -> dict:
    from repro.hlo import compiler as hlo_compiler
    from repro.optim import SGD
    from repro.runtime.parallel import ParallelDataParallelTrainer

    build, loss_fn, x, y = _workload(quick)

    def make_trainer(async_compile=False, backend="thread"):
        return ParallelDataParallelTrainer(
            build,
            lambda: SGD(learning_rate=0.05),
            n_replicas,
            async_compile=async_compile,
            backend=backend,
        )

    # -- simulated clock: sync JIT stall vs async compile + fallback --------
    hlo_compiler.clear_cache()
    sync_trainer = make_trainer(async_compile=False)
    sim_sync, _, _ = _run_steps(sync_trainer, loss_fn, x, y, steps)

    async_trainer = make_trainer(async_compile=True)
    sim_async, _, _ = _run_steps(async_trainer, loss_fn, x, y, steps)
    async_trainer.wait_for_compiles()
    async_stats = async_trainer.async_stats()
    sim_speedup = sim_sync / sim_async

    # -- host wall-clock: backend sweep (serial is the oracle) --------------
    wall_steps = steps if quick else steps * 4
    cpu_count = os.cpu_count() or 1
    multicore = cpu_count >= n_replicas
    skip_reason = (
        None
        if multicore
        else (
            f"cpu_count={cpu_count} < n_replicas={n_replicas}: replicas "
            "cannot overlap on this host, so the wall-clock speedup "
            "assertion is skipped"
        )
    )

    backends = {}
    serial_wall = None
    for backend in WALL_BACKENDS:
        trainer = make_trainer(async_compile=False, backend=backend)
        _run_steps(trainer, loss_fn, x, y, 2)  # warm JIT / worker caches
        t0 = time.perf_counter()
        _, replica_compute_totals, step_walls = _run_steps(
            trainer, loss_fn, x, y, wall_steps
        )
        wall = time.perf_counter() - t0
        trainer.shutdown()
        if backend == "serial":
            serial_wall = wall
        speedup = serial_wall / wall if wall > 0 else 0.0
        backends[backend] = {
            "executor_backend": backend,
            "wall_s": wall,
            "speedup_vs_serial": speedup,
            "step_wall_s": step_walls,
            "per_replica_compute_s": replica_compute_totals,
            "speedup_asserted": multicore and backend != "serial",
            "skip_reason": None if backend == "serial" else skip_reason,
        }

    result = {
        "n_replicas": n_replicas,
        "steps": steps,
        "quick": quick,
        "simulated_clock": {
            "sync_compile_total_s": sim_sync,
            "async_compile_total_s": sim_async,
            "speedup": sim_speedup,
            "async_stats": async_stats,
        },
        "wall_clock": {
            "cpu_count": cpu_count,
            "speedup_asserted": multicore,
            "skip_reason": skip_reason,
            "backends": backends,
        },
    }

    assert sim_speedup >= 1.5, (
        f"async compile engine only {sim_speedup:.2f}x faster than the "
        f"blocking JIT over the cold-start window (need >= 1.5x)"
    )
    for backend, entry in backends.items():
        if entry["speedup_asserted"]:
            assert entry["speedup_vs_serial"] >= 1.5, (
                f"{backend} executor only {entry['speedup_vs_serial']:.2f}x "
                f"faster than serial on a {cpu_count}-core host (need >= 1.5x)"
            )
    return result


def test_parallel_replicas_quick():
    result = run_bench(quick=True)
    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    assert result["simulated_clock"]["speedup"] >= 1.5
    assert set(result["wall_clock"]["backends"]) == set(WALL_BACKENDS)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small workload")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_parallel.json"),
    )
    args = parser.parse_args()
    result = run_bench(quick=args.quick)
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
