"""Table 2 — framework comparison on a TPUv3-32 pod.

Paper: TF 33118 > JAX 21258 > S4TF 20015 examples/s (all within ~1.7x,
running notionally identical XLA programs).
"""

from conftest import save_result

from repro.experiments import run_table2


def test_table2_tpu_frameworks(benchmark):
    table = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_result("table2_tpu_frameworks", table.render())

    r = table.results
    assert r["TensorFlow"] > r["JAX + Flax"] > r["Swift for TensorFlow"]
    assert max(r.values()) < 2.0 * min(r.values())
    # Paper ratios: TF/S4TF 1.65, JAX/S4TF 1.06.
    assert abs(r["TensorFlow"] / r["Swift for TensorFlow"] - 1.65) < 0.45
    assert abs(r["JAX + Flax"] / r["Swift for TensorFlow"] - 1.06) < 0.30
