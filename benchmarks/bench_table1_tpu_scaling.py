"""Table 1 — ResNet-50-class training on TPUv3 pods (per-core scaling).

Regenerates the paper's pod-scaling table on the simulated cluster and
asserts its shape: per-core throughput degrades only a few percent from 16
to 128 cores.  ``pytest benchmarks/bench_table1_tpu_scaling.py --benchmark-only``
"""

from conftest import save_result

from repro.experiments import run_table1
from repro.experiments.table1 import POD_SIZES


def test_table1_tpu_scaling(benchmark):
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1_tpu_scaling", table.render())

    per_core = [table.results[n]["per_core"] for n in POD_SIZES]
    # Paper shape: 635.25 -> 625.47 -> 607.23 (−4.4% over 8x the cores).
    assert per_core[0] >= per_core[1] >= per_core[2]
    assert per_core[2] > 0.88 * per_core[0]
    # Global throughput scales near-linearly.
    totals = [table.results[n]["throughput"] for n in POD_SIZES]
    assert totals[2] > 7.0 * totals[0]
