"""Table 1 — ResNet-50-class training on TPUv3 pods (per-core scaling).

Regenerates the paper's pod-scaling table on the simulated cluster and
asserts its shape: per-core throughput degrades only a few percent from 16
to 128 cores.  ``pytest benchmarks/bench_table1_tpu_scaling.py --benchmark-only``
"""

from conftest import save_result

from repro.experiments import run_table1
from repro.experiments.table1 import POD_SIZES, run_overlap_ablation


def test_table1_tpu_scaling(benchmark):
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1_tpu_scaling", table.render())

    per_core = [table.results[n]["per_core"] for n in POD_SIZES]
    # Paper shape: 635.25 -> 625.47 -> 607.23 (−4.4% over 8x the cores).
    assert per_core[0] >= per_core[1] >= per_core[2]
    assert per_core[2] > 0.88 * per_core[0]
    # Global throughput scales near-linearly.
    totals = [table.results[n]["throughput"] for n in POD_SIZES]
    assert totals[2] > 7.0 * totals[0]


def test_table1_overlap_ablation(benchmark):
    table = benchmark.pedantic(run_overlap_ablation, rounds=1, iterations=1)
    save_result("table1_overlap_ablation", table.render())

    for n in (16, 32):
        r = table.results[n]
        # Overlap wins where bucket latency does not dominate.
        assert r["per_core_overlapped"] >= r["per_core_single_shot"]
    for n in POD_SIZES:
        r = table.results[n]
        # The pipeline hides most of its own ring time everywhere.
        assert r["hidden_fraction"] > 0.5
        assert r["n_buckets"] > 1
        # Identity: hidden + exposed == total ring time.
        assert abs(
            r["hidden_allreduce"] + r["exposed_allreduce"] - r["allreduce_total"]
        ) < 1e-12
