"""Ablation: graph program extraction (Section 3.5) vs lazy tracing.

The trade-off the paper describes: static extraction has zero per-step
host cost but only handles compile-time-static programs; lazy tracing
pays per-op tracing each step but supports full dynamism.
"""

import numpy as np
import pytest
from conftest import save_result

from repro.frameworks import extract_program
from repro.nn import MLP
from repro.runtime.costmodel import GTX_1080, S4TF_LAZY
from repro.runtime.device import SimDevice
from repro.tensor import Tensor, eager_device, lazy_device


def forward(model, x):
    return model(x).sum()


def test_static_extraction_vs_lazy_tracing(benchmark):
    model = MLP.create(64, [64, 64], 10, device=eager_device(), seed=0)
    program = extract_program(forward, model, input_shapes=[(32, 64)])
    x_np = np.random.default_rng(0).standard_normal((32, 64)).astype(np.float32)

    # Static AOT: simulated per-step time (device only; zero host ops).
    sim = SimDevice(GTX_1080)
    program.run(x_np, device=sim)
    t0 = sim.busy_until
    program.run(x_np, device=sim, host_time=t0)
    static_step = sim.busy_until - t0

    # Lazy tracing: same program, per-step trace + cached compile + fused run.
    lazy = lazy_device(GTX_1080, S4TF_LAZY)
    model_lazy = MLP.create(64, [64, 64], 10, device=lazy, seed=0)
    for _ in range(2):
        float(forward(model_lazy, Tensor(x_np, lazy)))
    lazy.sync()
    start = lazy.elapsed
    steps = 3
    for _ in range(steps):
        float(forward(model_lazy, Tensor(x_np, lazy)))
    lazy.sync()
    lazy_step = (lazy.elapsed - start) / steps

    # Real wall-clock of one extracted run (pytest-benchmark).
    benchmark(program.run, x_np)

    save_result(
        "ablation_graph_extraction",
        "Ablation: graph program extraction (3.5) vs lazy tracing (3.3)\n"
        f"  static AOT per step: {static_step*1e6:9.1f} us simulated "
        "(zero host ops)\n"
        f"  lazy tracing per step: {lazy_step*1e6:9.1f} us simulated "
        "(re-traces every step)\n"
        f"  extraction wins {lazy_step/static_step:.1f}x on this static "
        "program — but rejects any tensor-dependent control flow, which is "
        "why the project moved to lazy tracing.",
    )
    assert static_step < lazy_step
