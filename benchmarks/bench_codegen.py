"""Certified-codegen benchmark: interpreted vs codegen'd vs eager steps.

Host wall-clock of warm training-loop steps on the Table 2/3 evaluation
models, written to ``BENCH_codegen.json``:

* **interpreted** — ``lazy_device()``: trace -> HLO -> the schedule-walking
  ``Executable`` (per-instruction Python dispatch);
* **codegen** — ``lazy_device(codegen=True)``: the same HLO lowered to a
  flat NumPy step function, installed only after the translation validator
  (sweep 10) certifies it equivalent; launch replay keeps the simulated
  clock identical to the interpreter's;
* **eager** — ``eager_device()``: op-by-op dispatch, no tracing.

All three paths bottom out in the same kernels, so the codegen win is
pure dispatch overhead removed from the warm path.  The speedup assert is
gated on host capability like ``bench_parallel_replicas.py``: a loaded or
single-core host times Python dispatch too noisily, so the assert runs
only when ``os.cpu_count() >= 2`` and the interpreted step is slow enough
for the timer to resolve the difference.

Run directly: ``python benchmarks/bench_codegen.py --quick``
or via pytest: ``pytest benchmarks/bench_codegen.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

#: Assert only when the interpreted step is at least this slow: below it,
#: ``perf_counter`` jitter on a shared host swamps the dispatch delta.
MIN_RESOLVABLE_STEP_S = 2e-4


def _workloads(quick: bool):
    """(name, build) pairs; ``build(device)`` returns a zero-arg step fn."""
    from repro.nn import LeNet, resnet_cifar_small, softmax_cross_entropy
    from repro.tensor import LazyTensorBarrier, Tensor

    lenet_batch = 2 if quick else 8
    resnet_batch = 1 if quick else 4

    def build_lenet(device):
        # Table 2's model: LeNet-5 forward + loss on MNIST-shaped input.
        model = LeNet.create(device=device, seed=0)
        rng = np.random.default_rng(3)
        x = Tensor(
            rng.standard_normal((lenet_batch, 28, 28, 1)).astype(np.float32),
            device,
        )
        y = Tensor(
            np.eye(10, dtype=np.float32)[rng.integers(0, 10, lenet_batch)],
            device,
        )

        def step():
            loss = softmax_cross_entropy(model(x), y)  # noqa: F841
            LazyTensorBarrier(device)

        return step

    def build_resnet(device):
        # Table 3's model family: a scaled CIFAR ResNet forward pass.
        model = resnet_cifar_small(device=device, seed=0)
        rng = np.random.default_rng(4)
        x = Tensor(
            rng.standard_normal((resnet_batch, 32, 32, 3)).astype(np.float32),
            device,
        )

        def step():
            logits = model(x)  # noqa: F841
            LazyTensorBarrier(device)

        return step

    return [("lenet_mnist", build_lenet), ("resnet_cifar", build_resnet)]


def _time_steps(step, steps: int, repeats: int) -> float:
    """Best-of-``repeats`` wall time for ``steps`` warm steps (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(steps):
            step()
        best = min(best, time.perf_counter() - t0)
    return best


def run_bench(quick: bool = True, steps: int = 10, repeats: int = 3) -> dict:
    from repro.hlo import codegen as hlo_codegen
    from repro.hlo import compiler as hlo_compiler
    from repro.tensor import eager_device, lazy_device

    hlo_compiler.clear_cache()
    hlo_codegen.clear_source_cache()
    hlo_codegen.STATS.reset()

    capable = (os.cpu_count() or 1) >= 2
    results: dict = {
        "quick": quick,
        "steps": steps,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "workloads": {},
    }

    for name, build in _workloads(quick):
        walls: dict = {}
        for mode, make_device in (
            ("eager", eager_device),
            ("interpreted", lazy_device),
            ("codegen", lambda: lazy_device(codegen=True)),
        ):
            device = make_device()
            step = build(device)
            step()  # warm: trace, JIT, and (codegen mode) certify
            step()
            walls[mode] = _time_steps(step, steps, repeats)

        per_step = {mode: wall / steps for mode, wall in walls.items()}
        resolvable = per_step["interpreted"] >= MIN_RESOLVABLE_STEP_S
        results["workloads"][name] = {
            "wall_s": walls,
            "per_step_s": per_step,
            "speedup_vs_interpreted": per_step["interpreted"]
            / per_step["codegen"],
            "speedup_vs_eager": per_step["eager"] / per_step["codegen"],
            "timer_resolvable": resolvable,
        }

    stats = hlo_codegen.STATS
    results["codegen_stats"] = {
        "emitted": stats.emitted,
        "certified": stats.certified,
        "rejected": stats.rejected,
        "installs": stats.installs,
    }
    # The certified path must actually have run: every workload's module
    # was emitted, validated, and installed — nothing fell back.
    assert stats.certified == stats.emitted >= len(results["workloads"])
    assert stats.rejected == 0

    speedups = {
        name: w["speedup_vs_interpreted"]
        for name, w in results["workloads"].items()
        if w["timer_resolvable"]
    }
    results["gated"] = {
        "host_capable": capable,
        "asserted": bool(capable and speedups),
        "skip_reason": None
        if capable and speedups
        else (
            "single-core host times dispatch too noisily"
            if not capable
            else "interpreted step below timer resolution floor"
        ),
    }
    if results["gated"]["asserted"]:
        best = max(speedups.values())
        results["gated"]["best_speedup"] = best
        # The acceptance bar: codegen beats the interpreter on at least
        # one Table 2/3 workload (warm steps, same kernels, same clock).
        assert best > 1.0, f"codegen never beat the interpreter: {speedups}"
    return results


def test_codegen_quick():
    results = run_bench(quick=True)
    out = Path(__file__).resolve().parent.parent / "BENCH_codegen.json"
    out.write_text(json.dumps(results, indent=2) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_codegen.json",
    )
    args = parser.parse_args()
    results = run_bench(quick=args.quick, steps=args.steps, repeats=args.repeats)
    print(json.dumps(results, indent=2))
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[saved to {args.output}]")


if __name__ == "__main__":
    main()
