"""Table 3 — ResNet-56/CIFAR-10 training throughput on a GTX-1080-class GPU.

Paper: PyTorch 2462 ~ TF 2390 > S4TF-LazyTensor 1827 >> S4TF-Eager 730.
Shape asserted: the ordering, Lazy/Eager ~2.5-3x, TF/Lazy ~1.3-1.7x.

Set REPRO_FULL_TABLE3=1 to run at the paper's full ResNet-56/batch-128
scale (slow in wall-clock).
"""

import os

from conftest import save_result

from repro.experiments import FULL_WORKLOAD, SCALED_WORKLOAD, run_table3


def test_table3_gpu_resnet56(benchmark):
    workload = FULL_WORKLOAD if os.environ.get("REPRO_FULL_TABLE3") else SCALED_WORKLOAD
    table = benchmark.pedantic(run_table3, args=(workload,), rounds=1, iterations=1)
    save_result("table3_gpu_resnet56", table.render())

    r = table.results
    torch = r["PyTorch"]
    tf = r["TensorFlow"]
    eager = r["Swift for TensorFlow (Eager Mode)"]
    lazy = r["Swift for TensorFlow (LazyTensor)"]
    assert torch > tf > lazy > eager
    assert 1.8 < lazy / eager < 5.0   # paper: 2.50
    assert 1.05 < tf / lazy < 2.5     # paper: 1.31
