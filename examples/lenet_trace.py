"""Figure 4: the LazyTensor trace of LeNet-5's forward pass.

Places LeNet on a lazy device, runs the forward pass *without observing
the output*, and prints the recorded trace DAG.  Also writes Graphviz DOT
next to this script (render with: dot -Tpdf lenet_trace.dot -o fig4.pdf).

Run:  python examples/lenet_trace.py
"""

from pathlib import Path

from repro.experiments import run_figure4
from repro.hlo.compiler import STATS


def main() -> None:
    result = run_figure4(batch_size=1)

    print("LeNet-5 forward-pass trace (Figure 4):\n")
    print(result.text)

    print("\ntrace summary:")
    for key, value in result.summary.items():
        print(f"  {key}: {value}")

    # The trace was recorded, not executed: nothing compiled yet.
    print(f"\ncompilations so far: {STATS.compiles} (the trace is still lazy)")

    dot_path = Path(__file__).with_name("lenet_trace.dot")
    dot_path.write_text(result.dot)
    print(f"DOT written to {dot_path}")


if __name__ == "__main__":
    main()
