"""Section 5.1.3: spline personalization — global training + on-device
fine-tuning, compared across four mobile deployment stacks (Table 4).

The same model/optimizer code runs both stages (the paper's maintenance
argument): a global spline is fit on "anonymized, aggregated" data, then
fine-tuned to one user's local data with backtracking line search on the
pure-Python naive tensor backend.

Run:  python examples/spline_personalization.py
"""

from repro.data import personalization_split
from repro.experiments import run_table4
from repro.spline import SplineModel, fine_tune, fit_spline, spline_loss


def main() -> None:
    global_data, user_data = personalization_split(
        n_global=128, n_user=48, seed=7
    )

    print("stage 1: global training (server side)")
    global_model, report = fit_spline(
        SplineModel.create(8), global_data.xs, global_data.ys, max_steps=50
    )
    print(
        f"  loss {report.initial_loss:.4f} -> {report.final_loss:.5f} "
        f"in {report.steps} line-search steps"
    )

    print("\nstage 2: on-device fine-tuning (same code, user's local data)")
    personal, report = fine_tune(global_model, user_data.xs, user_data.ys)
    print(
        f"  loss {report.initial_loss:.4f} -> {report.final_loss:.5f} "
        f"in {report.steps} steps / {report.loss_evaluations} evaluations"
    )
    before = spline_loss(global_model, user_data.xs, user_data.ys)
    after = spline_loss(personal, user_data.xs, user_data.ys)
    print(f"  user-data loss: global model {before:.4f} -> personalized {after:.5f}")

    print("\nstage 3: deployment-stack comparison (Table 4)\n")
    print(run_table4().render())


if __name__ == "__main__":
    main()
