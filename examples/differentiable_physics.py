"""Beyond ML: differentiable physics (Section 5's opening claim).

The paper notes Swift for TensorFlow "has been applied to differentiable
physics simulations".  This example differentiates *through* an explicit
Euler simulation of a projectile with quadratic drag — a loop whose
iteration count depends on the trajectory itself — and tunes the launch
parameters (a differentiable struct) with the platform's own backtracking
line search to hit a target distance.

The AD system handles the simulation's data-dependent `while` loop with
the per-basic-block pullback records of Section 2.2; no tensors involved,
just plain floats and a user-defined Differentiable struct.

Run:  python examples/differentiable_physics.py
"""

import math
from dataclasses import dataclass

from repro.core import differentiable_struct
from repro.optim import BacktrackingLineSearch

GRAVITY = 9.81
DRAG = 0.003
DT = 0.005
LAUNCH_HEIGHT = 1.5
TARGET = 24.0


@differentiable_struct
@dataclass
class Launch:
    """Launch parameters — a user-defined Differentiable value (Figure 1)."""

    angle: float
    speed: float


def landing_distance(launch):
    """Simulate until the projectile lands; return the landing x.

    The final step interpolates the ground crossing, so the landing point
    is a *continuous* (and differentiable) function of the launch
    parameters even though the step count is discrete."""
    vx = launch.speed * math.cos(launch.angle)
    vy = launch.speed * math.sin(launch.angle)
    x = 0.0
    y = LAUNCH_HEIGHT
    prev_x = x
    prev_y = y
    while y > 0.0:
        prev_x = x
        prev_y = y
        v = math.sqrt(vx * vx + vy * vy)
        vx = vx - DT * DRAG * v * vx
        vy = vy - DT * (GRAVITY + DRAG * v * vy)
        x = x + DT * vx
        y = y + DT * vy
    fraction = prev_y / (prev_y - y)
    return prev_x + fraction * (x - prev_x)


def loss(launch):
    miss = landing_distance(launch) - TARGET
    return miss * miss


def main() -> None:
    launch = Launch(angle=0.5, speed=12.0)
    print(f"target: {TARGET} m")
    print(
        f"initial: angle={math.degrees(launch.angle):.1f} deg, "
        f"speed={launch.speed:.1f} m/s -> lands at "
        f"{landing_distance(launch):.2f} m"
    )

    search = BacktrackingLineSearch(initial_step=2e-2)
    launch, history = search.minimize(loss, launch, max_steps=120)

    for i, step in enumerate(history):
        if i % 20 == 0 or i == len(history) - 1:
            print(
                f"  step {i:2d}: miss^2 {step.loss_before:9.3f} -> "
                f"{step.loss_after:9.3f} (step size {step.step_size:.2e})"
            )

    print(
        f"final: angle={math.degrees(launch.angle):.1f} deg, "
        f"speed={launch.speed:.2f} m/s -> lands at "
        f"{landing_distance(launch):.3f} m"
    )
    assert abs(landing_distance(launch) - TARGET) < 0.1


if __name__ == "__main__":
    main()
