"""Switching Tensor implementations by device placement (Section 3).

The same MLP training loop runs on the eager op-by-op backend and the
LazyTensor tracing backend; this example prints what each runtime actually
did — kernels dispatched vs traces compiled, fusion statistics, and the
simulated step times that make Table 3's comparison tick.

Run:  python examples/lazy_vs_eager.py
"""

from repro.data import synthetic_mnist
from repro.hlo.compiler import STATS as COMPILER_STATS
from repro.nn import MLP, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.costmodel import GTX_1080, S4TF_EAGER, S4TF_LAZY
from repro.tensor import Device
from repro.training import train_step


def flat_loss(model, x, y):
    return softmax_cross_entropy(model(x.reshaped((-1, 256))), y)


def run(kind: str, engine, steps: int = 10) -> None:
    device = Device(kind, GTX_1080, engine)
    model = MLP.create(256, [128, 64], 10, device=device, seed=0)
    data = synthetic_mnist(n=64, image_size=16)
    batches = list(data.batches(32, device=device))

    losses = []
    for step in range(steps):
        x, y = batches[step % len(batches)]
        losses.append(float(train_step(model, SGD(0.05), flat_loss, x, y, device)))
    device.sync()

    print(f"\n== {kind} backend ({engine.name}) ==")
    print(f"  loss: {losses[0]:.4f} -> {losses[-1]:.4f}")
    print(f"  simulated time for {steps} steps: {device.elapsed * 1e3:.2f} ms")
    if kind == "eager":
        print(f"  ops dispatched: {device.dispatcher.ops_dispatched}")
        print(f"  kernels launched: {device.sim.stats.kernels_launched}")
    else:
        rt = device.runtime
        print(f"  ops traced: {rt.ops_traced} (re-traced every step)")
        print(f"  XLA compilations: {rt.compiles_triggered} "
              f"(cache hits: {COMPILER_STATS.cache_hits})")
        s = device.sim.stats
        print(f"  fused kernels: {s.fused_kernels}; "
              f"ops inside fused kernels: {s.ops_in_fused_kernels}")


def main() -> None:
    COMPILER_STATS.reset()
    run("eager", S4TF_EAGER)
    run("lazy", S4TF_LAZY)
    print(
        "\nSame numerics, different runtimes: the lazy backend pays tracing "
        "per step but compiles each unique trace once and executes fused "
        "kernels (Sections 3.3-3.4)."
    )


if __name__ == "__main__":
    main()
