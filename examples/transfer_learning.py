"""Transfer learning: the workflow the paper's introduction motivates.

"Thanks to advancements in transfer learning, recent models have been
explicitly designed with pre-training in mind.  By starting from a
pre-trained checkpoint, effective models can be trained on one desktop
GPU." (Section 1.)

This example pre-trains an MLP on a large synthetic task, saves a
checkpoint, then fine-tunes only the classifier head on a small related
task — comparing against training the same architecture from scratch on
the small data.

Run:  python examples/transfer_learning.py
"""

import numpy as np

from repro.core import value_and_gradient
from repro.data import synthetic_mnist
from repro.nn import MLP, accuracy, load_state_dict, softmax_cross_entropy, state_dict
from repro.optim import Adam
from repro.tensor import eager_device
from repro.training import train


def flat_loss(model, x, y):
    return softmax_cross_entropy(model(x.reshaped((-1, 64))), y)


def head_only_step(model, optimizer, x, y):
    """Fine-tune just the head: take the full gradient, keep only the
    head's component (gradients are first-class TangentVectors)."""
    loss, grads = value_and_gradient(flat_loss, model, x, y, wrt=0)
    head_only = type(model).TangentVector(head=grads.head)
    optimizer.update(model, head_only)
    return float(loss)


def eval_acc(model, data, device):
    total, count = 0.0, 0
    for x, y in data.batches(64, device=device, shuffle=False):
        total += accuracy(model(x.reshaped((-1, 64))), y)
        count += 1
    return total / count


def main() -> None:
    device = eager_device()

    # Stage 1: pre-train on the "large" upstream dataset.
    upstream = synthetic_mnist(n=512, image_size=8, seed=0)
    pretrained = MLP.create(64, [64, 32], 10, device=device, seed=0)
    train(
        pretrained, Adam(0.005), upstream, flat_loss,
        epochs=6, batch_size=64, device=device,
    )
    checkpoint = state_dict(pretrained)
    print(f"pre-trained on {len(upstream)} examples; "
          f"upstream accuracy {eval_acc(pretrained, upstream, device):.1%}")

    # Stage 2: a small, noisy downstream task (same template family).
    def noisy(n, seed):
        data = synthetic_mnist(n=n, image_size=8, seed=0)
        rng = np.random.default_rng(seed)
        data.images = data.images + 1.5 * rng.standard_normal(
            data.images.shape
        ).astype(np.float32)
        return data

    downstream = noisy(32, seed=5)
    held_out = noisy(256, seed=6)

    # (a) fine-tune the pre-trained checkpoint, head only.
    finetuned = MLP.create(64, [64, 32], 10, device=device, seed=7)
    load_state_dict(finetuned, checkpoint)
    opt = Adam(0.01)
    for epoch in range(3):
        for x, y in downstream.batches(16, device=device, seed=epoch):
            head_only_step(finetuned, opt, x, y)

    # (b) train from scratch on the small data.
    scratch = MLP.create(64, [64, 32], 10, device=device, seed=7)
    train(
        scratch, Adam(0.01), downstream, flat_loss,
        epochs=3, batch_size=16, device=device,
    )

    acc_ft = eval_acc(finetuned, held_out, device)
    acc_scratch = eval_acc(scratch, held_out, device)
    print(f"downstream held-out set ({len(held_out)} examples):")
    print(f"  fine-tuned from checkpoint: {acc_ft:.1%}")
    print(f"  trained from scratch:       {acc_scratch:.1%}")
    assert acc_ft > acc_scratch, "transfer should beat scratch on small data"


if __name__ == "__main__":
    main()
