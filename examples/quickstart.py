"""Quickstart: the paper's core workflow end to end.

1. Differentiate ordinary Python functions ahead of time (Figures 1-3).
2. Define LeNet-5 as a value-type model (Figure 6).
3. Train it with the explicit loop of Figure 7: gradient w.r.t. the model,
   optimizer borrows the model uniquely and updates in place.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import differentiable, gradient, value_and_gradient
from repro.data import synthetic_mnist
from repro.nn import LeNet, accuracy, softmax_cross_entropy
from repro.optim import SGD
from repro.tensor import Tensor, eager_device, one_hot


# --- 1. language-integrated AD on plain functions --------------------------


@differentiable
def f(x):
    """Any Python function in the supported subset is differentiable —
    including control flow."""
    result = 1.0
    while result < 100.0:
        result = result * x
    return result


def loss_fn(model, x, y):
    """Loss functions take the model as a parameter — the gradient with
    respect to it is a Model.TangentVector, a first-class value."""
    logits = model(x)
    return softmax_cross_entropy(logits, y)


def main() -> None:
    print("gradient of x^2 + 3x at 2.0:", gradient(lambda_free_square, 2.0))
    print("gradient through a data-dependent loop at 3.0:", gradient(f, 3.0))

    # --- 2. the LeNet model (Figure 6) ------------------------------------
    device = eager_device()
    model = LeNet.create(device, seed=42)
    print("\nLeNet created; conv1 filter shape:", model.conv1.filter.shape)

    # --- 3. the training loop (Figure 7) -----------------------------------
    dataset = synthetic_mnist(n=256, image_size=28, seed=1)
    optimizer = SGD(learning_rate=0.15, momentum=0.9)

    print("\ntraining LeNet on synthetic MNIST:")
    for epoch in range(5):
        epoch_loss = 0.0
        batches = 0
        for x, y in dataset.batches(32, device=device, seed=epoch):
            loss, grads = value_and_gradient(loss_fn, model, x, y, wrt=0)
            optimizer.update(model, grads)  # borrows `model` uniquely
            epoch_loss += float(loss)
            batches += 1
        print(f"  epoch {epoch}: mean loss {epoch_loss / batches:.4f}")

    # Evaluate.
    correct = 0.0
    count = 0
    for x, y in dataset.batches(64, device=device, shuffle=False):
        correct += accuracy(model(x), y)
        count += 1
    print(f"final training-set accuracy: {correct / count:.1%}")


def lambda_free_square(x):
    return x * x + 3.0 * x


if __name__ == "__main__":
    main()
