"""Data-parallel pod training (the Table 1 machinery)."""

import numpy as np
import pytest

from repro.data import synthetic_mnist
from repro.nn import MLP, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.costmodel import S4TF_LAZY, TPU_V3_CORE
from repro.tensor import Device
from repro.training import DataParallelTrainer


def _loss(model, x, y):
    return softmax_cross_entropy(model(x.reshaped((-1, 64))), y)


def _setup(n_cores):
    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = MLP.create(64, [32], 10, device=device, seed=0)
    data = synthetic_mnist(n=32, image_size=8)
    x, y = next(data.batches(16, device=device))
    trainer = DataParallelTrainer(device, TPU_V3_CORE, n_cores)
    return trainer, model, x, y


def test_step_reports_timing_components():
    trainer, model, x, y = _setup(8)
    stats = trainer.step(model, SGD(0.05), _loss, x, y)
    assert stats.compute_time > 0
    assert stats.allreduce_time > 0
    assert stats.gradient_bytes > 1000  # MLP parameters
    assert stats.step_time == stats.compute_time + stats.allreduce_time


def test_single_core_has_no_allreduce():
    trainer, model, x, y = _setup(1)
    stats = trainer.step(model, SGD(0.05), _loss, x, y)
    assert stats.allreduce_time == 0.0


def test_training_actually_updates_the_model():
    trainer, model, x, y = _setup(4)
    before = model.head.weight.numpy().copy()
    losses = []
    opt = SGD(learning_rate=0.1)
    for _ in range(5):
        trainer.step(model, opt, _loss, x, y)
        losses.append(float(_loss(model, x, y)))
    assert not np.array_equal(model.head.weight.numpy(), before)
    assert losses[-1] < losses[0]


def test_throughput_computation():
    trainer, model, x, y = _setup(16)
    stats = trainer.step(model, SGD(0.05), _loss, x, y)
    total, per_core = trainer.throughput(stats, per_replica_batch=16)
    assert total == pytest.approx(16 * 16 / stats.step_time)
    assert per_core == pytest.approx(total / 16)


def test_gradient_bytes_match_model_size():
    trainer, model, x, y = _setup(4)
    stats = trainer.step(model, SGD(0.05), _loss, x, y)
    # MLP(64->32->10): weights+biases = 64*32+32 + 32*10+10 params * 4B.
    expected = (64 * 32 + 32 + 32 * 10 + 10) * 4
    assert stats.gradient_bytes == expected


def test_allreduce_grows_slowly_with_cores():
    results = {}
    for n in (2, 16, 128):
        trainer, model, x, y = _setup(n)
        stats = trainer.step(model, SGD(0.05), _loss, x, y)
        results[n] = stats.allreduce_time
    # Tiny gradients are latency-bound: growth is monotone in pod size.
    assert results[2] < results[16] < results[128]
    # Realistic (ResNet-50-sized) gradients are bandwidth-bound, where the
    # ring's transfer volume saturates near 2x the gradient size: going
    # from 16 to 128 cores costs only ~30% more all-reduce time.
    big = 100e6
    t16 = TPU_V3_CORE.allreduce_time(big, 16)
    t128 = TPU_V3_CORE.allreduce_time(big, 128)
    assert t128 < 1.4 * t16
