"""Training loops: convergence, automatic barriers, memory discipline."""

import numpy as np

from repro.data import synthetic_mnist
from repro.nn import MLP, LeNet, softmax_cross_entropy
from repro.optim import SGD, Adam, functional_update
from repro.runtime import track
from repro.tensor import Tensor, eager_device, lazy_device
from repro.training import evaluate, train, train_step


def loss_fn(model, x, y):
    return softmax_cross_entropy(model(x), y)


def test_mlp_learns_synthetic_mnist():
    device = eager_device()
    data = synthetic_mnist(n=128, image_size=8)
    model = MLP.create(64, [32], 10, device=device, seed=0)

    def flat_loss(m, x, y):
        return softmax_cross_entropy(m(x.reshaped((-1, 64))), y)

    history = train(
        model, Adam(0.01), data, flat_loss, epochs=6, batch_size=32, device=device
    )
    assert history.losses[-1] < history.losses[0] * 0.5

    def flat_model(x):
        return model(x.reshaped((-1, 64)))

    class _Wrapper:
        def __call__(self, x):
            return flat_model(x)

    acc = evaluate(_Wrapper(), data, device=device)
    assert acc > 0.6  # templated classes are separable


def test_lenet_single_steps_reduce_loss():
    device = eager_device()
    data = synthetic_mnist(n=64, image_size=28)
    model = LeNet.create(device, seed=0)
    opt = SGD(learning_rate=0.05)
    batches = list(data.batches(16, device=device))
    first = float(train_step(model, opt, loss_fn, *batches[0], device))
    losses = [first]
    for _ in range(6):
        for x, y in batches:
            losses.append(float(train_step(model, opt, loss_fn, x, y, device)))
    assert losses[-1] < losses[0]


def test_training_loop_on_lazy_device_compiles_once():
    from repro.hlo import clear_cache
    from repro.hlo.compiler import STATS

    clear_cache()
    STATS.reset()
    device = lazy_device()
    data = synthetic_mnist(n=96, image_size=8)
    model = MLP.create(64, [16], 10, device=device, seed=0)

    def flat_loss(m, x, y):
        return softmax_cross_entropy(m(x.reshaped((-1, 64))), y)

    train(model, SGD(0.05), data, flat_loss, epochs=2, batch_size=32, device=device)
    # The automatic barrier keeps every step's trace identical: after the
    # first step compiles, all subsequent steps are cache hits.
    assert STATS.compiles <= 2  # forward+backward fragment (+metrics path)
    assert STATS.cache_hits >= 4


def test_per_step_trace_hashes_identically_steps_2_to_n():
    """Regression pin for the lazy_backend docstring claim: a training
    loop's per-step trace hashes identically across steps, so steps 2..N
    are all cache hits — proven statically (canonical keys) and observed
    dynamically (STATS deltas), via the trace-stability analyzer."""
    from repro.analysis.tracing import analyze_step_program
    from repro.data import synthetic_mnist as make_data
    from repro.optim import SGD as _SGD

    device = lazy_device()
    data = make_data(n=32, image_size=4)
    x, y = next(iter(data.batches(32, device=device, shuffle=False)))
    model = MLP.create(16, [8], 10, device=device, seed=0)
    optimizer = _SGD(0.05)

    def flat_loss(m, xb, yb):
        return softmax_cross_entropy(m(xb.reshaped((-1, 16))), yb)

    def step_fn(step):
        train_step(model, optimizer, flat_loss, x, y, device)

    report = analyze_step_program(step_fn, 5, device, name="docstring_claim")
    # Steps 2..N: every fragment after the steady state is a cache hit.
    fragments = report.stability.fragments
    tail = [f for f in fragments if f.step >= 2]
    assert tail and all(f.predicted_hit for f in tail)
    # Canonical keys for steps 1..N are all identical — one executable.
    steady_keys = {f.canonical.key for f in fragments if f.step >= 1}
    assert len(steady_keys) == 1
    # And the dynamic runtime agrees exactly with the static prediction.
    assert report.cross_check_ok
    assert report.verdicts() == {"clean"}


def test_lazy_and_eager_training_agree():
    data = synthetic_mnist(n=64, image_size=8, seed=3)

    def run(device):
        model = MLP.create(64, [16], 10, device=device, seed=1)

        def flat_loss(m, x, y):
            return softmax_cross_entropy(m(x.reshaped((-1, 64))), y)

        history = train(
            model, SGD(0.1), data, flat_loss, epochs=2, batch_size=32, device=device
        )
        return history.losses

    eager_losses = run(eager_device())
    lazy_losses = run(lazy_device())
    np.testing.assert_allclose(eager_losses, lazy_losses, rtol=1e-3)


def test_inout_update_uses_less_peak_memory_than_functional():
    """Section 4.2: the (inout Model) update avoids materializing two full
    copies of the parameters; the functional update cannot."""
    device = eager_device()
    model_size = 512 * 512

    def build():
        return MLP.create(512, [512], 512, device=device, seed=0)

    from repro.core import value_and_gradient

    def big_loss(m, x):
        return (m(x) * m(x)).sum()

    x = Tensor(np.ones((4, 512), np.float32), device)

    model = build()
    _, g = value_and_gradient(big_loss, model, x, wrt=0)

    with track() as t_inout:
        opt = SGD(0.01)
        opt.update(model, g)
    inout_peak = t_inout.peak_bytes

    model2 = build()
    _, g2 = value_and_gradient(big_loss, model2, x, wrt=0)
    with track() as t_func:
        updated = functional_update(model2, g2, 0.01)
        # Both `model2` and `updated` are now live, as in `(Model) -> Model`
        # training loops.
        assert updated is not model2
    func_peak = t_func.peak_bytes

    # Both allocate the new parameters, but only the functional form keeps
    # them *in addition to* retaining the old model afterwards; peak live
    # growth is what matters.  With in-place move the old storage is
    # released as each parameter is rebound.
    assert inout_peak <= func_peak
    assert func_peak >= model_size * 4  # at least one full extra copy


def test_history_records_metrics():
    device = eager_device()
    data = synthetic_mnist(n=32, image_size=8)
    model = MLP.create(64, [8], 10, device=device)

    def flat_loss(m, x, y):
        return softmax_cross_entropy(m(x.reshaped((-1, 64))), y)

    history = train(
        model, SGD(0.05), data, flat_loss, epochs=1, batch_size=16,
        device=device, metrics=True,
        predict=lambda m, x: m(x.reshaped((-1, 64))),
    )
    assert len(history.accuracies) == len(history.losses) > 0
    assert history.final_loss == history.losses[-1]


def test_callback_invoked_per_step():
    device = eager_device()
    data = synthetic_mnist(n=32, image_size=8)
    model = MLP.create(64, [8], 10, device=device)
    seen = []

    def flat_loss(m, x, y):
        return softmax_cross_entropy(m(x.reshaped((-1, 64))), y)

    train(
        model, SGD(0.05), data, flat_loss, epochs=1, batch_size=16,
        device=device, callback=lambda r: seen.append(r.step),
    )
    assert seen == [0, 1]
