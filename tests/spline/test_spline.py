"""Spline model: evaluation, differentiation, fitting, personalization."""

import numpy as np
import pytest

from repro.core import gradient
from repro.data import personalization_split
from repro.spline import (
    SplineModel,
    fine_tune,
    fit_spline,
    spline_evaluate,
    spline_loss,
)


def test_create_validates():
    with pytest.raises(ValueError):
        SplineModel.create(3)
    m = SplineModel.create(6, initial=0.5)
    assert len(m.control_points) == 6
    assert m.n_segments == 5


def test_interpolates_control_points_at_knots():
    m = SplineModel([0.0, 1.0, 4.0, 9.0, 16.0], 4)
    for k in range(5):
        x = k / 4.0
        assert spline_evaluate(m, x) == pytest.approx(float(k * k), abs=1e-9)


def test_continuous_between_knots():
    m = SplineModel([0.0, 1.0, 0.0, 1.0, 0.0], 4)
    xs = np.linspace(0, 1, 101)
    values = [spline_evaluate(m, float(x)) for x in xs]
    diffs = np.abs(np.diff(values))
    assert diffs.max() < 0.2  # no jumps


def test_clamps_at_boundaries():
    m = SplineModel.create(5, initial=2.0)
    assert spline_evaluate(m, 0.0) == pytest.approx(2.0)
    assert spline_evaluate(m, 1.0) == pytest.approx(2.0)


def test_gradient_wrt_control_points():
    m = SplineModel([0.0, 0.0, 0.0, 0.0, 0.0], 4)

    def loss(model):
        return spline_evaluate(model, 0.4) * 2.0

    g = gradient(loss, m)
    cps = g.control_points
    # x=0.4 lies in segment 1: control points 0..3 participate via the
    # Hermite basis; distant points do not.
    from repro.core import ZERO

    assert any(c is not ZERO and abs(c) > 0 for c in cps[:4])
    assert cps[4] is ZERO or cps[4] == 0.0


def test_gradient_matches_finite_differences():
    m = SplineModel([0.1, -0.2, 0.3, 0.4, -0.1, 0.2], 5)
    xs = [0.05, 0.3, 0.55, 0.8, 0.95]
    ys = [0.0, 0.1, 0.2, 0.3, 0.4]

    def loss(model):
        return spline_loss(model, xs, ys)

    g = gradient(loss, m)
    eps = 1e-6
    for k in range(6):
        plus = list(m.control_points)
        minus = list(m.control_points)
        plus[k] += eps
        minus[k] -= eps
        fd = (
            spline_loss(SplineModel(plus, 5), xs, ys)
            - spline_loss(SplineModel(minus, 5), xs, ys)
        ) / (2 * eps)
        got = g.control_points[k]
        got = 0.0 if got is None or not isinstance(got, float) else got
        assert got == pytest.approx(fd, rel=1e-4, abs=1e-7)


def test_fit_reduces_loss_to_near_zero_on_realizable_target():
    rng = np.random.default_rng(0)
    true = SplineModel([0.0, 0.5, -0.5, 0.25, 0.0], 4)
    xs = rng.uniform(0, 1, 64)
    ys = [spline_evaluate(true, float(x)) for x in xs]
    model, report = fit_spline(SplineModel.create(5), xs, ys, max_steps=80)
    assert report.final_loss < 1e-4
    assert report.final_loss < report.initial_loss


def test_global_then_fine_tune_workflow():
    global_data, user_data = personalization_split(n_global=96, n_user=32, seed=1)
    global_model, global_report = fit_spline(
        SplineModel.create(8), global_data.xs, global_data.ys, max_steps=60
    )
    assert global_report.final_loss < global_report.initial_loss

    personal, report = fine_tune(global_model, user_data.xs, user_data.ys)
    assert report.final_loss < report.initial_loss
    # Personalization actually changed the model.
    assert personal.control_points != global_model.control_points
    # And fits the user's data better than the global model does.
    user_loss_global = spline_loss(global_model, user_data.xs, user_data.ys)
    user_loss_personal = spline_loss(personal, user_data.xs, user_data.ys)
    assert user_loss_personal < user_loss_global


def test_fine_tune_does_not_mutate_global_checkpoint():
    global_data, user_data = personalization_split(seed=2)
    global_model, _ = fit_spline(
        SplineModel.create(6), global_data.xs[:32], global_data.ys[:32], max_steps=20
    )
    snapshot = list(global_model.control_points)
    fine_tune(global_model, user_data.xs, user_data.ys, max_steps=10)
    assert global_model.control_points == snapshot  # value semantics


def test_spline_on_naive_tensor_backend():
    """The mobile path: control points as 0-d naive tensors (pure Python)."""
    from repro.tensor import Tensor, naive_device

    device = naive_device()
    m = SplineModel(
        [Tensor.scalar(v, device) for v in (0.0, 1.0, 0.0, -1.0, 0.0)], 4
    )
    y = spline_evaluate(m, 0.37)
    assert isinstance(y, Tensor)

    def loss(model):
        return spline_loss(model, [0.2, 0.7], [0.5, -0.5])

    g = gradient(loss, m)
    assert any(
        not isinstance(c, float) and float(c.abs().sum()) > 0
        for c in g.control_points
        if hasattr(c, "abs")
    )
