"""Failure injection: the platform must fail loudly, early, and precisely."""

import numpy as np
import pytest

from repro.core import differentiable, gradient
from repro.errors import (
    DeviceError,
    DifferentiabilityError,
    LoweringError,
    ShapeError,
)
from repro.nn import Dense, LeNet, softmax_cross_entropy
from repro.tensor import Device, Tensor, eager_device, lazy_device, one_hot


class TestLoweringDiagnostics:
    def test_error_carries_source_location(self):
        def bad(x):
            return {k: x for k in range(3)}  # dict comprehension unsupported

        with pytest.raises(LoweringError) as excinfo:
            differentiable(bad)
        message = str(excinfo.value)
        assert "test_failure_modes.py" in message
        assert "bad" in message

    def test_decoration_fails_not_first_call(self):
        # The AOT property: unsupported constructs are rejected when the
        # attribute is applied, before any gradient is requested.
        def bad(x):
            y = [v for v in [x]]  # comprehension
            return y[0]

        with pytest.raises(LoweringError):
            differentiable(bad)


class TestDifferentiabilityDiagnostics:
    def test_error_names_the_offending_primitive(self):
        from repro.sil.primitives import primitive

        @primitive("opaque_fm_test")
        def opaque(x):
            return x

        def f(x):
            return opaque(x) * 2.0

        with pytest.raises(DifferentiabilityError) as excinfo:
            gradient(f, 1.0)
        assert "opaque_fm_test" in str(excinfo.value)
        assert "no registered derivative" in str(excinfo.value)

    def test_error_raised_before_execution(self):
        from repro.sil.primitives import primitive

        executed = []

        @primitive("tracked_fm_test", pure=False)
        def tracked(x):
            executed.append(x)
            return x

        def f(x):
            return tracked(x) * 2.0

        with pytest.raises(DifferentiabilityError):
            gradient(f, 1.0)
        assert executed == []  # checking happened before any evaluation


class TestShapeErrors:
    def test_matmul_shape_mismatch(self):
        device = eager_device()
        a = Tensor(np.zeros((2, 3), np.float32), device)
        b = Tensor(np.zeros((4, 5), np.float32), device)
        with pytest.raises(Exception):  # numpy raises ValueError eagerly
            a @ b

    def test_lazy_shape_mismatch_caught_at_trace_time(self):
        device = lazy_device()
        a = Tensor(np.zeros((2, 3), np.float32), device)
        b = Tensor(np.zeros((4, 5), np.float32), device)
        with pytest.raises(ShapeError):
            a @ b  # shape inference runs while recording, not at materialize

    def test_lazy_broadcast_mismatch(self):
        device = lazy_device()
        a = Tensor(np.zeros((3,), np.float32), device)
        b = Tensor(np.zeros((4,), np.float32), device)
        with pytest.raises(Exception):
            a + b

    def test_model_wrong_input_shape(self):
        device = eager_device()
        model = LeNet.create(device)
        wrong = Tensor(np.zeros((1, 10, 10, 1), np.float32), device)
        with pytest.raises(Exception):
            model(wrong)


class TestDeviceErrors:
    def test_cross_device_arithmetic(self):
        a = Tensor([1.0], eager_device())
        b = Tensor([1.0], lazy_device())
        with pytest.raises(DeviceError):
            a + b

    def test_unknown_device_kind(self):
        with pytest.raises(ValueError, match="unknown device kind"):
            Device("quantum")


class TestGradientMisuse:
    def test_gradient_of_vector_output(self):
        device = eager_device()

        def f(x):
            return x * 2.0  # non-scalar

        from repro.errors import ReproError

        with pytest.raises(ReproError, match="scalar"):
            gradient(f, Tensor([1.0, 2.0], device))

    def test_gradient_wrt_out_of_range(self):
        def f(x):
            return x * x

        with pytest.raises(Exception):
            gradient(f, 2.0, wrt=3)

    def test_naive_device_rejects_conv(self):
        from repro.tensor import conv2d, naive_device

        device = naive_device()
        x = Tensor(np.zeros((1, 4, 4, 1), np.float32).tolist(), device)
        f = Tensor(np.zeros((3, 3, 1, 1), np.float32).tolist(), device)
        with pytest.raises(NotImplementedError, match="naive"):
            conv2d(x, f)


class TestAotProperty:
    def test_no_relowering_or_resynthesis_across_calls(self):
        from repro.core import derivative_count
        from repro.sil.frontend import lowering_cache_size

        @differentiable
        def f(x):
            total = 0.0
            for i in range(5):
                if i % 2 == 0:
                    total += x * float(i)
                else:
                    total -= x
            return total

        before = lowering_cache_size()
        for x in (1.0, -2.0, 3.5, 0.0):
            gradient(f, x)
        assert lowering_cache_size() == before  # nothing re-lowered
        assert derivative_count(f) == 1  # derivative synthesized once

    def test_layers_lowered_once_per_class(self):
        # Two instances of the same layer class share one lowered function.
        device = eager_device()
        a = Dense.create(2, 2, device=device)
        b = Dense.create(2, 2, device=device)
        assert type(a).__call_fn__ is type(b).__call_fn__

    def test_training_never_retransforms(self):
        device = eager_device()
        model = LeNet.create(device, seed=0)
        x = Tensor(np.zeros((2, 28, 28, 1), np.float32), device)
        y = one_hot(Tensor([1.0, 2.0], device), 10)

        def loss(m, xb, yb):
            return softmax_cross_entropy(m(xb), yb)

        from repro.core.api import _promote

        df = _promote(loss)
        plan = None
        from repro.core import value_and_gradient

        for _ in range(3):
            value_and_gradient(loss, model, x, y, wrt=0)
            current = df.vjp_plan((0,))
            if plan is None:
                plan = current
            assert current is plan
            assert current.build_count == 1
