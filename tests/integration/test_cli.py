"""The `python -m repro.experiments` command line."""

from repro.experiments.__main__ import EXPERIMENTS, main


def test_unknown_experiment_exits_2(capsys):
    assert main(["bogus"]) == 2
    out = capsys.readouterr().out
    assert "unknown experiment" in out
    assert "table3" in out  # lists available names


def test_single_experiment_renders(capsys):
    assert main(["figure9"]) == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out
    assert "functional" in out


def test_registry_covers_all_tables_and_figures():
    assert set(EXPERIMENTS) == {
        "table1",
        "table2",
        "table3",
        "table4",
        "figure4",
        "figure9",
        "trace_stability",
        "derivative_pruning",
        "memory_plan",
        "precision_audit",
        "codegen_audit",
    }


def test_derivative_pruning_experiment_renders_identity_table(capsys):
    assert main(["derivative_pruning"]) == 0
    out = capsys.readouterr().out
    assert "Pullback-capture pruning" in out
    assert "every pruned gradient is bit-identical" in out
    assert "✗" not in out
    for name in ("polynomial", "dead_capture", "loop_dead_capture"):
        assert name in out


def test_trace_stability_experiment_renders_exact_match_table(capsys):
    assert main(["trace_stability"]) == 0
    out = capsys.readouterr().out
    assert "Trace-stability audit" in out
    assert "all static predictions match the runtime" in out
    assert "✗" not in out
    # Every corpus program appears as a row.
    for name in ("mlp_train_clean", "lr_schedule_storm", "shape_drift"):
        assert name in out

def test_codegen_audit_experiment_renders_certificate_table(capsys):
    assert main(["codegen_audit"]) == 0
    out = capsys.readouterr().out
    assert "Codegen audit" in out
    assert "bit-identically" in out
    assert "✗" not in out
    for name in ("mlp_chain", "lenet_forward", "miscompile_stale_reuse"):
        assert name in out
