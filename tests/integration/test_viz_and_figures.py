"""Trace visualisation (Figure 4 machinery) and paper-figure API parity."""

import numpy as np
import pytest

from repro.core import differentiable, gradient, value_and_gradient
from repro.nn import Dense, LeNet, relu, softmax_cross_entropy
from repro.optim import SGD
from repro.tensor import Device, Tensor, lazy_device, one_hot
from repro.viz import (
    capture_forward_trace,
    trace_summary,
    trace_to_dot,
    trace_to_text,
)


class TestTraceViz:
    def _trace(self):
        device = lazy_device()
        layer = Dense.create(
            4, 2, activation=relu, device=device, rng=np.random.default_rng(0)
        )
        x = Tensor(np.ones((3, 4), np.float32), device)
        return capture_forward_trace(layer, x)

    def test_text_rendering(self):
        text = trace_to_text([self._trace()])
        assert "matmul" in text
        assert "relu" in text
        assert "source" in text
        # Topological: every operand reference points backwards.
        for i, line in enumerate(text.splitlines()):
            if not line.endswith(")") or "(" not in line:
                continue
            operand_text = line.rsplit("(", 1)[1].rstrip(")")
            for tok in operand_text.split():
                if tok.startswith("%"):
                    assert int(tok[1:].rstrip(",")) < i

    def test_dot_rendering(self):
        dot = trace_to_dot([self._trace()], name="dense")
        assert dot.startswith("digraph dense {")
        assert dot.rstrip().endswith("}")
        assert "->" in dot

    def test_summary(self):
        summary = trace_summary(self._trace())
        assert summary["op:matmul"] == 1
        assert summary["op:relu"] == 1
        assert summary["sources"] == 3  # x, weight, bias
        assert summary["total_nodes"] == summary["sources"] + summary["operations"]

    def test_requires_lazy_tensor(self):
        from repro.tensor import eager_device

        device = eager_device()
        layer = Dense.create(2, 2, device=device)
        x = Tensor(np.ones((1, 2), np.float32), device)
        with pytest.raises(TypeError, match="lazy"):
            capture_forward_trace(layer, x)


class TestPaperFigureParity:
    """The code figures of the paper, executable as written (modulo syntax)."""

    def test_figure2_gradient_operator(self):
        # gradient(at: x, in: f) -> A.TangentVector
        def f(x):
            return x * x * 3.0

        assert gradient(f, 2.0) == pytest.approx(12.0)

    def test_figure3_differentiable_function_triple(self):
        # A differentiable function value bundles original + JVP + VJP.
        @differentiable
        def f(x):
            return x * x

        value, pullback = f.vjp(3.0)
        assert value == 9.0
        assert pullback(1.0) == pytest.approx(6.0)
        value, tangent = f.jvp((3.0,), (1.0,))
        assert tangent == pytest.approx(6.0)

    def test_figure6_lenet_definition(self):
        model = LeNet.create(lazy_device())
        # struct conforming to Layer: differentiable fields + callAsFunction
        assert hasattr(model, "TangentVector")
        assert callable(model)
        assert type(model).__call_fn__.func.name.endswith("callAsFunction")

    def test_figure7_training_loop(self):
        # for epoch in epochs { grads = gradient(at: model) {...};
        #                       optimizer.update(&model, along: grads) }
        device = Device("eager")
        model = LeNet.create(device, seed=0)
        optimizer = SGD(learning_rate=0.05)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 28, 28, 1)).astype(np.float32), device)
        y = one_hot(Tensor([0.0, 1.0, 2.0, 3.0], device), 10)

        def loss_fn(model, x, y):
            logits = model(x)
            return softmax_cross_entropy(logits, y)

        losses = []
        for _ in range(3):
            loss, grads = value_and_gradient(loss_fn, model, x, y, wrt=0)
            optimizer.update(model, grads)  # borrows the model uniquely
            losses.append(float(loss))
        assert losses[-1] < losses[0]
        # gradients are first-class values of type Model.TangentVector
        assert isinstance(grads, type(model).TangentVector)
