"""Differential testing of the execution paths (the concurrent engine's proof).

A seeded generator emits random tensor programs; every program runs on:

* the **naive** device (pure-Python f64 scalars) — the semantic oracle,
  compared within tolerance;
* the **eager** device (op-by-op NumPy) — the bit-level reference;
* the **lazy** device (trace -> HLO -> compiled executable);
* the **async-lazy** device twice: the cold run falls back to op-by-op
  execution while the JIT runs in the background, the warm run executes
  the compiled executable;
* two concurrent replicas on a thread pool sharing one async compiler;
* two forked **process** replicas (``backend="process"``) re-running each
  chunk's programs in their own address spaces;
* the three trainer backends (``serial``/``thread``/``process``) training
  the same model in lockstep: losses, averaged gradient leaves, and
  post-step weights must be bit-identical, with the process backend's
  gradients crossing a zero-copy shared-memory exchange.

Values *and* gradients on every NumPy path must be bit-identical
(``tobytes`` equality): the fallback interpreter, the compiled
executable, and the eager dispatcher all bottom out in the same kernels,
and nothing about tracing, fusion, or thread scheduling may change a
single ulp.  The generator avoids literal ``0.0``/``1.0`` constants so
algebraic simplification is value-preserving at the bit level.
"""

from __future__ import annotations

import importlib.util
import random
import sys

import numpy as np
import pytest

from repro.core import differentiable
from repro.hlo.compiler import AsyncCompiler
from repro.nn import softmax_cross_entropy
from repro.runtime.parallel import MultiReplicaExecutor, fork_supported
from repro.tensor import Device, Tensor

N_PROGRAMS = 200
SHAPE = (4, 4)

_UNARY = ("tanh", "sigmoid", "relu", "abs", "neg")
_BINARY = ("add", "sub", "mul", "matmul")
#: No 0.0 / 1.0: those literals trigger algebraic identities (x+0 -> x)
#: that drop ops and could legally change bit patterns (e.g. -0.0).
_SCALARS = (0.5, 1.5, 2.0, -0.5, 0.25, 2.5, -1.5)


def generate_program(seed: int) -> tuple[str, str, int]:
    """(function name, source text, number of tensor inputs)."""
    rng = random.Random(seed)
    n_inputs = rng.randint(1, 3)
    args = [f"x{i}" for i in range(n_inputs)]
    names = list(args)
    lines = []
    for i in range(rng.randint(3, 7)):
        var = f"t{i}"
        roll = rng.random()
        if roll < 0.35:
            a = rng.choice(names)
            expr = {
                "tanh": f"{a}.tanh()",
                "sigmoid": f"{a}.sigmoid()",
                "relu": f"{a}.relu()",
                "abs": f"{a}.abs()",
                "neg": f"(-{a})",
            }[rng.choice(_UNARY)]
        elif roll < 0.55:
            a = rng.choice(names)
            expr = f"{a} {rng.choice(['+', '-', '*'])} {rng.choice(_SCALARS)}"
        else:
            a, b = rng.choice(names), rng.choice(names)
            op = rng.choice(_BINARY)
            if op == "matmul":
                # Scale down to keep value growth bounded through chains.
                expr = f"({a} @ {b}) * 0.25"
            else:
                expr = f"{a} {'+' if op == 'add' else '-' if op == 'sub' else '*'} {b}"
        lines.append(f"    {var} = {expr}")
        names.append(var)
    # Mix every input into the result so no gradient is symbolically ZERO.
    mix = " + ".join(args)
    lines.append(f"    return ({names[-1]} + ({mix}) * 0.125).mean()")
    name = f"prog_{seed}"
    source = f"def {name}({', '.join(args)}):\n" + "\n".join(lines) + "\n"
    return name, source, n_inputs


@pytest.fixture(scope="module")
def program_module(tmp_path_factory):
    """All generated programs written to a real module (the SIL frontend
    reads function source via ``inspect.getsource``)."""
    sources = [generate_program(seed) for seed in range(N_PROGRAMS)]
    path = tmp_path_factory.mktemp("diffprogs") / "generated_programs.py"
    path.write_text("".join(src for _, src, _ in sources))
    spec = importlib.util.spec_from_file_location("generated_programs", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["generated_programs"] = module
    spec.loader.exec_module(module)
    try:
        yield module, sources
    finally:
        sys.modules.pop("generated_programs", None)


def _inputs_for(seed: int, n_inputs: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed + 10_000)
    return [
        rng.standard_normal(SHAPE).astype(np.float32) for _ in range(n_inputs)
    ]


def _run_on(df, device: Device, arrays) -> tuple[np.ndarray, list[np.ndarray]]:
    """(value, gradients) of the promoted program on one device."""
    from repro.core import value_and_gradient

    tensors = [Tensor(a, device) for a in arrays]
    value, grads = value_and_gradient(df, *tensors)
    if not isinstance(grads, tuple):
        grads = (grads,)
    return np.asarray(value.numpy()), [np.asarray(g.numpy()) for g in grads]


def _bits(value: np.ndarray, grads) -> bytes:
    return value.tobytes() + b"|".join(g.tobytes() for g in grads)


def _check_program(module, name: str, seed: int, n_inputs: int) -> None:
    fn = getattr(module, name)
    df = differentiable(fn)
    arrays = _inputs_for(seed, n_inputs)

    eager_value, eager_grads = _run_on(df, Device("eager"), arrays)
    reference = _bits(eager_value, eager_grads)

    # Lazy (synchronous JIT) must be bit-identical.
    lazy_value, lazy_grads = _run_on(df, Device("lazy"), arrays)
    assert _bits(lazy_value, lazy_grads) == reference, name

    # Certified codegen: the translation-validated flat step function
    # replaces the interpreted executable and may not move a single ulp.
    gen_value, gen_grads = _run_on(df, Device("lazy", codegen=True), arrays)
    assert _bits(gen_value, gen_grads) == reference, f"{name}: codegen diverged"

    # Async engine: cold run (op-by-op fallback) and warm run (compiled
    # executable) must both be bit-identical.
    compiler = AsyncCompiler()
    cold = _run_on(df, Device("lazy", async_compile=compiler), arrays)
    compiler.wait()
    warm = _run_on(df, Device("lazy", async_compile=compiler), arrays)
    assert _bits(*cold) == reference, f"{name}: fallback path diverged"
    assert _bits(*warm) == reference, f"{name}: compiled path diverged"
    assert compiler.stats.fallback_steps >= 1, name
    assert compiler.stats.compile_hits >= 1, name

    # Two concurrent replicas racing on the same shared compiler.
    executor = MultiReplicaExecutor(2)
    try:
        replica_bits = executor.run(
            lambda i: _bits(
                *_run_on(df, Device("lazy", async_compile=compiler), arrays)
            )
        )
    finally:
        executor.shutdown()
    for i, bits in enumerate(replica_bits):
        assert bits == reference, f"{name}: replica {i} diverged"

    # Naive oracle: same math in Python f64 — close, not bit-equal.
    naive_value, naive_grads = _run_on(df, Device("naive"), arrays)
    np.testing.assert_allclose(naive_value, eager_value, rtol=2e-4, atol=1e-5)
    for got, want in zip(naive_grads, eager_grads):
        np.testing.assert_allclose(got, want, rtol=2e-4, atol=1e-5)


@pytest.mark.parametrize("chunk", range(20))
def test_differential_backends(program_module, chunk):
    module, sources = program_module
    per_chunk = N_PROGRAMS // 20
    for index in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        name, _, n_inputs = sources[index]
        _check_program(module, name, index, n_inputs)


needs_fork = pytest.mark.skipif(
    not fork_supported(), reason="process backend needs the fork start method"
)


@needs_fork
@pytest.mark.parametrize("chunk", range(20))
def test_differential_process_backend(program_module, chunk):
    """Each chunk's programs re-run inside two forked replicas.

    The parent computes the lazy-device reference bits (which the main
    differential test proves equal to eager/naive); each forked child
    re-executes every program in its own address space with the plan
    cache inherited warm through fork.  Values and gradients must come
    back bit-identical across the process boundary.
    """
    module, sources = program_module
    per_chunk = N_PROGRAMS // 20
    indices = range(chunk * per_chunk, (chunk + 1) * per_chunk)
    programs = {}
    reference = {}
    for index in indices:
        name, _, n_inputs = sources[index]
        df = differentiable(getattr(module, name))
        arrays = _inputs_for(index, n_inputs)
        programs[index] = (name, df, arrays)
        reference[index] = _bits(*_run_on(df, Device("lazy"), arrays))

    def replica_run(replica: int) -> dict:
        return {
            index: _bits(*_run_on(df, Device("lazy"), arrays))
            for index, (_, df, arrays) in programs.items()
        }

    executor = MultiReplicaExecutor(2, backend="process")
    try:
        results = executor.run(replica_run)
    finally:
        executor.shutdown()
    assert len(results) == 2
    for replica, result in enumerate(results):
        for index, (name, _, _) in programs.items():
            assert result[index] == reference[index], (
                f"{name}: process replica {replica} diverged"
            )


def _trainer_loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


@needs_fork
def test_trainer_backends_bit_identical():
    """serial / thread / process trainers stay bitwise in lockstep.

    Losses, averaged gradient leaves (the shared-memory all-reduce
    output), and post-step weights must agree to the last bit after
    multiple steps — the process backend's gradients make a round trip
    through ``multiprocessing.shared_memory`` and may not move an ulp.
    """
    from repro.nn import MLP
    from repro.optim import SGD
    from repro.runtime.parallel import (
        ParallelDataParallelTrainer,
        registered_segments,
    )

    def make(backend):
        return ParallelDataParallelTrainer(
            lambda device: MLP.create(6, [8], 4, device=device, seed=0),
            lambda: SGD(learning_rate=0.1),
            3,
            backend=backend,
        )

    rng = np.random.default_rng(11)
    x = rng.standard_normal((6, 6)).astype(np.float32)
    y = np.eye(4, dtype=np.float32)[rng.integers(0, 4, 6)]

    trainers = {b: make(b) for b in ("serial", "thread", "process")}
    try:
        for _ in range(3):
            stats = {
                b: t.step(_trainer_loss, t.replicate_batch(x, y))
                for b, t in trainers.items()
            }
            oracle = stats["serial"]
            for backend in ("thread", "process"):
                got = stats[backend]
                assert got.losses == oracle.losses, backend
                assert len(got.averaged_leaves) == len(oracle.averaged_leaves)
                for mine, ref in zip(got.averaged_leaves, oracle.averaged_leaves):
                    if isinstance(ref, float):
                        assert mine == ref, backend
                    else:
                        assert mine.tobytes() == ref.tobytes(), backend
                assert got.device_stats == oracle.device_stats, backend
        oracle_weights = trainers["serial"].weights_bytes(0)
        for backend, trainer in trainers.items():
            for replica in range(3):
                assert trainer.weights_bytes(replica) == oracle_weights, (
                    f"{backend} replica {replica} weights diverged"
                )
    finally:
        for trainer in trainers.values():
            trainer.shutdown()
    assert registered_segments() == ()


def test_generator_is_deterministic():
    assert generate_program(17) == generate_program(17)
    assert generate_program(3) != generate_program(4)


def test_generator_avoids_identity_literals():
    for seed in range(N_PROGRAMS):
        _, source, _ = generate_program(seed)
        assert " 1.0" not in source.replace("* 0.125", "")
        assert " 0.0" not in source
