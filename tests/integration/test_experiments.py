"""Integration tests: the experiment harnesses reproduce the paper's shapes.

These are the acceptance tests of the reproduction: each asserts the
qualitative result (ordering, scaling, crossover) of one table/figure.
"""

import pytest

from repro.experiments import (
    run_figure4,
    run_figure9,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.table1 import TPUWorkload, measure_pod


class TestTable1:
    def test_per_core_throughput_nearly_flat(self):
        workload = TPUWorkload(steps=1)
        per_core = {}
        for n in (16, 32, 128):
            _, per_core[n], _ = measure_pod(workload, n)
        # Monotone mild degradation, within ~10% from 16 to 128 cores —
        # the paper's 635 -> 607 shape.
        assert per_core[16] >= per_core[32] >= per_core[128]
        assert per_core[128] > 0.88 * per_core[16]

    def test_global_throughput_scales_superlinearly_vs_single_digit_pods(self):
        workload = TPUWorkload(steps=1)
        t16, _, _ = measure_pod(workload, 16)
        t128, _, _ = measure_pod(workload, 128)
        assert t128 > 7.0 * t16  # near-linear global scaling


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table2()

    def test_ordering(self, table):
        r = table.results
        assert r["TensorFlow"] > r["JAX + Flax"] > r["Swift for TensorFlow"]

    def test_all_within_2x(self, table):
        r = table.results
        assert max(r.values()) < 2.0 * min(r.values())

    def test_ratios_near_paper(self, table):
        r = table.results
        # Paper: TF/S4TF = 1.65, JAX/S4TF = 1.06.
        assert r["TensorFlow"] / r["Swift for TensorFlow"] == pytest.approx(
            1.65, rel=0.25
        )
        assert r["JAX + Flax"] / r["Swift for TensorFlow"] == pytest.approx(
            1.06, rel=0.25
        )


class TestTable3:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table3()

    def test_ordering(self, table):
        r = table.results
        torch = r["PyTorch"]
        tf = r["TensorFlow"]
        eager = r["Swift for TensorFlow (Eager Mode)"]
        lazy = r["Swift for TensorFlow (LazyTensor)"]
        # Paper's shape: PyTorch >= TF > Lazy >> Eager.
        assert torch > tf > lazy > eager

    def test_lazy_beats_eager_by_papers_factor(self, table):
        r = table.results
        ratio = (
            r["Swift for TensorFlow (LazyTensor)"]
            / r["Swift for TensorFlow (Eager Mode)"]
        )
        assert 1.8 < ratio < 5.0  # paper: 2.5

    def test_graph_frameworks_beat_lazy_moderately(self, table):
        r = table.results
        ratio = r["TensorFlow"] / r["Swift for TensorFlow (LazyTensor)"]
        assert 1.05 < ratio < 2.5  # paper: 1.31


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table4()

    def test_time_ordering(self, table):
        r = {k: v.training_time_s for k, v in table.results.items()}
        tf_mobile = r["TensorFlow Mobile"]
        tflite = r["TensorFlow Lite (standard operations)"]
        fused = r["TensorFlow Lite (manually fused custom operation)"]
        s4tf = r["Swift for TensorFlow"]
        assert tf_mobile > 10 * tflite
        assert tflite > s4tf > fused

    def test_s4tf_lowest_memory(self, table):
        r = {k: v.memory_bytes for k, v in table.results.items()}
        assert r["Swift for TensorFlow"] == min(r.values())


class TestFigure4:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_figure4()

    def test_trace_covers_lenet_structure(self, figure):
        s = figure.summary
        # Figure 6's LeNet: 2 convs, 2 pools, 3 dense (matmuls), relus.
        assert s["op:conv2d"] == 2
        assert s["op:avg_pool"] == 2
        assert s["op:matmul"] == 3
        assert s["op:relu"] == 4
        assert s["op:add"] == 5  # biases
        assert s["op:reshape"] == 1  # flatten
        # Sources: input + 10 parameter tensors.
        assert s["sources"] == 11

    def test_renderings(self, figure):
        assert "conv2d" in figure.text
        assert "digraph lenet_forward" in figure.dot
        assert figure.dot.count("->") >= figure.summary["operations"]


class TestFigure9:
    def test_functional_is_linear_mutable_is_flat(self):
        points = run_figure9(sizes=(512, 4096, 32768), repeats=100)
        f = [p.functional_seconds for p in points]
        m = [p.mutable_seconds for p in points]
        # Functional grows roughly with n (>= 10x over a 64x size increase).
        assert f[2] > 10 * f[0]
        # Mutable stays flat (within noise: < 5x over the same range).
        assert m[2] < 5 * m[0]
        # And the crossover is decisive at large n.
        assert f[2] / m[2] > 50
