"""Optimizers: in-place updates, convergence, tangent-tree state."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core import ZERO, differentiable_struct, value_and_gradient
from repro.optim import (
    SGD,
    Adam,
    BacktrackingLineSearch,
    LearningRateSchedule,
    RMSProp,
    functional_update,
    tangent_byte_size,
    tangent_norm_squared,
    tree_map,
    tree_map2,
)
from repro.tensor import Tensor, eager_device


@differentiable_struct
@dataclass
class Quad:
    x: float
    y: float


def quad_loss(p):
    return (p.x - 3.0) * (p.x - 3.0) + 10.0 * (p.y + 2.0) * (p.y + 2.0)


def _converges(optimizer, steps=400, tol=1e-2):
    p = Quad(0.0, 0.0)
    for _ in range(steps):
        _, g = value_and_gradient(quad_loss, p)
        optimizer.update(p, g)
    assert p.x == pytest.approx(3.0, abs=tol)
    assert p.y == pytest.approx(-2.0, abs=tol)
    return p


def test_sgd_converges():
    _converges(SGD(learning_rate=0.05))


def test_sgd_momentum_converges():
    _converges(SGD(learning_rate=0.01, momentum=0.9))


def test_adam_converges():
    _converges(Adam(learning_rate=0.1), steps=600)


def test_rmsprop_converges():
    _converges(RMSProp(learning_rate=0.02), steps=800)


def test_update_is_in_place():
    p = Quad(0.0, 0.0)
    before = id(p)
    _, g = value_and_gradient(quad_loss, p)
    SGD(0.1).update(p, g)
    assert id(p) == before
    assert p.x != 0.0


def test_functional_update_returns_new_model():
    p = Quad(0.0, 0.0)
    _, g = value_and_gradient(quad_loss, p)
    p2 = functional_update(p, g, 0.1)
    assert p2 is not p
    assert p.x == 0.0  # original untouched
    assert p2.x != 0.0


def test_optimizer_on_tensor_model():
    device = eager_device()

    @differentiable_struct
    @dataclass
    class Linear:
        w: Tensor

    target = np.array([[1.0], [2.0], [3.0]], np.float32)
    x = Tensor(np.eye(3, dtype=np.float32), device)
    t = Tensor(target, device)

    def loss(m):
        d = m.w - t
        return (d * d).sum()

    model = Linear(Tensor.zeros((3, 1), device))
    opt = Adam(learning_rate=0.2)
    for _ in range(200):
        _, g = value_and_gradient(loss, model)
        opt.update(model, g)
    np.testing.assert_allclose(model.w.numpy(), target, atol=1e-2)


def test_tree_map_and_map2():
    tv = Quad.TangentVector
    a = tv(x=1.0, y=2.0)
    doubled = tree_map(lambda v: v * 2, a)
    assert (doubled.x, doubled.y) == (2.0, 4.0)
    b = tv(x=10.0, y=ZERO)
    s = tree_map2(
        lambda u, v: u + v, a, b, a_zero=lambda u: u, b_zero=lambda v: v
    )
    assert (s.x, s.y) == (11.0, 2.0)
    assert tree_map(lambda v: v * 2, ZERO) is ZERO


def test_tree_map2_zero_handling():
    assert tree_map2(lambda a, b: a + b, ZERO, ZERO) is ZERO
    out = tree_map2(lambda a, b: a + b, ZERO, 5.0, b_zero=lambda v: v * 3)
    assert out == 15.0
    assert tree_map2(lambda a, b: a + b, ZERO, 5.0) is ZERO


def test_tangent_norms_and_sizes():
    tv = Quad.TangentVector
    t = tv(x=3.0, y=4.0)
    assert tangent_norm_squared(t) == pytest.approx(25.0)
    assert tangent_byte_size(t) == 8
    device = eager_device()
    assert tangent_byte_size(Tensor.zeros((10,), device)) == 40
    assert tangent_norm_squared(ZERO) == 0.0


def test_learning_rate_schedule():
    sched = LearningRateSchedule(0.1, decay_steps=10, decay_rate=0.5)
    assert sched(0) == 0.1
    assert sched(10) == pytest.approx(0.05)
    assert sched(25) == pytest.approx(0.025)
    flat = LearningRateSchedule(0.1)
    assert flat(1000) == 0.1


def test_line_search_converges_quadratic():
    search = BacktrackingLineSearch()
    model, history = BacktrackingLineSearch().minimize(
        quad_loss, Quad(0.0, 0.0), max_steps=200
    )
    assert model.x == pytest.approx(3.0, abs=1e-3)
    assert model.y == pytest.approx(-2.0, abs=1e-3)
    assert history[-1].loss_after <= history[0].loss_before
    assert search is not None


def test_line_search_respects_armijo():
    ls = BacktrackingLineSearch(initial_step=100.0)
    model, result = ls.step(quad_loss, Quad(0.0, 0.0))
    # A huge initial step must have been backtracked to a decreasing one.
    assert result.loss_after < result.loss_before
    assert result.step_size < 100.0


def test_line_search_stops_at_minimum():
    ls = BacktrackingLineSearch()
    model, history = ls.minimize(quad_loss, Quad(3.0, -2.0), max_steps=10)
    assert history[0].converged
    assert len(history) == 1
