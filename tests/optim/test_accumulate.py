"""Gradient accumulation (inout-formulated pullback surface)."""

import numpy as np
import pytest

from repro.core import ZERO, value_and_gradient
from repro.nn import MLP, softmax_cross_entropy
from repro.optim import SGD, GradientAccumulator, microbatched_step
from repro.optim.tree import tangent_norm_squared
from repro.tensor import Tensor, eager_device, one_hot


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


def _batch(device, n, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((n, 8)).astype(np.float32), device)
    y = one_hot(Tensor(rng.integers(0, 3, n).astype(np.float32), device), 3)
    return x, y


def test_accumulator_starts_symbolic_zero():
    acc = GradientAccumulator()
    assert acc.value is ZERO
    assert acc.mean() is ZERO
    acc.accumulate(2.0)
    acc.accumulate(4.0)
    assert acc.value == 6.0
    assert acc.mean() == pytest.approx(3.0)
    acc.reset()
    assert acc.value is ZERO and acc.count == 0


def test_microbatch_gradients_match_full_batch():
    """Mean of microbatch gradients == gradient of the full batch (same
    examples), up to batching of the mean inside the loss."""
    device = eager_device()
    model = MLP.create(8, [8], 3, device=device, seed=0)
    xs, ys = _batch(device, 8, seed=1)

    _, full_grad = value_and_gradient(_loss, model, xs, ys, wrt=0)

    acc = GradientAccumulator()
    for i in range(4):
        micro_x = xs[2 * i : 2 * i + 2]
        micro_y = Tensor(ys.numpy()[2 * i : 2 * i + 2], device)
        _, g = value_and_gradient(_loss, model, micro_x, micro_y, wrt=0)
        acc.accumulate(g)
    averaged = acc.mean()

    full = full_grad.head.weight.numpy()
    micro = averaged.head.weight.numpy()
    np.testing.assert_allclose(micro, full, rtol=1e-3, atol=1e-5)


def test_microbatched_step_trains():
    device = eager_device()
    model = MLP.create(8, [8], 3, device=device, seed=0)
    opt = SGD(learning_rate=0.2)
    microbatches = [_batch(device, 4, seed=s) for s in range(3)]
    losses = [microbatched_step(_loss, model, opt, microbatches) for _ in range(25)]
    assert losses[-1] < losses[0]


def test_accumulation_never_materializes_untouched_fields():
    device = eager_device()
    model = MLP.create(8, [8], 3, device=device, seed=0)
    acc = GradientAccumulator()

    def head_only_loss(m, x):
        return (m.head.weight * m.head.weight).sum() + (x * 0.0).sum()

    x = Tensor(np.ones((2, 8), np.float32), device)
    _, g = value_and_gradient(head_only_loss, model, x, wrt=0)
    acc.accumulate(g)
    assert acc.value.hidden is ZERO  # untouched subtree stays symbolic
    assert tangent_norm_squared(acc.value) > 0
