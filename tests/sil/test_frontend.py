"""Frontend lowering tests: lowered functions must match direct execution."""

import math

import pytest

from repro.errors import LoweringError
from repro.sil import call_function, lower_function, verify
from repro.sil.mathprims import exp, sin


def check(fn, *argsets):
    """Lower ``fn`` and compare interpretation against direct calls."""
    func = lower_function(fn)
    verify(func)
    for args in argsets:
        assert call_function(func, args) == pytest.approx(fn(*args))
    return func


def test_arithmetic():
    def f(x, y):
        return (x + y) * (x - y) / 2.0 + x**2

    check(f, (3.0, 4.0), (1.5, -2.0), (0.0, 0.0))


def test_unary_and_mod_floordiv():
    def f(x, y):
        return (-x + +y) % 5 + x // 2

    check(f, (7, 3), (10, 4))


def test_locals_and_reassignment():
    def f(x):
        a = x * 2.0
        b = a + 1.0
        a = b * b
        return a - x

    check(f, (2.0,), (-3.0,))

    def g(x):
        y = x
        y += 2.0
        y *= 3.0
        return y

    check(g, (1.0,), (5.0,))


def test_tuple_pack_unpack():
    def f(x, y):
        pair = (x + 1.0, y * 2.0)
        a, b = pair
        return a * b

    check(f, (3.0, 4.0))


def test_if_else():
    def f(x):
        if x > 0.0:
            y = x * 2.0
        else:
            y = -x
        return y + 1.0

    check(f, (3.0,), (-3.0,), (0.0,))


def test_if_without_else():
    def f(x):
        y = x
        if x > 0.0:
            y = y * 10.0
        return y

    check(f, (2.0,), (-2.0,))


def test_elif_chain():
    def f(x):
        if x > 10.0:
            r = 1.0
        elif x > 0.0:
            r = 2.0
        elif x > -10.0:
            r = 3.0
        else:
            r = 4.0
        return r

    check(f, (20.0,), (5.0,), (-5.0,), (-20.0,))


def test_early_return():
    def f(x):
        if x < 0.0:
            return -x
        return x * 3.0

    check(f, (4.0,), (-4.0,))


def test_both_branches_return():
    def f(x):
        if x > 0.0:
            return 1.0
        else:
            return -1.0

    check(f, (2.0,), (-2.0,))


def test_while_loop():
    def f(n):
        total = 0.0
        i = 0
        while i < n:
            total += float(i)
            i += 1
        return total

    check(f, (5,), (0,), (1,))


def test_while_with_break_continue():
    def f(n):
        total = 0
        i = 0
        while True:
            i += 1
            if i > n:
                break
            if i % 2 == 0:
                continue
            total += i
        return total

    check(f, (10,), (0,), (7,))


def test_for_range():
    def f(n):
        s = 0
        for i in range(n):
            s += i * i
        return s

    check(f, (6,), (0,), (1,))


def test_for_range_start_step():
    def f(a, b):
        s = 0
        for i in range(a, b, 2):
            s += i
        return s

    check(f, (1, 10), (0, 0))


def test_nested_for_loops():
    def f(n):
        s = 0
        for i in range(n):
            for j in range(i):
                s += i * j
        return s

    check(f, (5,), (1,))


def test_for_over_list_literal():
    def f(x):
        s = 0.0
        for w in [1.0, 2.0, 3.0]:
            s += w * x
        return s

    check(f, (2.0,))


def test_for_with_break():
    def f(n):
        s = 0
        for i in range(100):
            if i >= n:
                break
            s += i
        return s

    check(f, (5,), (0,))


def test_bool_ops_short_circuit():
    def f(x, y):
        if x > 0.0 and y > 0.0:
            return 1.0
        if x < 0.0 or y < 0.0:
            return 2.0
        return 3.0

    check(f, (1.0, 1.0), (1.0, -1.0), (-1.0, 1.0), (0.0, 0.0))


def test_conditional_expression():
    def f(x):
        return x if x > 0.0 else -x

    check(f, (3.0,), (-3.0,))


def test_math_module_calls():
    def f(x):
        return math.exp(x) + math.sin(x) * math.cos(x) + math.pi

    check(f, (0.5,), (0.0,))


def test_primitive_direct_call():
    def f(x):
        return exp(x) + sin(x)

    check(f, (0.3,))


def test_builtin_calls():
    def f(x):
        return abs(x) + float(len([1, 2, 3])) + min(x, 0.0) + max(x, 0.0)

    check(f, (2.5,), (-2.5,))


def test_call_other_python_function():
    def square(v):
        return v * v

    def f(x):
        return square(x) + square(x + 1.0)

    check(f, (3.0,))


def test_call_with_keyword_and_default():
    def scaled(v, scale=2.0, shift=0.0):
        return v * scale + shift

    def f(x):
        return scaled(x) + scaled(x, scale=3.0) + scaled(x, shift=1.0)

    check(f, (2.0,))


def test_recursion():
    def fact(n):
        if n <= 1:
            return 1
        return n * fact(n - 1)

    check(fact, (5,), (1,), (0,))


def test_subscript_load():
    def f(xs, i):
        return xs[i] + xs[0]

    func = lower_function(f)
    assert call_function(func, ([1.0, 2.0, 3.0], 2)) == 4.0


def test_closure_capture():
    scale = 4.0

    def f(x):
        return x * scale

    check(f, (2.0,))


def test_loop_carried_multiple_vars():
    def f(n):
        a, b = 0, 1
        for _ in range(n):
            a, b = b, a + b
        return a

    check(f, (10,), (0,), (1,))


def test_opaque_callable_indirect_apply():
    table = {"fn": lambda v: v * 7.0}
    fn = table["fn"]

    def f(x):
        return fn(x) + 1.0

    check(f, (2.0,))


def test_lowering_is_cached():
    def f(x):
        return x + 1.0

    first = lower_function(f)
    second = lower_function(f)
    assert first is second


def test_unsupported_statement_errors():
    def f(x):
        with open("/dev/null") as fh:  # noqa: SIM115
            pass
        return x

    with pytest.raises(LoweringError, match="unsupported statement"):
        lower_function(f)


def test_unsupported_expression_errors():
    def f(x):
        return [i for i in range(int(x))]

    with pytest.raises(LoweringError):
        lower_function(f)


def test_chained_comparison_errors():
    def f(x):
        return 1.0 if 0.0 < x < 1.0 else 0.0

    with pytest.raises(LoweringError, match="chained"):
        lower_function(f)


def test_use_of_maybe_unbound_name_errors():
    def f(x):
        if x > 0.0:
            y = 1.0
        return y  # noqa: F821 - intentionally maybe-unbound

    with pytest.raises(LoweringError, match="not defined"):
        lower_function(f)


def test_implicit_return_none():
    def f(x):
        x + 1.0  # noqa: B018 - expression statement, no return

    func = lower_function(f)
    assert call_function(func, (1.0,)) is None
