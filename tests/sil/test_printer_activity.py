"""The printer's activity-annotation mode: [varied]/[useful]/[active] comments."""

import math

from repro.core.activity import analyze_activity
from repro.sil import lower_function
from repro.sil.printer import activity_annotations, print_function


def _annotated(pyfunc, wrt=(0,)):
    func = lower_function(pyfunc)
    return func, print_function(func, activity=analyze_activity(func, wrt))


def test_active_instructions_labeled():
    def f(x):
        return x * x

    _func, text = _annotated(f)
    assert "// [active]" in text


def test_constant_chain_is_useful_but_never_varied():
    def f(x):
        k = 2.0 + 3.0  # feeds the result (useful) but never varies with x
        return x * k

    _func, text = _annotated(f)
    lines = [ln for ln in text.splitlines() if "apply" in ln and "add" in ln]
    assert lines
    assert all("[useful]" in ln for ln in lines)
    assert all("[active]" not in ln and "[varied]" not in ln for ln in lines)


def test_varied_but_not_useful_labeled_varied():
    def f(x):
        _waste = math.exp(x)  # varied, but dropped before the return
        return x * 2.0

    _func, text = _annotated(f)
    assert "// [varied]" in text
    assert "[active]" in text


def test_annotations_keyed_by_instruction_identity():
    def f(x):
        return x + 1.0

    func = lower_function(f)
    notes = activity_annotations(func, analyze_activity(func, (0,)))
    inst_ids = {id(inst) for inst in func.instructions()}
    assert notes and set(notes) <= inst_ids


def test_activity_merges_with_explicit_annotations():
    def f(x):
        return x * 3.0

    func = lower_function(f)
    activity = analyze_activity(func, (0,))
    from repro.sil import ir

    mul = next(i for i in func.instructions() if isinstance(i, ir.ApplyInst))
    text = print_function(func, {id(mul): "[custom note]"}, activity=activity)
    line = next(ln for ln in text.splitlines() if "custom note" in ln)
    assert "[active]" in line  # both annotations on the same line


def test_plain_printing_unchanged_without_activity():
    def f(x):
        return x * 3.0

    func = lower_function(f)
    assert "[active]" not in print_function(func)
