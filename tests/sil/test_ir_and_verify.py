"""IR structural behaviour, verifier diagnostics, printing."""

import pytest

from repro.errors import VerificationError
from repro.sil import ir
from repro.sil.printer import print_function
from repro.sil.verify import verify
from repro.sil.primitives import get_primitive


def _build_add_function():
    func = ir.Function("adder", ["x", "y"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    y = entry.add_arg(ir.FLOAT, "y")
    add = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x, y]))
    entry.append(ir.ReturnInst(add.result))
    return func


def test_builder_and_interp_roundtrip():
    from repro.sil import call_function

    func = _build_add_function()
    verify(func)
    assert call_function(func, (2.0, 3.0)) == 5.0


def test_print_function_contains_structure():
    text = print_function(_build_add_function())
    assert "sil @adder" in text
    assert "apply @add" in text
    assert "return" in text


def test_missing_terminator_rejected():
    func = ir.Function("broken", ["x"])
    entry = func.new_block("entry")
    entry.add_arg()
    with pytest.raises(VerificationError, match="missing terminator"):
        verify(func)


def test_branch_arity_checked():
    func = ir.Function("broken", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg()
    dest = func.new_block("dest")
    dest.add_arg()
    dest.add_arg()
    entry.append(ir.BrInst(dest, [x]))
    c = dest.append(ir.ConstInst(0.0))
    dest.append(ir.ReturnInst(c.result))
    with pytest.raises(VerificationError, match="passes 1 args"):
        verify(func)


def test_use_before_def_rejected():
    func = ir.Function("broken", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg()
    # Create an instruction whose operand is a value defined *later*.
    late = ir.ConstInst(1.0)
    early = ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x, late.result])
    entry.append(early)
    entry.append(late)
    entry.append(ir.ReturnInst(early.result))
    with pytest.raises(VerificationError, match="before\\s+definition|undefined"):
        verify(func)


def test_double_definition_rejected():
    func = ir.Function("broken", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg()
    c = ir.ConstInst(1.0)
    entry.append(c)
    entry.instructions.append(c)  # sneak in a duplicate definition
    entry.append(ir.ReturnInst(x))
    with pytest.raises(VerificationError, match="defined twice"):
        verify(func)


def test_entry_with_predecessor_rejected():
    func = ir.Function("broken", [])
    entry = func.new_block("entry")
    c = entry.append(ir.ConstInst(True))
    entry.append(ir.BrInst(entry, []))
    with pytest.raises(VerificationError, match="entry block"):
        verify(func)


def test_terminator_mid_block_rejected():
    func = ir.Function("broken", [])
    entry = func.new_block("entry")
    c = entry.append(ir.ConstInst(1.0))
    ret = ir.ReturnInst(c.result)
    ret.parent = entry
    entry.instructions.append(ret)
    entry.instructions.append(ir.ReturnInst(c.result))
    with pytest.raises(VerificationError, match="mid-block"):
        verify(func)


def test_block_append_after_terminator_raises():
    block = ir.Block("b")
    c = block.append(ir.ConstInst(1.0))
    block.append(ir.ReturnInst(c.result))
    with pytest.raises(ValueError, match="terminated"):
        block.append(ir.ConstInst(2.0))


def test_value_repr_mentions_hint():
    v = ir.Value(hint="loss")
    assert "loss" in repr(v)


def test_unreachable_block_reported_as_warning():
    func = _build_add_function()
    orphan = func.new_block("orphan")
    c = orphan.append(ir.ConstInst(0.0))
    orphan.append(ir.ReturnInst(c.result))
    warnings = verify(func)
    assert len(warnings) == 1
    assert warnings[0].severity == "warning"
    assert "orphan" in warnings[0].message
    assert "unreachable" in warnings[0].message


def test_verify_returns_empty_list_on_clean_function():
    assert verify(_build_add_function()) == []


def test_reachable_blocks_excludes_orphans():
    func = _build_add_function()
    orphan = func.new_block("orphan")
    c = orphan.append(ir.ConstInst(0.0))
    orphan.append(ir.ReturnInst(c.result))
    reachable = func.reachable_blocks()
    assert orphan not in reachable
    assert func.entry in reachable
