"""Typed SIL verification: one malformed function per diagnostic branch."""

import pytest

from repro.errors import VerificationError
from repro.sil import ir
from repro.sil.primitives import get_primitive
from repro.sil.typecheck import typecheck, verify_typed


def _entry(name="f", params=("x",)):
    func = ir.Function(name, list(params))
    entry = func.new_block("entry")
    args = [entry.add_arg(ir.FLOAT, p) for p in params]
    return func, entry, args


def _errors(func):
    return [d for d in typecheck(func) if d.is_error]


def test_well_formed_function_has_no_diagnostics():
    func, entry, (x,) = _entry()
    add = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x, x]))
    entry.append(ir.ReturnInst(add.result))
    assert typecheck(func) == []
    assert verify_typed(func) == []


def test_primitive_arity_mismatch_flagged():
    func, entry, (x,) = _entry()
    bad = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x]))
    entry.append(ir.ReturnInst(bad.result))
    (err,) = _errors(func)
    assert "apply @add expects 2" in err.message
    assert "got 1" in err.message


def test_function_callee_arity_mismatch_flagged():
    target, tentry, (a,) = _entry("target", ("a",))
    tentry.append(ir.ReturnInst(a))
    func, entry, (x,) = _entry()
    bad = entry.append(ir.ApplyInst(ir.FunctionRef(target), [x, x]))
    entry.append(ir.ReturnInst(bad.result))
    (err,) = _errors(func)
    assert "apply @target expects 1 argument(s), got 2" in err.message


def test_numeric_primitive_rejects_string_operand():
    func, entry, _ = _entry()
    s = entry.append(ir.ConstInst("not a number"))
    bad = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("exp")), [s.result]))
    entry.append(ir.ReturnInst(bad.result))
    (err,) = _errors(func)
    assert "non-numeric type" in err.message
    assert "@exp" in err.message


def test_tuple_extract_of_scalar_flagged():
    func, entry, (x,) = _entry()
    c = entry.append(ir.ConstInst(1.0))
    bad = entry.append(ir.TupleExtractInst(c.result, 0))
    entry.append(ir.ReturnInst(bad.result))
    (err,) = _errors(func)
    assert "tuple_extract of non-aggregate" in err.message


def test_tuple_extract_index_out_of_range_flagged():
    func, entry, (x,) = _entry()
    t = entry.append(ir.TupleInst([x, x]))
    bad = entry.append(ir.TupleExtractInst(t.result, 5))
    entry.append(ir.ReturnInst(bad.result))
    (err,) = _errors(func)
    assert "index 5 out of range for tuple of 2 element(s)" in err.message


def test_struct_extract_of_non_struct_flagged():
    func, entry, (x,) = _entry()
    c = entry.append(ir.ConstInst(2.5))
    bad = entry.append(ir.StructExtractInst(c.result, "weight"))
    entry.append(ir.ReturnInst(bad.result))
    (err,) = _errors(func)
    assert "struct_extract #weight of non-struct" in err.message


def test_cond_br_on_tuple_condition_flagged():
    func, entry, (x,) = _entry()
    t = entry.append(ir.TupleInst([x, x]))
    then_b = func.new_block("then")
    else_b = func.new_block("else")
    entry.append(ir.CondBrInst(t.result, then_b, [], else_b, []))
    then_b.append(ir.ReturnInst(x))
    else_b.append(ir.ReturnInst(x))
    (err,) = _errors(func)
    assert "cond_br condition" in err.message
    assert "non-boolean" in err.message


def test_branch_edge_type_mismatch_flagged():
    func, entry, (x,) = _entry()
    s = entry.append(ir.ConstInst("hello"))
    dest = func.new_block("dest")
    y = dest.add_arg(ir.FLOAT, "y")
    entry.append(ir.BrInst(dest, [s.result]))
    dest.append(ir.ReturnInst(y))
    (err,) = _errors(func)
    assert "branch passes" in err.message
    assert "dest" in err.message


def test_indirect_apply_of_non_callable_constant_flagged():
    func, entry, (x,) = _entry()
    c = entry.append(ir.ConstInst(3.5))
    bad = entry.append(ir.ApplyInst(c.result, [x]))
    entry.append(ir.ReturnInst(bad.result))
    (err,) = _errors(func)
    assert "apply of non-callable constant 3.5" in err.message


def test_verify_typed_batches_all_errors():
    func, entry, (x,) = _entry()
    s = entry.append(ir.ConstInst("oops"))
    e1 = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("exp")), [s.result]))
    c = entry.append(ir.ConstInst(1.0))
    e2 = entry.append(ir.TupleExtractInst(c.result, 0))
    add = entry.append(
        ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [e1.result, e2.result])
    )
    entry.append(ir.ReturnInst(add.result))
    with pytest.raises(VerificationError) as exc_info:
        verify_typed(func)
    message = str(exc_info.value)
    assert "2 type error(s)" in message
    assert "non-numeric type" in message
    assert "non-aggregate" in message


def test_verify_typed_runs_structural_checks_first():
    func = ir.Function("broken", ["x"])
    entry = func.new_block("entry")
    entry.add_arg()
    with pytest.raises(VerificationError, match="missing terminator"):
        verify_typed(func)
