"""Optimization passes must preserve interpreter semantics."""

import math

import pytest

from repro.sil import call_function, lower_function, verify
from repro.sil.passes import (
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
    inline_calls,
    run_default_pipeline,
)


def _copy_via_lowering(fn):
    """Fresh lowering (bypass the cache) so passes can mutate freely."""
    import types

    clone = types.FunctionType(
        fn.__code__, fn.__globals__, fn.__name__, fn.__defaults__, fn.__closure__
    )
    return lower_function(clone)


def _size(func):
    return sum(len(b.instructions) for b in func.blocks)


def test_dce_removes_unused_pure_code():
    def f(x):
        unused = x * 123.0 + 7.0
        y = x + 1.0
        also_unused = unused * unused
        return y

    func = _copy_via_lowering(f)
    before = _size(func)
    assert dead_code_elimination(func)
    verify(func)
    assert _size(func) < before
    assert call_function(func, (3.0,)) == 4.0


def test_dce_keeps_impure_print(capsys):
    def f(x):
        print("side effect")
        return x

    func = _copy_via_lowering(f)
    dead_code_elimination(func)
    assert call_function(func, (1.0,)) == 1.0
    assert "side effect" in capsys.readouterr().out


def test_constant_folding_arith():
    def f(x):
        return x + (2.0 * 3.0 + 1.0)

    func = _copy_via_lowering(f)
    assert constant_fold(func)
    dead_code_elimination(func)
    verify(func)
    assert call_function(func, (1.0,)) == 8.0
    # After folding, only one apply (the add with x) should remain.
    from repro.sil.ir import ApplyInst

    applies = [i for i in func.instructions() if isinstance(i, ApplyInst)]
    assert len(applies) == 1


def test_constant_branch_folding():
    flag = True

    def f(x):
        if flag:
            return x + 1.0
        return x - 1.0

    func = _copy_via_lowering(f)
    constant_fold(func)
    dead_code_elimination(func)
    verify(func)
    assert len(func.blocks) < 4
    assert call_function(func, (1.0,)) == 2.0


def test_cse_deduplicates():
    def f(x, y):
        a = x * y + 1.0
        b = x * y + 1.0
        return a + b

    func = _copy_via_lowering(f)
    before = _size(func)
    assert common_subexpression_elimination(func)
    dead_code_elimination(func)
    verify(func)
    assert _size(func) < before
    assert call_function(func, (2.0, 3.0)) == 14.0


def test_cse_respects_control_flow():
    def f(x):
        if x > 0.0:
            a = x * 2.0
        else:
            a = x * 2.0
        return a + x * 2.0

    func = _copy_via_lowering(f)
    common_subexpression_elimination(func)
    verify(func)
    assert call_function(func, (3.0,)) == 12.0
    assert call_function(func, (-3.0,)) == -12.0


def test_inline_simple_call():
    def helper(v):
        return v * v + 1.0

    def f(x):
        return helper(x) + helper(x + 1.0)

    func = _copy_via_lowering(f)
    assert inline_calls(func)
    while inline_calls(func):
        pass
    verify(func)
    from repro.sil.ir import ApplyInst, Function

    fn_calls = [
        i
        for i in func.instructions()
        if isinstance(i, ApplyInst)
        and not i.is_indirect
        and isinstance(i.callee.target, Function)
    ]
    assert not fn_calls
    assert call_function(func, (2.0,)) == pytest.approx(f(2.0))


def test_inline_call_with_control_flow():
    def clamp(v):
        if v > 1.0:
            return 1.0
        if v < -1.0:
            return -1.0
        return v

    def f(x):
        return clamp(x * 2.0) + clamp(x)

    func = _copy_via_lowering(f)
    while inline_calls(func):
        pass
    verify(func)
    for x in (0.3, 2.0, -2.0, 0.0):
        assert call_function(func, (x,)) == pytest.approx(f(x))


def test_inline_skips_recursion():
    def fact(n):
        if n <= 1:
            return 1
        return n * fact(n - 1)

    func = _copy_via_lowering(fact)
    inline_calls(func)  # must not hang or break semantics
    verify(func)
    assert call_function(func, (6,)) == math.factorial(6)


def test_default_pipeline_preserves_semantics():
    def helper(v, w):
        return v * w + v

    def f(x, n):
        total = 0.0
        for i in range(n):
            total += helper(x, float(i)) + (2.0 + 3.0)
        if total > 100.0:
            total = total / 2.0
        return total

    func = _copy_via_lowering(f)
    run_default_pipeline(func)
    for args in [(1.5, 5), (10.0, 9), (0.0, 0)]:
        assert call_function(func, args) == pytest.approx(f(*args))


def test_pipeline_shrinks_code():
    def f(x):
        a = 1.0 + 2.0
        b = 1.0 + 2.0
        c = x * a + x * b
        unused = c * 99.0
        return c

    func = _copy_via_lowering(f)
    before = _size(func)
    run_default_pipeline(func)
    assert _size(func) < before
    assert call_function(func, (2.0,)) == 12.0
