"""Property-based SIL tests: randomly generated Python programs are
lowered, optimized, and differentiated; results must match direct
execution and finite differences."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gradient
from repro.sil import call_function, lower_function
from repro.sil.passes import run_default_pipeline

UNARY = ["math.tanh({})", "math.sin({})", "(-{})", "abs({})"]
BINARY = [
    "({} + {})",
    "({} - {})",
    "({} * {})",
    "({} * 0.5 + {})",
]


@st.composite
def random_expression(draw, depth=0):
    """A random arithmetic expression string over variable ``x``."""
    if depth >= 3 or draw(st.booleans()):
        return draw(
            st.one_of(
                st.just("x"),
                st.floats(min_value=-2, max_value=2, allow_nan=False).map(
                    lambda v: f"{v!r}"
                ),
            )
        )
    if draw(st.booleans()):
        template = draw(st.sampled_from(UNARY))
        return template.format(draw(random_expression(depth + 1)))
    template = draw(st.sampled_from(BINARY))
    return template.format(
        draw(random_expression(depth + 1)), draw(random_expression(depth + 1))
    )


@st.composite
def random_program(draw):
    """A random straight-line + control-flow function body over ``x``."""
    lines = ["def generated(x):"]
    n_vars = draw(st.integers(1, 4))
    names = []
    for i in range(n_vars):
        expr = draw(random_expression())
        for name in names:
            if draw(st.booleans()):
                expr = f"({expr} + {name} * 0.25)"
                break
        name = f"v{i}"
        names.append(name)
        lines.append(f"    {name} = {expr}")
    shape = draw(st.sampled_from(["plain", "branch", "loop"]))
    last = names[-1]
    if shape == "branch":
        lines.append(f"    if {last} > 0.0:")
        lines.append(f"        {last} = {last} * 2.0")
        lines.append("    else:")
        lines.append(f"        {last} = {last} - 1.0")
    elif shape == "loop":
        lines.append("    for _ in range(3):")
        lines.append(f"        {last} = {last} * 0.5 + math.tanh({last})")
    lines.append(f"    return {last}")
    return "\n".join(lines)


_COUNTER = [0]


def compile_source(source):
    """Exec generated source with a linecache entry so the frontend's
    ``inspect.getsource`` can retrieve it."""
    import linecache

    _COUNTER[0] += 1
    filename = f"<generated-{_COUNTER[0]}>"
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    namespace = {"math": math}
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    return namespace["generated"]


@given(random_program(), st.floats(min_value=-3, max_value=3, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_lowered_matches_python(source, x):
    fn = compile_source(source)
    func = lower_function(fn)
    assert call_function(func, (x,)) == pytest.approx(fn(x), rel=1e-9, abs=1e-12)


@given(random_program(), st.floats(min_value=-3, max_value=3, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_optimized_matches_python(source, x):
    fn = compile_source(source)
    func = lower_function(fn)
    run_default_pipeline(func)
    assert call_function(func, (x,)) == pytest.approx(fn(x), rel=1e-9, abs=1e-12)


@given(random_program(), st.floats(min_value=-3, max_value=3, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_gradient_matches_finite_differences(source, x):
    fn = compile_source(source)
    eps = 1e-5
    fd = (fn(x + eps) - fn(x - eps)) / (2 * eps)
    # Skip kinks/branch boundaries: the one-sided derivatives disagree
    # there, and AD's (valid) subgradient choice need not match central FD.
    fd_plus = (fn(x + eps) - fn(x)) / eps
    fd_minus = (fn(x) - fn(x - eps)) / eps
    if abs(fd_plus - fd_minus) > 1e-4 * max(1.0, abs(fd)):
        return
    g = gradient(fn, x)
    assert g == pytest.approx(fd, rel=1e-3, abs=1e-5)
