"""HLO passes: semantic preservation, simplification, fusion, caching."""

import numpy as np
import pytest

from repro.hlo import (
    HloBuilder,
    Shape,
    algebraic_simplify,
    cache_size,
    clear_cache,
    compile_module,
    constant_fold,
    cse,
    fingerprint,
    fuse_elementwise,
    optimize,
)
from repro.hlo.compiler import STATS, Executable


def _chain_module():
    """x -> several elementwise ops -> reduce."""
    b = HloBuilder("chain")
    x = b.parameter(Shape((64,)))
    t = b.unary("tanh", x)
    e = b.unary("exponential", t)
    two = b.broadcast(b.constant(2.0), (64,))
    m = b.binary("multiply", e, two)
    s = b.binary("add", m, x)
    return b.build(b.reduce(s, "sum", None)), b


def _run(module, args, **kw):
    return compile_module(module, use_cache=False, **kw).run(args)


def test_algebraic_simplify_identities():
    b = HloBuilder("ident")
    x = b.parameter(Shape((8,)))
    zero = b.broadcast(b.constant(0.0), (8,))
    one = b.broadcast(b.constant(1.0), (8,))
    expr = b.binary("multiply", b.binary("add", x, zero), one)
    nn = b.unary("negate", b.unary("negate", expr))
    module = b.build(nn)
    before = module.entry.instruction_count()
    algebraic_simplify(module)
    after = module.entry.instruction_count()
    assert after < before
    # Root collapses to the parameter itself.
    assert module.entry.root.opcode == "parameter"


def test_constant_folding():
    b = HloBuilder("fold")
    x = b.parameter(Shape((4,)))
    c = b.binary("add", b.constant(2.0), b.constant(3.0))
    cb = b.broadcast(c, (4,))
    module = b.build(b.binary("multiply", x, cb))
    constant_fold(module)
    # 2+3 folded away.
    opcodes = [i.opcode for i in module.entry.post_order()]
    assert opcodes.count("add") == 0
    exe = Executable(module)
    np.testing.assert_allclose(
        exe.run([np.ones(4, np.float32)]), [5, 5, 5, 5]
    )


def test_cse_deduplicates():
    b = HloBuilder("cse")
    x = b.parameter(Shape((8,)))
    t1 = b.unary("tanh", x)
    t2 = b.unary("tanh", x)
    module = b.build(b.binary("add", t1, t2))
    before = module.entry.instruction_count()
    assert cse(module)
    assert module.entry.instruction_count() < before
    exe = Executable(module)
    xv = np.linspace(-1, 1, 8).astype(np.float32)
    np.testing.assert_allclose(exe.run([xv]), 2 * np.tanh(xv), rtol=1e-5)


def test_fusion_collapses_elementwise_region():
    module, _ = _chain_module()
    unfused = Executable(module)
    xv = np.linspace(-1, 1, 64).astype(np.float32)
    expected = unfused.run([xv])

    module2, _ = _chain_module()
    fuse_elementwise(module2)
    fused = Executable(module2)
    opcodes = [i.opcode for i in module2.entry.post_order()]
    assert "fusion" in opcodes
    # All elementwise ops disappeared into the fusion.
    assert not any(
        op in ("tanh", "exponential", "multiply", "add") for op in opcodes
    )
    np.testing.assert_allclose(fused.run([xv]), expected, rtol=1e-6)


def test_fusion_reduces_kernel_count():
    module, _ = _chain_module()
    k_unfused = Executable(module).kernel_count
    module2, _ = _chain_module()
    optimize(module2, fuse=True)
    k_fused = Executable(module2).kernel_count
    assert k_fused < k_unfused


def test_fusion_does_not_duplicate_shared_work():
    # `t` feeds both an elementwise consumer and a reduce: it must stay
    # materialized (not be re-computed inside the fused region).
    b = HloBuilder("shared")
    x = b.parameter(Shape((16,)))
    t = b.unary("tanh", x)
    e = b.unary("exponential", t)
    r1 = b.reduce(e, "sum", None)
    r2 = b.reduce(t, "sum", None)
    module = b.build(b.binary("add", r1, r2))
    xv = np.linspace(0, 1, 16).astype(np.float32)
    expected = Executable(module).run([xv])
    fuse_elementwise(module)
    got = Executable(module).run([xv])
    assert float(got) == pytest.approx(float(expected), rel=1e-6)


def test_optimize_preserves_semantics_randomized():
    rng = np.random.default_rng(3)
    module, _ = _chain_module()
    plain = Executable(module)
    module2, _ = _chain_module()
    optimize(module2)
    opt = Executable(module2)
    for _ in range(5):
        xv = rng.standard_normal(64).astype(np.float32)
        np.testing.assert_allclose(
            plain.run([xv]), opt.run([xv]), rtol=1e-5, atol=1e-6
        )


def test_compile_cache_hits_on_identical_modules():
    clear_cache()
    STATS.reset()
    m1, _ = _chain_module()
    m2, _ = _chain_module()
    exe1 = compile_module(m1)
    exe2 = compile_module(m2)
    assert exe2 is exe1  # same fingerprint -> same executable
    assert STATS.compiles == 1
    assert STATS.cache_hits == 1
    assert cache_size() == 1


def test_cache_misses_on_shape_change():
    clear_cache()
    STATS.reset()

    def module_for(n):
        b = HloBuilder("shapes")
        x = b.parameter(Shape((n,)))
        return b.build(b.unary("tanh", x))

    compile_module(module_for(8))
    compile_module(module_for(16))  # shape change -> recompile (Section 3.4)
    assert STATS.compiles == 2
    assert STATS.cache_hits == 0


def test_fingerprint_canonicalizes_ids():
    m1, _ = _chain_module()
    m2, _ = _chain_module()
    assert fingerprint(m1) == fingerprint(m2)


def test_device_accounting_fused_vs_unfused():
    from repro.runtime import GTX_1080, SimDevice

    xv = np.linspace(-1, 1, 1 << 20).astype(np.float32)

    module, _ = _chain_module_big()
    dev_unfused = SimDevice(GTX_1080)
    Executable(module).run([xv], device=dev_unfused)

    module2, _ = _chain_module_big()
    optimize(module2, fuse=True)
    dev_fused = SimDevice(GTX_1080)
    Executable(module2).run([xv], device=dev_fused)

    assert dev_fused.stats.kernels_launched < dev_unfused.stats.kernels_launched
    assert dev_fused.busy_until < dev_unfused.busy_until


def _chain_module_big():
    b = HloBuilder("chain_big")
    n = 1 << 20
    x = b.parameter(Shape((n,)))
    t = b.unary("tanh", x)
    e = b.unary("exponential", t)
    two = b.broadcast(b.constant(2.0), (n,))
    m = b.binary("multiply", e, two)
    s = b.binary("add", m, x)
    return b.build(b.reduce(s, "sum", None)), b
