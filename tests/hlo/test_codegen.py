"""The certified codegen backend: deterministic emission, bit-identical
execution, identical simulated cost replay, fallback on rejection, and the
single-flight install under concurrent compiles."""

import threading

import numpy as np
import pytest

from repro.hlo import (
    HloBuilder,
    Shape,
    clear_cache,
    compile_module,
    emit_module,
    generate_certified,
    optimize,
)
from repro.hlo.codegen import (
    STATS,
    CodegenExecutable,
    clear_source_cache,
    compile_step,
    source_cache_size,
)
from repro.hlo.compiler import Executable
from repro.errors import HloError
from repro.runtime.costmodel import DESKTOP_CPU
from repro.runtime.device import SimDevice


def setup_function(_):
    clear_cache()
    clear_source_cache()
    STATS.reset()


def _chain_module(fuse: bool = False):
    """(x @ w).relu() @ w2 — reused pool buffers when planned."""
    b = HloBuilder("chain")
    x = b.parameter(Shape((4, 8)))
    w = b.parameter(Shape((8, 8)))
    w2 = b.parameter(Shape((8, 8)))
    h = b.unary("relu", b.dot(x, w))
    module = b.build(b.dot(h, w2))
    return optimize(module, fuse=True) if fuse else module


def _chain_args(seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal((4, 8)).astype(np.float32),
        rng.standard_normal((8, 8)).astype(np.float32),
        rng.standard_normal((8, 8)).astype(np.float32),
    ]


def _tuple_module():
    b = HloBuilder("pair")
    x = b.parameter(Shape((4, 4)))
    u = b.binary("multiply", x, x)
    v = b.unary("tanh", u)
    return b.build(b.tuple([u, v]))


# -- emission ----------------------------------------------------------------


def test_emission_is_deterministic():
    first = emit_module(_chain_module(), key="k")
    second = emit_module(_chain_module(), key="k")
    assert first.source == second.source
    assert first.launches == second.launches
    assert first.filename == "<codegen:k>"


def test_emitted_source_is_a_flat_step_function():
    generated = emit_module(_chain_module())
    assert generated.source.startswith("def step(p0, p1, p2):")
    assert "for " not in generated.source  # straight-line, no loops
    assert generated.n_parameters == 3


# -- execution ---------------------------------------------------------------


@pytest.mark.parametrize("fuse", [False, True], ids=["unfused", "fused"])
def test_codegen_bit_identical_to_interpreter(fuse):
    module = _chain_module(fuse)
    interpreted = Executable(module)
    generated = emit_module(module)
    fn = compile_step(generated)
    args = _chain_args()
    want = interpreted.run([a.copy() for a in args])
    got = fn(*[a.copy() for a in args])
    assert got.tobytes() == want.tobytes()
    assert got.dtype == want.dtype


def test_tuple_root_returns_tuple():
    module = _tuple_module()
    args = [np.linspace(-1, 1, 16, dtype=np.float32).reshape(4, 4)]
    want = Executable(module).run([args[0].copy()])
    got = compile_step(emit_module(module))(args[0].copy())
    assert isinstance(got, tuple) and len(got) == 2
    for g, w in zip(got, want):
        assert g.tobytes() == w.tobytes()


def test_narrowed_module_bit_identical():
    from repro.analysis.precision.casts import apply_plan, naive_assignment

    module = _chain_module(fuse=False)
    narrowed = optimize(
        apply_plan(module, naive_assignment(module, "f16")), fuse=True
    )
    args = [a.astype(np.float32) for a in _chain_args(7)]
    want = Executable(narrowed).run([a.copy() for a in args])
    executable = generate_certified(narrowed, Executable(narrowed))
    assert isinstance(executable, CodegenExecutable)
    got = executable.run([a.copy() for a in args])
    assert got.dtype == want.dtype
    assert got.tobytes() == want.tobytes()


def test_cost_replay_matches_interpreter_exactly():
    module = _chain_module(fuse=True)
    args = _chain_args(3)
    dev_interp, dev_gen = SimDevice(DESKTOP_CPU), SimDevice(DESKTOP_CPU)
    Executable(module).run([a.copy() for a in args], dev_interp, host_time=0.5)
    executable = generate_certified(module, Executable(module))
    assert isinstance(executable, CodegenExecutable)
    executable.run([a.copy() for a in args], dev_gen, host_time=0.5)
    assert dev_gen.busy_until == dev_interp.busy_until


def test_arg_count_mismatch_raises():
    executable = generate_certified(_chain_module(), Executable(_chain_module()))
    with pytest.raises(HloError, match="expects 3 args"):
        executable.run([np.zeros((4, 8), np.float32)])


# -- certification gate ------------------------------------------------------


def test_rejected_translation_falls_back_to_interpreter(monkeypatch):
    from repro.analysis.equivalence import validator
    from repro.analysis.equivalence.validator import ValidationResult

    monkeypatch.setattr(
        validator,
        "validate_translation",
        lambda *a, **k: ValidationResult(certified=False),
    )
    module = _chain_module()
    interpreted = Executable(module)
    executable = generate_certified(module, interpreted)
    assert executable is interpreted  # uncertified code is never installed
    assert (STATS.emitted, STATS.certified, STATS.rejected) == (1, 0, 1)
    assert STATS.installs == 0


def test_source_cache_one_proof_serves_recompiles():
    module = _chain_module()
    generate_certified(module, Executable(module), key="same")
    generate_certified(module, Executable(module), key="same")
    assert source_cache_size() == 1
    assert STATS.emitted == 1  # validated once
    assert STATS.installs == 2  # but installed per compile
    assert STATS.source_cache_hits >= 1


# -- cache wiring ------------------------------------------------------------


def test_compile_module_codegen_keyspace_is_separate():
    interp = compile_module(_chain_module(), codegen=False)
    gen = compile_module(_chain_module(), codegen=True)
    assert isinstance(interp, Executable)
    assert isinstance(gen, CodegenExecutable)
    # Warm lookups keep serving the matching executable for each mode.
    assert compile_module(_chain_module(), codegen=False) is interp
    assert compile_module(_chain_module(), codegen=True) is gen


def test_concurrent_codegen_installs_single_flight():
    n_threads = 8
    results = [None] * n_threads
    barrier = threading.Barrier(n_threads)

    def worker(i):
        barrier.wait()
        results[i] = compile_module(_chain_module(), codegen=True)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(isinstance(r, CodegenExecutable) for r in results)
    # Single-flight: every racer got the one cached install, and the
    # emitted source was validated exactly once.
    assert len({id(r) for r in results}) == 1
    assert STATS.emitted == 1
    assert STATS.certified == 1
    args = _chain_args(11)
    want = Executable(_chain_module()).run([a.copy() for a in args])
    assert results[0].run([a.copy() for a in args]).tobytes() == want.tobytes()
