"""The executable cache: fingerprint keying, the ``use_cache=False``
bypass, and cache-key introspection."""

import numpy as np

from repro.hlo import (
    HloBuilder,
    Shape,
    cache_keys,
    cache_size,
    clear_cache,
    compile_module,
)
from repro.hlo.compiler import STATS, fingerprint


def setup_function(_):
    clear_cache()
    STATS.reset()


def _module(scale: float = 2.0):
    b = HloBuilder("cache_probe")
    x = b.parameter(Shape((4,)))
    c = b.broadcast(b.constant(scale), (4,))
    return b.build(b.binary("multiply", c, x))


def test_cache_hit_on_identical_module():
    compile_module(_module())
    assert (STATS.compiles, STATS.cache_hits) == (1, 0)
    compile_module(_module())
    assert (STATS.compiles, STATS.cache_hits) == (1, 1)
    assert cache_size() == 1


def test_use_cache_false_always_recompiles_and_never_populates():
    exe1 = compile_module(_module(), use_cache=False)
    exe2 = compile_module(_module(), use_cache=False)
    assert (STATS.compiles, STATS.cache_hits) == (2, 0)
    assert cache_size() == 0  # the bypass neither reads nor writes
    np.testing.assert_allclose(
        exe1.run([np.ones(4, np.float32)]), exe2.run([np.ones(4, np.float32)])
    )


def test_use_cache_false_does_not_consume_existing_entries():
    compile_module(_module())  # populates the cache
    compile_module(_module(), use_cache=False)
    # Bypass compiled again rather than hitting the existing entry.
    assert (STATS.compiles, STATS.cache_hits) == (2, 0)
    assert cache_size() == 1


def test_cache_keys_are_the_module_fingerprints():
    module_a = _module(2.0)
    module_b = _module(3.0)
    expected = {fingerprint(module_a), fingerprint(module_b)}
    compile_module(module_a)
    compile_module(module_b)
    assert set(cache_keys()) == expected
    assert len(cache_keys()) == cache_size() == 2
    clear_cache()
    assert cache_keys() == ()


def test_fingerprint_is_alpha_renamed_and_value_sensitive():
    assert fingerprint(_module(2.0)) == fingerprint(_module(2.0))
    # Different embedded literal ⇒ different key (the retrace-storm root
    # cause the static analyzer detects upstream).
    assert fingerprint(_module(2.0)) != fingerprint(_module(3.0))
