"""HLO module verification: one hand-built broken module per check."""

import numpy as np
import pytest

from repro.errors import HloError
from repro.hlo.ir import HloComputation, HloInstruction, HloModule, Shape
from repro.hlo.verify import verify_computation, verify_module


def _param(number, dims=(2,)):
    return HloInstruction("parameter", [], Shape(dims), parameter_number=number)


def _well_formed():
    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    p1 = comp.add(_param(1))
    add = comp.add(HloInstruction("add", [p0, p1], Shape((2,))))
    comp.set_root(add)
    return HloModule("m", comp)


def test_well_formed_module_accepted():
    verify_module(_well_formed())


def test_computation_without_root_flagged():
    comp = HloComputation("entry")
    comp.add(_param(0))
    problems = verify_computation(comp)
    assert problems == ["entry: computation has no root"]


def test_foreign_root_flagged():
    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    orphan = HloInstruction("negate", [p0], Shape((2,)))  # never comp.add()ed
    comp.set_root(orphan)
    problems = verify_computation(comp)
    assert any("is not a member instruction" in p for p in problems)


def test_cycle_detected():
    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    a = comp.add(HloInstruction("negate", [p0], Shape((2,))))
    b = comp.add(HloInstruction("negate", [a], Shape((2,))))
    a.operands[0] = b  # a -> b -> a
    comp.set_root(b)
    problems = verify_computation(comp)
    assert any("has a cycle" in p for p in problems)


def test_foreign_operand_flagged():
    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    stray = _param(1)  # defined in no computation
    add = comp.add(HloInstruction("add", [p0, stray], Shape((2,))))
    comp.set_root(add)
    problems = verify_computation(comp)
    assert any("def-before-use violation" in p for p in problems)


def test_parameter_without_number_flagged():
    comp = HloComputation("entry")
    p = comp.add(HloInstruction("parameter", [], Shape((2,))))
    comp.set_root(p)
    problems = verify_computation(comp)
    assert any("parameter without a parameter_number" in p for p in problems)


def test_non_dense_parameter_numbers_flagged():
    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    p2 = comp.add(_param(2))
    add = comp.add(HloInstruction("add", [p0, p2], Shape((2,))))
    comp.set_root(add)
    problems = verify_computation(comp)
    assert any("not dense" in p for p in problems)


def test_recorded_shape_mismatch_flagged():
    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    p1 = comp.add(_param(1))
    add = comp.add(HloInstruction("add", [p0, p1], Shape((3,))))  # wrong
    comp.set_root(add)
    problems = verify_computation(comp)
    assert any("does not match inferred shape" in p for p in problems)


def test_constant_without_literal_flagged():
    comp = HloComputation("entry")
    c = comp.add(HloInstruction("constant", [], Shape(())))
    comp.set_root(c)
    problems = verify_computation(comp)
    assert any("constant without a literal" in p for p in problems)


def test_error_message_carries_instruction_location():
    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    p1 = comp.add(_param(1))
    add = comp.add(HloInstruction("add", [p0, p1], Shape((3,))))
    comp.set_root(add)
    with pytest.raises(HloError) as exc_info:
        verify_module(HloModule("m", comp))
    assert f"m/entry:%{add.name}" in str(exc_info.value)
    assert "1 verification problem(s)" in str(exc_info.value)


# ---------------------------------------------------------------------------
# Fusion regions.
# ---------------------------------------------------------------------------


def _fusion_module(inner, operands, fusion_shape):
    comp = HloComputation("entry")
    for op in operands:
        comp.add(op)
    fusion = comp.add(
        HloInstruction("fusion", operands, fusion_shape, fused_computation=inner)
    )
    comp.set_root(fusion)
    return HloModule("m", comp)


def _simple_region(dims=(2,)):
    inner = HloComputation("fused")
    p = inner.add(_param(0, dims))
    neg = inner.add(HloInstruction("negate", [p], Shape(dims)))
    inner.set_root(neg)
    return inner


def test_well_formed_fusion_accepted():
    module = _fusion_module(_simple_region(), [_param(0)], Shape((2,)))
    verify_module(module)


def test_fusion_without_region_flagged():
    module = _fusion_module(None, [_param(0)], Shape((2,)))
    with pytest.raises(HloError, match="without a fused computation"):
        verify_module(module)


def test_fusion_parameter_count_mismatch_flagged():
    inner = _simple_region()
    module = _fusion_module(inner, [_param(0), _param(1)], Shape((2,)))
    with pytest.raises(HloError, match=r"1 parameter\(s\) for 2 operand\(s\)"):
        verify_module(module)


def test_fusion_parameter_shape_mismatch_flagged():
    inner = _simple_region(dims=(4,))
    module = _fusion_module(inner, [_param(0, (2,))], Shape((4,)))
    with pytest.raises(HloError, match="shape f32\\[4\\] != operand"):
        verify_module(module)


def test_fusion_root_shape_mismatch_flagged():
    inner = _simple_region(dims=(2,))
    module = _fusion_module(inner, [_param(0, (2,))], Shape((3,)))
    with pytest.raises(HloError, match="!= region root shape"):
        verify_module(module)


def test_non_fusable_opcode_in_region_flagged():
    inner = HloComputation("fused")
    p = inner.add(_param(0, (2, 2)))
    dot = inner.add(HloInstruction("dot", [p, p], Shape((2, 2))))
    inner.set_root(dot)
    module = _fusion_module(inner, [_param(0, (2, 2))], Shape((2, 2)))
    with pytest.raises(HloError, match="non-fusable opcode 'dot'"):
        verify_module(module)


def test_optimized_pipeline_output_stays_verified():
    from repro.hlo.passes import optimize

    comp = HloComputation("entry")
    p0 = comp.add(_param(0))
    c = comp.add(
        HloInstruction(
            "constant", [], Shape(()), literal=np.asarray(2.0, np.float32)
        )
    )
    b = comp.add(HloInstruction("broadcast", [c], Shape((2,)), attrs={"dims": (2,)}))
    mul = comp.add(HloInstruction("multiply", [p0, b], Shape((2,))))
    neg = comp.add(HloInstruction("negate", [mul], Shape((2,))))
    comp.set_root(neg)
    module = HloModule("m", comp)
    optimize(module, fuse=True, verify_each=True)
    verify_module(module)
