"""HLO construction, shape inference, execution, and text round-trip."""

import numpy as np
import pytest

from repro.errors import HloError, ShapeError
from repro.hlo import (
    HloBuilder,
    Shape,
    compile_module,
    parse_module,
    print_module,
)


def test_build_and_execute_simple():
    b = HloBuilder("axpy")
    x = b.parameter(Shape((4,)))
    y = b.parameter(Shape((4,)))
    a = b.constant(2.0)
    ab = b.broadcast(a, (4,))
    module = b.build(b.binary("add", b.binary("multiply", ab, x), y))
    exe = compile_module(module, use_cache=False)
    out = exe.run(
        [np.ones(4, np.float32), np.arange(4, dtype=np.float32)]
    )
    np.testing.assert_allclose(out, [2, 3, 4, 5])


def test_shape_inference_broadcasting():
    b = HloBuilder("bcast")
    x = b.parameter(Shape((3, 4)))
    y = b.parameter(Shape((4,)))
    s = b.binary("add", x, y)
    assert s.shape.dims == (3, 4)


def test_shape_mismatch_rejected():
    b = HloBuilder("bad")
    x = b.parameter(Shape((3, 4)))
    y = b.parameter(Shape((5,)))
    with pytest.raises(ShapeError):
        b.binary("add", x, y)


def test_dot_shapes():
    b = HloBuilder("dot")
    x = b.parameter(Shape((8, 3)))
    w = b.parameter(Shape((3, 5)))
    d = b.dot(x, w)
    assert d.shape.dims == (8, 5)
    with pytest.raises(ShapeError):
        b.dot(w, x)


def test_conv_shapes():
    b = HloBuilder("conv")
    x = b.parameter(Shape((2, 28, 28, 1)))
    f = b.parameter(Shape((5, 5, 1, 6)))
    same = b.convolution(x, f, 1, "same")
    assert same.shape.dims == (2, 28, 28, 6)
    valid = b.convolution(x, f, 1, "valid")
    assert valid.shape.dims == (2, 24, 24, 6)
    with pytest.raises(ShapeError):
        bad_f = b.parameter(Shape((5, 5, 3, 6)))
        b.convolution(x, bad_f, 1, "same")


def test_reduce_shapes():
    b = HloBuilder("reduce")
    x = b.parameter(Shape((2, 3, 4)))
    assert b.reduce(x, "sum", (1,)).shape.dims == (2, 4)
    assert b.reduce(x, "sum", (1,), keepdims=True).shape.dims == (2, 1, 4)
    assert b.reduce(x, "mean", None).shape.dims == ()


def test_reshape_transpose_shapes():
    b = HloBuilder("shapes")
    x = b.parameter(Shape((2, 3, 4)))
    assert b.reshape(x, (6, 4)).shape.dims == (6, 4)
    assert b.transpose(x, (2, 0, 1)).shape.dims == (4, 2, 3)
    with pytest.raises(ShapeError):
        b.reshape(x, (5, 5))
    with pytest.raises(ShapeError):
        b.transpose(x, (0, 0, 1))


def test_unknown_opcode_rejected():
    from repro.hlo.ir import HloInstruction

    with pytest.raises(HloError, match="unknown opcode"):
        HloInstruction("frobnicate", [], Shape(()))


def test_execution_matches_numpy_pipeline():
    b = HloBuilder("mlp_layer")
    x = b.parameter(Shape((8, 16)))
    w = b.parameter(Shape((16, 4)))
    bias = b.parameter(Shape((4,)))
    h = b.unary("relu", b.binary("add", b.dot(x, w), bias))
    module = b.build(b.reduce(h, "sum", None))
    exe = compile_module(module, use_cache=False)

    rng = np.random.default_rng(0)
    xv = rng.standard_normal((8, 16)).astype(np.float32)
    wv = rng.standard_normal((16, 4)).astype(np.float32)
    bv = rng.standard_normal(4).astype(np.float32)
    out = exe.run([xv, wv, bv])
    expected = np.maximum(xv @ wv + bv, 0).sum()
    assert float(out) == pytest.approx(float(expected), rel=1e-4)


def test_print_module_contains_instructions():
    b = HloBuilder("printme")
    x = b.parameter(Shape((2, 2)))
    module = b.build(b.unary("tanh", x))
    text = print_module(module)
    assert "HloModule printme" in text
    assert "parameter" in text
    assert "tanh" in text
    assert "ROOT" in text
    assert "f32[2,2]" in text


def test_text_round_trip():
    b = HloBuilder("roundtrip")
    x = b.parameter(Shape((3, 4)))
    w = b.parameter(Shape((4, 2)))
    c = b.constant([[1.0, 2.0]])
    h = b.binary("add", b.dot(x, w), b.broadcast(c, (3, 2)))
    r = b.unary("relu", h)
    module = b.build(b.reduce(r, "mean", (0, 1)))

    text = print_module(module)
    reparsed = parse_module(text)
    # Round-trip is canonical: printing again yields identical text modulo
    # instruction ids, and execution agrees exactly.
    exe1 = compile_module(module, use_cache=False, fuse=False)
    exe2 = compile_module(reparsed, use_cache=False, fuse=False)
    rng = np.random.default_rng(1)
    args = [
        rng.standard_normal((3, 4)).astype(np.float32),
        rng.standard_normal((4, 2)).astype(np.float32),
    ]
    np.testing.assert_allclose(exe1.run(args), exe2.run(args), rtol=1e-6)


def test_parse_rejects_garbage():
    with pytest.raises(HloError):
        parse_module("not an hlo module")
    with pytest.raises(HloError):
        parse_module("HloModule x\n\nENTRY main {\n  %a = f32[] bogus()\n}")


def test_select_and_compare():
    b = HloBuilder("sel")
    x = b.parameter(Shape((4,)))
    zeros = b.broadcast(b.constant(0.0), (4,))
    pred = b.binary("compare", x, zeros, comparison="gt")
    assert pred.shape.dtype == "pred"
    module = b.build(b.select(pred, x, zeros))
    exe = compile_module(module, use_cache=False)
    out = exe.run([np.array([-1, 2, -3, 4], np.float32)])
    np.testing.assert_allclose(out, [0, 2, 0, 4])


def test_slice_pad_concat():
    b = HloBuilder("spc")
    x = b.parameter(Shape((4, 4)))
    s = b.slice(x, (1, 1), (2, 2))
    assert s.shape.dims == (2, 2)
    p = b.pad(s, ((1, 1), (0, 0)))
    assert p.shape.dims == (4, 2)
    c = b.concatenate([s, s], axis=1)
    assert c.shape.dims == (2, 4)
    module = b.build(b.reduce(c, "sum", None))
    exe = compile_module(module, use_cache=False)
    xv = np.arange(16, dtype=np.float32).reshape(4, 4)
    out = exe.run([xv])
    assert float(out) == pytest.approx(2 * xv[1:3, 1:3].sum())
