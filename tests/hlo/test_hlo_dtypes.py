"""The HLO dtype foundation: byte accounting, bf16 emulation, convert,
narrowed execution, and the printer/parser dtype syntax."""

import numpy as np
import pytest

from repro.errors import HloError
from repro.hlo import HloBuilder, parse_module, print_module, verify_module
from repro.hlo.compiler import Executable, evaluate_instruction
from repro.hlo.dtypes import (
    FINFO,
    cast_array,
    finfo,
    np_dtype_of,
    quantize_bf16,
    ulp,
)
from repro.hlo.ir import BF16, DTYPE_BYTES, F16, F32, F64, PRED, Shape


def test_dtype_bytes_table():
    assert DTYPE_BYTES == {"f16": 2, "bf16": 2, "f32": 4, "f64": 8, "pred": 1}


def test_shape_bytes_is_dtype_aware():
    # The logical byte size follows the element type, not a fixed 4.
    assert Shape((4, 4), F16).byte_size == 32
    assert Shape((4, 4), BF16).byte_size == 32
    assert Shape((4, 4), F32).byte_size == 64
    assert Shape((4, 4), F64).byte_size == 128
    assert Shape((4, 4), PRED).byte_size == 16
    assert Shape((4, 4), F32).with_dtype(F16).byte_size == 32
    assert Shape((4, 4), F16).storage_bytes == 32


def test_finfo_characteristics():
    assert finfo(F16).max == 65504.0
    assert finfo(F16).eps == 2.0**-10
    assert finfo(BF16).eps == 2.0**-7
    assert finfo(BF16).max == pytest.approx(3.3895e38, rel=1e-3)
    assert finfo(F32).mantissa_bits == 23
    assert set(FINFO) == {F16, BF16, F32, F64}
    with pytest.raises(HloError, match="not a float"):
        finfo(PRED)


def test_ulp_scales_and_floors():
    assert ulp(F16, 1.0) == finfo(F16).eps
    assert ulp(F16, 2048.0) == 2048.0 * finfo(F16).eps
    # Near zero the ULP floors at the subnormal spacing, never 0.
    assert ulp(F16, 0.0) == finfo(F16).smallest_subnormal
    assert ulp(F16, 0.0) > 0.0


def test_numpy_storage():
    assert np_dtype_of(F16) is np.float16
    assert np_dtype_of(BF16) is np.float32  # emulated in f32 storage
    assert np_dtype_of(F64) is np.float64
    with pytest.raises(HloError, match="unknown element type"):
        np_dtype_of("f8")


def test_quantize_bf16_round_to_nearest_even():
    # Values on the bf16 grid pass through untouched.
    on_grid = np.array([1.0, 1.5, -2.0, 0.0, 256.0], np.float32)
    assert np.array_equal(quantize_bf16(on_grid), on_grid)
    # 1 + 2**-8 sits exactly between 1.0 and 1 + 2**-7: ties go to the
    # even mantissa (1.0); anything past the midpoint rounds up.
    assert quantize_bf16(np.array([1.0 + 2.0**-8], np.float32))[0] == 1.0
    assert (
        quantize_bf16(np.array([1.0 + 2.0**-8 + 2.0**-16], np.float32))[0]
        == np.float32(1.0 + 2.0**-7)
    )
    # Non-finites survive quantization.
    specials = quantize_bf16(np.array([np.inf, -np.inf, np.nan], np.float32))
    assert specials[0] == np.inf and specials[1] == -np.inf
    assert np.isnan(specials[2])


def test_cast_array_saturates_like_hardware():
    assert np.isposinf(cast_array(np.array([1e30], np.float32), F16))[0]
    assert cast_array(np.array([1e30], np.float32), F16).dtype == np.float16
    # bf16 keeps f32 storage but lands on the bf16 grid.
    q = cast_array(np.array([1.0 + 2.0**-8], np.float32), BF16)
    assert q.dtype == np.float32 and q[0] == 1.0


def _convert_module():
    b = HloBuilder("convert_chain")
    x = b.parameter(Shape((2, 2), F32))
    h = b.convert(x, F16)
    y = b.binary("add", h, h)
    return b.build(b.convert(y, F32)), x


def test_builder_convert_and_verify():
    module, _ = _convert_module()
    verify_module(module)
    converts = [i for i in module.schedule() if i.opcode == "convert"]
    assert [c.shape.dtype for c in converts] == [F16, F32]
    assert all(c.attrs["new_dtype"] == c.shape.dtype for c in converts)


def test_builder_convert_to_same_dtype_is_identity():
    b = HloBuilder("noop")
    x = b.parameter(Shape((2,), F32))
    assert b.convert(x, F32) is x


def test_printer_parser_round_trip_with_dtypes():
    module, _ = _convert_module()
    text = print_module(module)
    assert "f16[2,2]" in text and "f32[2,2]" in text
    reparsed = parse_module(text)
    assert print_module(reparsed) == text
    verify_module(reparsed)


def test_narrowed_execution_rounds_to_dtype():
    module, _ = _convert_module()
    out = Executable(module).run([np.full((2, 2), 1.0 + 2.0**-12, np.float32)])
    # The add ran in f16: the 2**-12 tail is below half's resolution.
    assert np.allclose(out, 2.0)
    assert out.dtype == np.float32


def test_bf16_execution_lands_on_grid():
    b = HloBuilder("bf16_add")
    x = b.parameter(Shape((4,), BF16))
    module = b.build(b.binary("add", x, x))
    out = Executable(module).run(
        [cast_array(np.array([1.0, 1.25, 3.0, 0.5], np.float32), BF16)]
    )
    assert np.array_equal(quantize_bf16(out), out)


def test_narrow_accum_reduce_flatlines_without_f32_accum():
    b = HloBuilder("drift")
    x = b.parameter(Shape((4096,), F16))
    module = b.build(b.reduce(x, "sum", axes=(0,)))
    ones = np.ones((4096,), np.float16)
    [reduce] = [i for i in module.schedule() if i.opcode == "reduce"]
    drifted = evaluate_instruction(reduce, [ones])
    # Past 1/eps = 1024 the running f16 sum's ULP exceeds 1.0 and the
    # additions round away entirely; the serial sum flatlines at 2048.
    assert float(drifted) == 2048.0

    b = HloBuilder("accum")
    x = b.parameter(Shape((4096,), F16))
    module = b.build(b.reduce(x, "sum", axes=(0,), accum="f32"))
    [reduce] = [i for i in module.schedule() if i.opcode == "reduce"]
    assert float(evaluate_instruction(reduce, [ones])) == 4096.0


def test_f16_dot_accumulates_in_f32():
    b = HloBuilder("dot")
    x = b.parameter(Shape((1, 2048), F16), number=0)
    w = b.parameter(Shape((2048, 1), F16), number=1)
    module = b.build(b.dot(x, w))
    [dot] = [i for i in module.schedule() if i.opcode == "dot"]
    out = evaluate_instruction(
        dot, [np.ones((1, 2048), np.float16), np.ones((2048, 1), np.float16)]
    )
    # 2048 exceeds f16's 1/eps, but dot upcasts its accumulation to f32
    # (tensor-core semantics), then rounds the result back to f16.
    assert float(out[0, 0]) == 2048.0
    assert out.dtype == np.float16
