"""Property-based HLO tests: random programs, pass soundness, round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hlo import (
    HloBuilder,
    Shape,
    compile_module,
    fingerprint,
    optimize,
    parse_module,
    print_module,
)
from repro.hlo.compiler import Executable

UNARY_OPS = ["negate", "tanh", "exponential", "logistic", "relu", "abs"]
BINARY_OPS = ["add", "subtract", "multiply", "maximum", "minimum"]


@st.composite
def random_program(draw):
    """A random elementwise+reduce HLO program over one f32[n] parameter.

    Returns (module builder thunk, reference numpy function)."""
    n = draw(st.integers(2, 16))
    n_ops = draw(st.integers(1, 12))
    steps = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            steps.append(("unary", draw(st.sampled_from(UNARY_OPS)), None))
        else:
            op = draw(st.sampled_from(BINARY_OPS))
            operand = draw(
                st.one_of(
                    st.just("param"),
                    st.just("prev"),
                    st.floats(min_value=-2, max_value=2, allow_nan=False),
                )
            )
            steps.append(("binary", op, operand))
    return n, steps


_NP_UNARY = {
    "negate": np.negative,
    "tanh": np.tanh,
    "exponential": np.exp,
    "logistic": lambda x: 1 / (1 + np.exp(-x)),
    "relu": lambda x: np.maximum(x, 0),
    "abs": np.abs,
}
_NP_BINARY = {
    "add": np.add,
    "subtract": np.subtract,
    "multiply": np.multiply,
    "maximum": np.maximum,
    "minimum": np.minimum,
}


def build_module(n, steps):
    b = HloBuilder("random")
    param = b.parameter(Shape((n,)))
    current = param
    prev = param
    for kind, op, operand in steps:
        nxt_prev = current
        if kind == "unary":
            current = b.unary(op, current)
        else:
            if operand == "param":
                rhs = param
            elif operand == "prev":
                rhs = prev
            else:
                rhs = b.broadcast(b.constant(operand), (n,))
            current = b.binary(op, current, rhs)
        prev = nxt_prev
    return b.build(b.reduce(current, "sum", None))


def reference_eval(n, steps, x):
    current = x
    prev = x
    for kind, op, operand in steps:
        nxt_prev = current
        if kind == "unary":
            current = _NP_UNARY[op](current)
        else:
            if operand == "param":
                rhs = x
            elif operand == "prev":
                rhs = prev
            else:
                rhs = np.full(n, operand, np.float32)
            current = _NP_BINARY[op](current, rhs)
        prev = nxt_prev
    return np.float32(current.astype(np.float32).sum())


@given(random_program(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_optimized_module_matches_reference(program, seed):
    n, steps = program
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, n).astype(np.float32)

    module = build_module(n, steps)
    plain = float(Executable(module).run([x]))

    module2 = build_module(n, steps)
    optimize(module2, fuse=True)
    fused = float(Executable(module2).run([x]))

    expected = float(reference_eval(n, steps, x))
    assert plain == pytest.approx(expected, rel=1e-3, abs=1e-3)
    assert fused == pytest.approx(plain, rel=1e-4, abs=1e-5)


@given(random_program())
@settings(max_examples=40, deadline=None)
def test_text_round_trip_random_programs(program):
    n, steps = program
    module = build_module(n, steps)
    text = print_module(module)
    reparsed = parse_module(text)
    assert fingerprint(module) == fingerprint(reparsed)


@given(random_program())
@settings(max_examples=30, deadline=None)
def test_fingerprint_stable_across_rebuilds(program):
    n, steps = program
    assert fingerprint(build_module(n, steps)) == fingerprint(
        build_module(n, steps)
    )


@given(random_program(), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_optimize_is_idempotent(program, seed):
    n, steps = program
    module = build_module(n, steps)
    optimize(module)
    once = fingerprint(module)
    optimize(module)
    twice = fingerprint(module)
    assert once == twice
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, n).astype(np.float32)
    expected = float(reference_eval(n, steps, x))
    # nan_ok: chained exps can overflow to inf and inf-inf is nan in both
    # the reference and the compiled run — that is still agreement.
    assert float(Executable(module).run([x])) == pytest.approx(
        expected, rel=1e-3, abs=1e-3, nan_ok=True
    )


@given(random_program())
@settings(max_examples=30, deadline=None)
def test_compile_cache_consistency(program):
    from repro.hlo import clear_cache

    n, steps = program
    clear_cache()
    exe1 = compile_module(build_module(n, steps))
    exe2 = compile_module(build_module(n, steps))
    assert exe1 is exe2
