"""Borrow-token lifecycle and scoped copy counting.

Regression coverage for two runtime-layer fixes that back the static
ownership analyses:

* leaked :class:`InoutRef` objects (never ``end()``ed) used to leave their
  token in the active-borrow table forever, pinning the owner and — once
  the owner was collected and its ``id`` recycled — raising a spurious
  :class:`BorrowError` on a completely unrelated borrow.  A GC finalizer
  now releases the token;
* COW instrumentation used to be a single process-wide counter that every
  test had to remember to reset; :func:`copy_counting` scopes it.
"""

import gc
from dataclasses import dataclass

import pytest

from repro.errors import BorrowError
from repro.valsem import (
    STATS,
    ValueArray,
    active_borrow_count,
    as_functional,
    borrow_attr,
    copy_counting,
    inout,
)


@dataclass
class Holder:
    count: int = 0


# ---------------------------------------------------------------------------
# Finalizer releases leaked borrow tokens.
# ---------------------------------------------------------------------------


def test_leaked_borrow_released_by_finalizer():
    base = active_borrow_count()
    h = Holder()
    ref = borrow_attr(h, "count")
    assert active_borrow_count() == base + 1
    del ref  # leaked: never end()ed
    gc.collect()
    assert active_borrow_count() == base
    # The location is borrowable again — no spurious conflict.
    with inout(h, "count") as ref2:
        ref2.set(7)
    assert h.count == 7


def test_id_reuse_after_leak_no_spurious_conflict():
    # Pre-fix, a leaked token survived its owner; once CPython recycled the
    # owner's id for a new object, borrowing that new object tripped a
    # BorrowError about an overlap with a long-dead borrow.
    for _ in range(50):
        h = Holder()
        borrow_attr(h, "count")  # dropped immediately, never ended
        del h
    gc.collect()
    fresh = Holder()
    with inout(fresh, "count") as ref:  # must not raise
        ref.set(1)
    assert fresh.count == 1


def test_finalizer_is_noop_after_end_and_reissue():
    # end() detaches the finalizer, so collecting the old ref later must
    # not release a token that was since re-issued to a live borrow.
    h = Holder()
    ref = borrow_attr(h, "count")
    ref.end()
    ref2 = borrow_attr(h, "count")  # same (owner, key) token, re-issued
    del ref
    gc.collect()
    with pytest.raises(BorrowError, match="exclusivity"):
        borrow_attr(h, "count")  # ref2's borrow is still live
    ref2.end()


def test_live_borrow_pins_owner():
    # While a borrow is live the table holds the owner strongly: its id
    # cannot be recycled out from under the token.
    base = active_borrow_count()
    ref = borrow_attr(Holder(), "count")
    gc.collect()
    assert active_borrow_count() == base + 1
    ref.set(3)
    assert ref.get() == 3
    ref.end()
    assert active_borrow_count() == base


# ---------------------------------------------------------------------------
# Re-borrow after the Figure 8 functional rewrite.
# ---------------------------------------------------------------------------


def test_reborrow_after_as_functional():
    def inc(x):
        x.set(x.get() + 1)
        return x.get() < 10

    inc_functional = as_functional(inc)
    h = Holder(count=2)
    # The rewrite borrows a fresh cell, never `h`, so running it under a
    # live borrow of `h` is exclusivity-clean...
    with inout(h, "count") as ref:
        y, _went = inc_functional(ref.get())
        ref.set(y)
    assert h.count == 3
    # ...and `h` is immediately re-borrowable afterwards.
    with inout(h, "count") as ref:
        ref.set(0)
    assert h.count == 0


# ---------------------------------------------------------------------------
# Scoped copy counting.
# ---------------------------------------------------------------------------


def test_copy_counting_isolated_from_global():
    x = ValueArray([1, 2])
    global_deep = STATS.deep_copies
    global_logical = STATS.logical_copies
    with copy_counting() as stats:
        y = x.copy()
        x[0] = 9  # shared -> deep copy, counted in the scope only
        assert (stats.logical_copies, stats.deep_copies) == (1, 1)
    assert STATS.deep_copies == global_deep
    assert STATS.logical_copies == global_logical
    assert y.to_list() == [1, 2]


def test_copy_counting_nests_innermost_wins():
    with copy_counting() as outer:
        a = ValueArray([1])
        a.copy()
        with copy_counting() as inner:
            b = ValueArray([2])
            b.copy()
            assert inner.logical_copies == 1
        a.copy()
        # Inner-scope events never leaked into the outer counter.
        assert outer.logical_copies == 2


def test_copy_counting_accepts_caller_stats():
    from repro.valsem import CowStats

    mine = CowStats()
    with copy_counting(mine) as stats:
        assert stats is mine
        ValueArray([1]).copy()
    assert mine.logical_copies == 1
