"""Figure 8 and Appendix A: inout borrows, exclusivity, and the
pass-by-value equivalence."""

from dataclasses import dataclass

import pytest

from repro.errors import BorrowError
from repro.valsem import InoutRef, as_functional, borrow_attr, borrow_item, inout


@dataclass
class Holder:
    count: int = 2
    flag: bool = False


def inc(x: InoutRef) -> bool:
    """The paper's Figure 8 example: x += 1; return x < 10."""
    x.set(x.get() + 1)
    return x.get() < 10


def test_figure8_inout_form():
    h = Holder(count=2)
    with inout(h, "count") as ref:
        z = inc(ref)
    assert (h.count, z) == (3, True)


def test_figure8_functional_rewrite_equivalence():
    # Pass-by-inout and pass-by-value-plus-assignment print the same thing.
    inc_functional = as_functional(inc)
    y, z = inc_functional(2)
    assert (y, z) == (3, True)

    # And for a range of starting values the two agree exactly.
    for start in range(0, 15):
        h = Holder(count=start)
        with inout(h, "count") as ref:
            z_inout = inc(ref)
        y_func, z_func = inc_functional(start)
        assert (h.count, z_inout) == (y_func, z_func)


def test_exclusivity_violation_detected():
    h = Holder()
    with inout(h, "count"):
        with pytest.raises(BorrowError, match="exclusivity"):
            borrow_attr(h, "count")


def test_disjoint_borrows_allowed():
    h = Holder()
    with inout(h, "count") as a, inout(h, "flag") as b:
        a.set(5)
        b.set(True)
    assert (h.count, h.flag) == (5, True)


def test_borrow_released_after_scope():
    h = Holder()
    with inout(h, "count") as ref:
        ref.set(9)
    # The borrow ended: a new one is fine.
    with inout(h, "count") as ref:
        ref.set(10)
    assert h.count == 10


def test_use_after_end_rejected():
    h = Holder()
    ref = borrow_attr(h, "count")
    ref.end()
    with pytest.raises(BorrowError, match="after the borrow ended"):
        ref.get()


def test_item_borrow():
    xs = [1, 2, 3]
    with inout(xs, 1) as ref:
        ref.update(lambda v: v * 10)
    assert xs == [1, 20, 3]


def test_item_borrow_exclusivity():
    xs = [1, 2, 3]
    with inout(xs, 0):
        with pytest.raises(BorrowError):
            borrow_item(xs, 0)
        # A different index is a disjoint location.
        with inout(xs, 1) as other:
            other.set(99)
    assert xs[1] == 99


def test_update_helper():
    h = Holder(count=3)
    with inout(h, "count") as ref:
        ref.update(lambda v: v * v)
    assert h.count == 9


def test_borrow_released_on_exception():
    h = Holder()
    with pytest.raises(RuntimeError):
        with inout(h, "count"):
            raise RuntimeError("boom")
    # Exception path still released the borrow.
    with inout(h, "count") as ref:
        ref.set(1)
    assert h.count == 1
