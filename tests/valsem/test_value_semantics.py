"""Figure 5: value semantics — mutation through one variable is observable
only through that variable.

Copy counting uses the scoped :func:`repro.valsem.copy_counting` context
manager rather than resetting the process-wide ``STATS`` global, so these
tests observe exactly their own COW events and cannot interfere with (or be
corrupted by) anything else touching the global counter.
"""


from repro.valsem import ValueArray, copy_counting


def test_figure5_swift_column():
    # var x = [3]; var y = x; x[0] += 1  ->  x == [4], y == [3]
    x = ValueArray([3])
    y = x.copy()
    x.add_in_place(0, 1)
    assert x.to_list() == [4]
    assert y.to_list() == [3]


def test_python_list_reference_semantics_contrast():
    # Figure 5 middle column: the hazard ValueArray avoids.
    x = [3]
    y = x
    x[0] += 1
    assert y == [4]  # "spooky action at a distance"


def test_copy_is_lazy():
    with copy_counting() as stats:
        x = ValueArray(range(1000))
        y = x.copy()
        assert stats.logical_copies == 1
        assert stats.deep_copies == 0  # no storage duplicated yet
        assert y[0] == 0  # reads never copy
        assert stats.deep_copies == 0


def test_deep_copy_only_on_shared_mutation():
    with copy_counting() as stats:
        x = ValueArray([1, 2, 3])
        y = x.copy()
        x[0] = 99  # shared: must deep-copy
        assert stats.deep_copies == 1
        x[1] = 88  # now unshared: mutate in place
        assert stats.deep_copies == 1
        assert x.to_list() == [99, 88, 3]
        assert y.to_list() == [1, 2, 3]


def test_unshared_mutation_never_copies():
    with copy_counting() as stats:
        x = ValueArray([0] * 100)
        for i in range(100):
            x[i] = i
        assert stats.deep_copies == 0


def test_many_copies_one_duplication_per_mutator():
    with copy_counting() as stats:
        x = ValueArray([1, 2, 3])
        copies = [x.copy() for _ in range(5)]
        copies[0][0] = 10
        copies[1][0] = 20
        assert stats.deep_copies == 2
        assert x.to_list() == [1, 2, 3]
        assert copies[0].to_list() == [10, 2, 3]
        assert copies[1].to_list() == [20, 2, 3]
        assert copies[2].to_list() == [1, 2, 3]


def test_append_extend_pop():
    x = ValueArray([1])
    y = x.copy()
    x.append(2)
    x.extend([3, 4])
    assert x.to_list() == [1, 2, 3, 4]
    assert y.to_list() == [1]
    assert x.pop() == 4
    assert x.to_list() == [1, 2, 3]


def test_slicing_returns_value():
    x = ValueArray([1, 2, 3, 4])
    s = x[1:3]
    s[0] = 99
    assert x.to_list() == [1, 2, 3, 4]
    assert s.to_list() == [99, 3]


def test_equality():
    assert ValueArray([1, 2]) == ValueArray([1, 2])
    assert ValueArray([1, 2]) == [1, 2]
    assert not (ValueArray([1]) == ValueArray([2]))


def test_iteration_snapshot():
    x = ValueArray([1, 2, 3])
    assert list(x) == [1, 2, 3]
    assert len(x) == 3


def test_differentiable_conformance():
    from repro.core import ZERO, move

    x = ValueArray([1.0, 2.0])
    moved = move(x, [0.5, ZERO])
    assert moved.to_list() == [1.5, 2.0]
    assert x.to_list() == [1.0, 2.0]
    x.move_([ZERO, 1.0])
    assert x.to_list() == [1.0, 3.0]


def test_move_in_place_respects_sharing():
    x = ValueArray([1.0, 2.0])
    y = x.copy()
    x.move_([1.0, 1.0])
    assert x.to_list() == [2.0, 3.0]
    assert y.to_list() == [1.0, 2.0]
