"""Property-based tests of the AD system and tangent-space laws."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ZERO,
    gradient,
    jvp,
    tangent_add,
    tangent_neg,
    tangent_scale,
    value_and_gradient,
)

finite = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
positive = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


def fd(f, x, eps=1e-5):
    return (f(x + eps) - f(x - eps)) / (2 * eps)


# ---------------------------------------------------------------------------
# AD correctness on randomized inputs.
# ---------------------------------------------------------------------------


def poly(x):
    return 0.5 * x * x * x - 2.0 * x * x + x - 3.0


def smooth(x):
    return math.exp(math.sin(x)) + math.cos(x * 0.5) * x


def loopy(x):
    y = x
    for _ in range(4):
        y = y * 0.5 + math.tanh(y)
    return y


def branchy(x):
    if x > 1.0:
        return x * x
    if x < -1.0:
        return -x * x * 0.5
    return x * 3.0


@given(finite)
@settings(max_examples=60, deadline=None)
def test_gradient_matches_fd_poly(x):
    assert gradient(poly, x) == pytest.approx(fd(poly, x), rel=1e-3, abs=1e-4)


@given(finite)
@settings(max_examples=60, deadline=None)
def test_gradient_matches_fd_smooth(x):
    assert gradient(smooth, x) == pytest.approx(fd(smooth, x), rel=1e-3, abs=1e-4)


@given(finite)
@settings(max_examples=40, deadline=None)
def test_gradient_matches_fd_loopy(x):
    assert gradient(loopy, x) == pytest.approx(fd(loopy, x), rel=1e-3, abs=1e-4)


@given(finite.filter(lambda x: min(abs(x - 1.0), abs(x + 1.0)) > 1e-2))
@settings(max_examples=60, deadline=None)
def test_gradient_matches_fd_branchy(x):
    assert gradient(branchy, x) == pytest.approx(fd(branchy, x), rel=1e-3, abs=1e-4)


@given(finite, finite)
@settings(max_examples=40, deadline=None)
def test_forward_equals_reverse(x, s):
    """JVP with tangent s == s * gradient (scalar chain rule)."""
    _, d = jvp(smooth, (x,), (s,))
    g = gradient(smooth, x)
    assert d == pytest.approx(s * g, rel=1e-6, abs=1e-8)


@given(finite)
@settings(max_examples=40, deadline=None)
def test_value_is_unchanged_by_differentiation(x):
    value, _ = value_and_gradient(loopy, x)
    assert value == pytest.approx(loopy(x), rel=1e-12)


@given(st.lists(finite, min_size=1, max_size=8), st.data())
@settings(max_examples=40, deadline=None)
def test_subscript_gradient_one_hot(xs, data):
    i = data.draw(st.integers(min_value=0, max_value=len(xs) - 1))

    def op(values, idx):
        return values[idx] * 2.0

    g = gradient(op, xs, i, wrt=0)
    for j, entry in enumerate(g):
        expected = 2.0 if j == i else ZERO
        if expected is ZERO:
            assert entry is ZERO or entry == 0.0
        else:
            assert entry == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Tangent-space algebra (AdditiveArithmetic laws).
# ---------------------------------------------------------------------------


tangent = st.one_of(
    finite,
    st.tuples(finite, finite),
    st.lists(finite, min_size=2, max_size=2),
)


@given(tangent)
@settings(max_examples=50, deadline=None)
def test_zero_is_identity(t):
    assert tangent_add(ZERO, t) == t
    assert tangent_add(t, ZERO) == t


@given(finite, finite, finite)
@settings(max_examples=50, deadline=None)
def test_addition_commutes_scalars(a, b, c):
    assert tangent_add(a, b) == tangent_add(b, a)
    lhs = tangent_add(tangent_add(a, b), c)
    rhs = tangent_add(a, tangent_add(b, c))
    assert lhs == pytest.approx(rhs, abs=1e-9)


@given(st.tuples(finite, finite), st.tuples(finite, finite))
@settings(max_examples=50, deadline=None)
def test_tuple_addition_elementwise(a, b):
    s = tangent_add(a, b)
    assert s == (a[0] + b[0], a[1] + b[1])


@given(tangent)
@settings(max_examples=50, deadline=None)
def test_neg_is_additive_inverse(t):
    s = tangent_add(t, tangent_neg(t))
    flat = s if isinstance(s, (tuple, list)) else (s,)
    for entry in flat:
        assert entry == pytest.approx(0.0, abs=1e-9)


@given(finite, finite)
@settings(max_examples=50, deadline=None)
def test_scale_distributes(a, s):
    assert tangent_scale(a, s) == pytest.approx(a * s)
    assert tangent_scale(ZERO, s) is ZERO


# ---------------------------------------------------------------------------
# Struct tangent laws.
# ---------------------------------------------------------------------------

from dataclasses import dataclass

from repro.core import differentiable_struct, move


@differentiable_struct
@dataclass
class Vec2:
    x: float
    y: float


@given(finite, finite, finite, finite)
@settings(max_examples=50, deadline=None)
def test_move_composes(px, py, tx, ty):
    """move(move(p, a), b) == move(p, a + b) — exponential map on R^n."""
    p = Vec2(px, py)
    a = Vec2.TangentVector(x=tx, y=ty)
    b = Vec2.TangentVector(x=ty, y=tx)
    lhs = move(move(p, a), b)
    rhs = move(p, a + b)
    assert lhs.x == pytest.approx(rhs.x)
    assert lhs.y == pytest.approx(rhs.y)


@given(finite, finite)
@settings(max_examples=50, deadline=None)
def test_move_along_zero_is_identity(px, py):
    p = Vec2(px, py)
    assert move(p, ZERO) is p
    moved = move(p, Vec2.TangentVector())
    assert (moved.x, moved.y) == (px, py)
