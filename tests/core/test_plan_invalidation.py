"""Plan invalidation when custom derivatives are (re-)registered.

The regression of record: registering a custom derivative *after* plans
were synthesized must invalidate not just the target function's plans but
— transitively — every dependent caller's plan.  This includes callers
whose plan already holds a ``CustomVJPRule`` for a *previous* registration
(the rule closure is baked into the plan, so a stale plan silently keeps
calling the old derivative).
"""

import pytest

from repro.core import derivative, differentiable, gradient, jvp
from repro.core.synthesis import vjp_plan
from repro.sil.frontend import lower_function


def test_reregistration_invalidates_dependent_caller_plans():
    # Caller's plan is built while the *first* custom rule is in effect:
    # the plan holds CustomVJPRule(first).  Re-registering must not leave
    # that stale closure in place.
    def inner(v):
        return v * v

    def outer(x):
        return inner(x) + x

    @derivative(of=inner)
    def inner_vjp_v1(v):
        return v * v, lambda ct: (ct * 10.0,)

    assert gradient(outer, 3.0) == pytest.approx(11.0)

    @derivative(of=inner)
    def inner_vjp_v2(v):
        return v * v, lambda ct: (ct * 100.0,)

    assert gradient(outer, 3.0) == pytest.approx(101.0)


def test_reregistration_invalidates_dependent_caller_jvp_plans():
    def inner(v):
        return v * 2.0

    def outer(x):
        return inner(x) * 3.0

    @derivative(of=inner, kind="jvp")
    def inner_jvp_v1(primals, tangents):
        return primals[0] * 2.0, tangents[0] * 10.0

    _, d = jvp(outer, (1.0,), (1.0,))
    assert d == pytest.approx(30.0)

    @derivative(of=inner, kind="jvp")
    def inner_jvp_v2(primals, tangents):
        return primals[0] * 2.0, tangents[0] * 100.0

    _, d = jvp(outer, (1.0,), (1.0,))
    assert d == pytest.approx(300.0)


def test_registration_invalidates_transitive_callers():
    # h -> g -> f: registering a custom derivative for f after all three
    # plans exist must rebuild the whole chain, not just f.
    def f_leaf(v):
        return v * v

    def g_mid(v):
        return f_leaf(v) * 2.0

    def h_top(x):
        return g_mid(x) + 1.0

    h = differentiable(h_top)
    stale_plan = h.vjp_plan((0,))
    assert gradient(h_top, 2.0) == pytest.approx(8.0)  # 2 * 2x

    @derivative(of=f_leaf)
    def f_leaf_vjp(v):
        return v * v, lambda ct: (ct * -1.0,)

    assert gradient(h_top, 2.0) == pytest.approx(-2.0)
    assert h.vjp_plan((0,)) is not stale_plan


def test_registration_only_invalidates_affected_plans():
    def f_leaf2(v):
        return v * v

    def caller2(x):
        return f_leaf2(x)

    def unrelated(x):
        return x * 5.0

    u = differentiable(unrelated)
    untouched = u.vjp_plan((0,))
    assert gradient(caller2, 1.0) == pytest.approx(2.0)

    @derivative(of=f_leaf2)
    def f_leaf2_vjp(v):
        return v * v, lambda ct: (ct * 7.0,)

    assert gradient(caller2, 1.0) == pytest.approx(7.0)
    # A function that never called f_leaf2 keeps its cached plan.
    assert u.vjp_plan((0,)) is untouched


def test_pruned_plan_variants_are_invalidated_too():
    def f_leaf3(v):
        return v * v

    def caller(x):
        return f_leaf3(x)

    func = lower_function(caller)
    pruned = vjp_plan(func, (0,), prune_captures=True)
    assert pruned.vjp([3.0])[1](1.0) == pytest.approx((6.0,))

    @derivative(of=f_leaf3)
    def f_leaf3_vjp(v):
        return v * v, lambda ct: (ct * 9.0,)

    rebuilt = vjp_plan(func, (0,), prune_captures=True)
    assert rebuilt is not pruned
    assert rebuilt.vjp([3.0])[1](1.0) == pytest.approx((9.0,))
