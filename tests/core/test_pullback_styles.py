"""Appendix B formulations agree with each other and with the AD engine."""

import pytest

from repro.core import gradient
from repro.core.pullback_styles import (
    functional_gradient,
    mutable_gradient_accumulate,
    my_op,
    my_op_with_functional_pullback,
    my_op_with_mutable_pullback,
    subscript_with_functional_pullback,
    subscript_with_mutable_pullback,
    sum_arrays_helper,
)


def test_my_op_value():
    values = [1.0, 2.0, 3.0, 4.0]
    assert my_op(values, 1, 3) == 6.0


def test_functional_pullback_gradient():
    values = [1.0, 2.0, 3.0, 4.0]
    value, pb = my_op_with_functional_pullback(values, 1, 3)
    assert value == 6.0
    assert pb(1.0) == [0.0, 1.0, 0.0, 1.0]
    assert pb(2.0) == [0.0, 2.0, 0.0, 2.0]


def test_functional_pullback_repeated_index():
    values = [1.0, 2.0, 3.0]
    _, pb = my_op_with_functional_pullback(values, 1, 1)
    assert pb(1.0) == [0.0, 2.0, 0.0]


def test_mutable_pullback_gradient():
    values = [1.0, 2.0, 3.0, 4.0]
    value, pb = my_op_with_mutable_pullback(values, 1, 3)
    assert value == 6.0
    d = [0.0] * 4
    pb(1.0, d)
    assert d == [0.0, 1.0, 0.0, 1.0]
    pb(1.0, d)  # accumulates, does not overwrite
    assert d == [0.0, 2.0, 0.0, 2.0]


def test_formulations_agree():
    values = [float(i) for i in range(16)]
    for a, b in [(0, 15), (3, 3), (7, 9)]:
        dense = functional_gradient(values, a, b)
        acc = [0.0] * len(values)
        mutable_gradient_accumulate(values, a, b, acc)
        assert dense == acc


def test_subscript_pullbacks():
    values = [5.0, 6.0, 7.0]
    v, pb = subscript_with_functional_pullback(values, 2)
    assert v == 7.0
    assert pb(3.0) == [0.0, 0.0, 3.0]

    v, pb = subscript_with_mutable_pullback(values, 2)
    assert v == 7.0
    d = [0.0, 0.0, 0.0]
    pb(3.0, d)
    assert d == [0.0, 0.0, 3.0]


def test_sum_arrays_helper_validates():
    with pytest.raises(ValueError):
        sum_arrays_helper([1.0], [1.0, 2.0])


def test_ad_engine_matches_appendix_b():
    """The engine's gradient of the same program equals both hand-written
    formulations — and uses the sparse (O(1)-per-use) adjoint internally."""

    def op(values):
        return values[1] + values[3]

    g = gradient(op, [1.0, 2.0, 3.0, 4.0])
    from repro.core import ZERO

    assert g[1] == 1.0 and g[3] == 1.0
    assert g[0] is ZERO and g[2] is ZERO  # siblings never materialized


def test_engine_subscript_in_loop():
    def op(values):
        total = 0.0
        for i in range(4):
            total += values[i] * float(i)
        return total

    g = gradient(op, [1.0, 1.0, 1.0, 1.0])
    dense = [x if x != 0 else 0.0 for x in [0.0, 1.0, 2.0, 3.0]]
    assert [float(x) if x else 0.0 for x in g] == dense
