"""The Differentiable protocol on user-defined structs (Figure 1).

Gradients with respect to aggregates return synthesized TangentVector
values; `move` is the exponential map; `no_derivative` fields are excluded.
"""

from dataclasses import dataclass

import pytest

from repro.core import (
    ZERO,
    differentiable_struct,
    gradient,
    move,
    no_derivative,
    value_and_gradient,
)


@differentiable_struct
@dataclass
class Point:
    x: float
    y: float


@differentiable_struct
@dataclass
class Line:
    start: Point
    end: Point
    name: str = no_derivative(default="line")


def test_tangent_vector_synthesis():
    tv = Point.TangentVector
    assert tv.__name__ == "PointTangentVector"
    t = tv(x=1.0, y=2.0)
    assert t.x == 1.0 and t.y == 2.0
    zero = tv()
    assert zero.x is ZERO and zero.y is ZERO


def test_tangent_additive_arithmetic():
    tv = Point.TangentVector
    a = tv(x=1.0, y=2.0)
    b = tv(x=10.0, y=20.0)
    s = a + b
    assert (s.x, s.y) == (11.0, 22.0)
    n = -a
    assert (n.x, n.y) == (-1.0, -2.0)
    d = b - a
    assert (d.x, d.y) == (9.0, 18.0)
    scaled = a * 3.0
    assert (scaled.x, scaled.y) == (3.0, 6.0)
    # ZERO is the additive identity at the struct level too.
    assert (a + tv()).x == 1.0
    assert (a + ZERO) is a


def test_move_functional():
    p = Point(1.0, 2.0)
    moved = move(p, Point.TangentVector(x=0.5, y=-0.5))
    assert (moved.x, moved.y) == (1.5, 1.5)
    assert (p.x, p.y) == (1.0, 2.0)  # original untouched: value semantics
    assert move(p, ZERO) is p


def test_move_in_place():
    p = Point(1.0, 2.0)
    p.move_(Point.TangentVector(x=1.0, y=1.0))
    assert (p.x, p.y) == (2.0, 3.0)


def test_nested_struct_tangents():
    line = Line(Point(0.0, 0.0), Point(3.0, 4.0))
    t = Line.TangentVector(
        start=Point.TangentVector(x=1.0, y=1.0),
        end=Point.TangentVector(x=-1.0, y=-1.0),
    )
    moved = move(line, t)
    assert (moved.start.x, moved.end.x) == (1.0, 2.0)
    assert moved.name == "line"


def test_no_derivative_field_excluded():
    assert "name" not in Line.TangentVector._fields


def test_gradient_wrt_struct():
    def norm2(p):
        return p.x * p.x + p.y * p.y

    g = gradient(norm2, Point(3.0, 4.0))
    assert isinstance(g, Point.TangentVector)
    assert g.x == pytest.approx(6.0)
    assert g.y == pytest.approx(8.0)


def test_gradient_wrt_nested_struct():
    def length2(line):
        dx = line.end.x - line.start.x
        dy = line.end.y - line.start.y
        return dx * dx + dy * dy

    line = Line(Point(0.0, 0.0), Point(3.0, 4.0))
    g = gradient(length2, line)
    assert g.end.x == pytest.approx(6.0)
    assert g.end.y == pytest.approx(8.0)
    assert g.start.x == pytest.approx(-6.0)
    assert g.start.y == pytest.approx(-8.0)


def test_sparse_field_gradient_stays_symbolic():
    # Touching only one field must not materialize cotangents for siblings.
    def only_x(p):
        return p.x * 2.0

    g = gradient(only_x, Point(1.0, 2.0))
    assert g.x == pytest.approx(2.0)
    assert g.y is ZERO  # never materialized — the Section 4.3 property


def test_struct_and_scalar_mixed_args():
    def f(p, s):
        return (p.x + p.y) * s

    p = Point(1.0, 2.0)
    gp, gs = gradient(f, p, 10.0)
    assert gp.x == pytest.approx(10.0)
    assert gs == pytest.approx(3.0)


def test_gradient_descent_loop_on_struct():
    def loss(p):
        return (p.x - 3.0) * (p.x - 3.0) + (p.y + 1.0) * (p.y + 1.0)

    p = Point(0.0, 0.0)
    for _ in range(200):
        value, g = value_and_gradient(loss, p)
        p = move(p, g * -0.1)
    assert p.x == pytest.approx(3.0, abs=1e-3)
    assert p.y == pytest.approx(-1.0, abs=1e-3)


def test_struct_through_control_flow():
    def f(p):
        if p.x > 0.0:
            return p.x * p.y
        return p.y * p.y

    g = gradient(f, Point(2.0, 3.0))
    assert (g.x, g.y) == (pytest.approx(3.0), pytest.approx(2.0))
    g = gradient(f, Point(-2.0, 3.0))
    assert g.x is ZERO
    assert g.y == pytest.approx(6.0)


def test_tangent_vector_equality():
    tv = Point.TangentVector
    assert tv(x=1.0, y=2.0) == tv(x=1.0, y=2.0)
    assert tv() == tv()
