"""Sparse cotangent containers and slice/list differentiation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ZERO, gradient, tangent_add
from repro.core.cotangents import (
    PartialList,
    PartialTuple,
    deep_normalize,
    normalize_cotangent,
)

finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestPartialTuple:
    def test_accumulate_and_densify(self):
        p = PartialTuple(4).accumulate(1, 2.0).accumulate(3, 5.0)
        assert p.to_tuple() == (ZERO, 2.0, ZERO, 5.0)
        p.accumulate(1, 3.0)
        assert p.get(1) == 5.0

    def test_add_partial_partial(self):
        a = PartialTuple(3).accumulate(0, 1.0)
        b = PartialTuple(3).accumulate(0, 2.0).accumulate(2, 4.0)
        s = a + b
        assert s.to_tuple() == (3.0, ZERO, 4.0)

    def test_add_with_dense_tuple(self):
        p = PartialTuple(3).accumulate(1, 1.0)
        s = p + (10.0, 20.0, 30.0)
        assert s.to_tuple() == (10.0, 21.0, 30.0)
        s2 = (10.0, 20.0, 30.0) + p
        assert s2.to_tuple() == (10.0, 21.0, 30.0)

    def test_zero_identity(self):
        p = PartialTuple(2).accumulate(0, 1.0)
        assert (p + ZERO) is p
        assert tangent_add(ZERO, p) is p


class TestPartialList:
    def test_accumulate_and_densify(self):
        p = PartialList(4).accumulate(2, 7.0)
        assert p.to_list() == [ZERO, ZERO, 7.0, ZERO]

    def test_negative_index(self):
        p = PartialList(4).accumulate(-1, 3.0)
        assert p.get(3) == 3.0
        assert p.get(-1) == 3.0

    def test_add_with_dense_list(self):
        p = PartialList(3).accumulate(0, 1.0)
        s = p + [1.0, 2.0, 3.0]
        assert s.to_list() == [2.0, 2.0, 3.0]

    @given(st.lists(finite, min_size=1, max_size=6), st.data())
    @settings(max_examples=30, deadline=None)
    def test_accumulation_order_irrelevant(self, values, data):
        n = len(values)
        indices = [
            data.draw(st.integers(0, n - 1)) for _ in range(len(values))
        ]
        a = PartialList(n)
        for i, v in zip(indices, values):
            a.accumulate(i, v)
        b = PartialList(n)
        for i, v in reversed(list(zip(indices, values))):
            b.accumulate(i, v)
        for j in range(n):
            x, y = a.get(j), b.get(j)
            if x is ZERO or y is ZERO:
                assert x is y
            else:
                assert x == pytest.approx(y)


class TestNormalization:
    def test_normalize_shallow(self):
        assert normalize_cotangent(PartialTuple(2).accumulate(0, 1.0)) == (
            1.0,
            ZERO,
        )
        assert normalize_cotangent(3.0) == 3.0

    def test_deep_normalize_nested(self):
        inner = PartialList(2).accumulate(1, 5.0)
        tree = (inner, [PartialTuple(1).accumulate(0, 2.0), 7.0])
        out = deep_normalize(tree)
        assert out == (([ZERO, 5.0]), [(2.0,), 7.0])

    def test_deep_normalize_struct(self):
        from dataclasses import dataclass

        from repro.core import differentiable_struct

        @differentiable_struct
        @dataclass
        class Box:
            items: list

        tv = Box.TangentVector(items=PartialList(2).accumulate(0, 1.0))
        out = deep_normalize(tv)
        assert out.items == [1.0, ZERO]


class TestListSliceDifferentiation:
    def test_slice_gradient_on_list(self):
        def f(xs):
            head = xs[:2]
            return head[0] * 2.0 + head[1] * 3.0

        g = gradient(f, [1.0, 1.0, 1.0, 1.0])
        assert g[0] == 2.0 and g[1] == 3.0
        assert g[2] is ZERO and g[3] is ZERO

    def test_open_ended_slices(self):
        def f(xs):
            return xs[1:][0] + xs[:-1][0]

        g = gradient(f, [1.0, 2.0, 3.0])
        assert g[0] == 1.0 and g[1] == 1.0

    def test_slice_of_slice(self):
        def f(xs):
            return xs[1:4][1:][0] * 5.0

        g = gradient(f, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert g[2] == 5.0
        assert all(v is ZERO for i, v in enumerate(g) if i != 2)

    def test_sum_over_slice_in_loop(self):
        def f(xs):
            window = xs[1:3]
            total = 0.0
            for i in range(len(window)):
                total += window[i]
            return total

        g = gradient(f, [1.0, 1.0, 1.0, 1.0])
        assert [v if v is not ZERO else 0 for v in g] == [0, 1.0, 1.0, 0]
