"""Internals of derivative synthesis: records, rules, activity pruning."""

import pytest

from repro.core import differentiable, gradient
from repro.core.synthesis import VJPPlan, vjp_plan
from repro.sil import ir, lower_function


def _plan(fn, wrt=(0,)) -> VJPPlan:
    return vjp_plan(lower_function(fn), wrt)


class TestRecords:
    def test_one_record_per_executed_block(self):
        def f(x):
            y = x * 2.0        # entry block
            if y > 0.0:        # then/else blocks
                y = y * y
            return y + 1.0     # join block

        plan = _plan(f)
        _, records = plan.execute_forward((3.0,))
        executed_blocks = [r.block.name for r in records]
        # entry + one branch arm + join = 3 block executions.
        assert len(records) == 3
        assert executed_blocks[0] == "entry"

    def test_loop_iterations_produce_per_iteration_records(self):
        def f(x):
            total = 0.0
            for _ in range(4):
                total += x * x
            return total

        plan = _plan(f)
        _, records = plan.execute_forward((2.0,))
        # Each loop iteration executes header+body; records grow linearly
        # with the dynamic iteration count — the "nested data structure of
        # control flow branches taken during execution".
        _, records_8 = plan.execute_forward((2.0,))
        assert len(records) == len(records_8)

        def g(x):
            total = 0.0
            i = 0
            while i < 8:
                total += x
                i += 1
            return total

        plan_g = _plan(g)
        _, rec4 = plan_g.execute_forward((1.0,))
        # 8 iterations: header x9 + body x8 + entry + exit.
        assert len(rec4) == 9 + 8 + 1 + 1

    def test_records_consumed_pullback_correct_per_path(self):
        def f(x):
            if x > 0.0:
                return x * x
            return -x

        plan = _plan(f)
        value, records = plan.execute_forward((3.0,))
        (gx,) = plan.run_pullback(records, 1.0)
        assert gx == pytest.approx(6.0)
        value, records = plan.execute_forward((-3.0,))
        (gx,) = plan.run_pullback(records, 1.0)
        assert gx == pytest.approx(-1.0)

    def test_pullback_reusable_from_same_records(self):
        def f(x):
            return x * x * x

        plan = _plan(f)
        _, records = plan.execute_forward((2.0,))
        assert plan.run_pullback(records, 1.0)[0] == pytest.approx(12.0)
        assert plan.run_pullback(records, 0.5)[0] == pytest.approx(6.0)


class TestRules:
    def test_rules_built_only_for_active_applies(self):
        def f(x):
            dead = x * 100.0      # varied but unused
            cfg = 2.0 * 3.0       # constant
            return x * cfg + (dead * 0.0) * 0.0

        plan = _plan(f)
        func = plan.func
        active_applies = [
            i
            for i in func.instructions()
            if isinstance(i, ir.ApplyInst) and plan.activity.is_active(i)
        ]
        assert set(plan.rules) == {id(i) for i in active_applies}
        # The constant 2*3 apply must not have a rule.
        all_applies = [
            i for i in func.instructions() if isinstance(i, ir.ApplyInst)
        ]
        assert len(plan.rules) < len(all_applies)

    def test_wrt_changes_rule_set(self):
        def f(x, y):
            return x * 2.0 + y * 3.0

        plan_x = _plan(f, wrt=(0,))
        plan_y = _plan(f, wrt=(1,))
        assert plan_x is not plan_y
        assert set(plan_x.rules) != set(plan_y.rules)

    def test_plans_cached_per_wrt(self):
        def f(x, y):
            return x * y

        func = lower_function(f)
        assert vjp_plan(func, (0,)) is vjp_plan(func, (0,))
        assert vjp_plan(func, (0,)) is not vjp_plan(func, (0, 1))


class TestDiagnostics:
    def test_constant_result_warning_recorded(self):
        def f(x):
            return 5.0

        plan = _plan(f)
        assert any(
            d.severity == "warning" and "does not depend" in d.message
            for d in plan.diagnostics
        )

    def test_gradient_evaluation_uses_single_plan_object(self):
        @differentiable
        def f(x):
            y = x
            while y < 10.0:
                y = y * 2.0
            return y

        plans = {id(f.vjp_plan((0,))) for _ in range(3)}
        assert len(plans) == 1
        for x in (1.0, 3.0, 9.0):
            gradient(f, x)
        assert f.vjp_plan((0,)).build_count == 1


class TestCapturePruning:
    def test_pruned_plan_records_fewer_entries(self):
        from repro.analysis.derivatives.models import dead_capture

        func = lower_function(dead_capture)
        plain = vjp_plan(func, (0,))
        pruned = vjp_plan(func, (0,), prune_captures=True)
        assert plain is not pruned
        assert pruned.pruned and not plain.pruned
        _, rec1 = plain.execute_forward((1.3,))
        _, rec2 = pruned.execute_forward((1.3,))
        n1 = sum(len(r.entries) for r in rec1)
        n2 = sum(len(r.entries) for r in rec2)
        assert n2 == n1 - 1

    def test_pruned_and_unpruned_gradients_bit_identical(self):
        from repro.analysis.derivatives.models import dead_capture

        func = lower_function(dead_capture)
        plain = vjp_plan(func, (0,))
        pruned = vjp_plan(func, (0,), prune_captures=True)
        for x in (0.3, 1.3, 2.7, -0.9):
            _, rec1 = plain.execute_forward((x,))
            _, rec2 = pruned.execute_forward((x,))
            assert plain.run_pullback(rec1, 1.0) == pruned.run_pullback(
                rec2, 1.0
            )

    def test_pruned_plan_cached_separately(self):
        def f(x):
            return x * 2.0

        func = lower_function(f)
        assert vjp_plan(func, (0,)) is vjp_plan(func, (0,))
        assert vjp_plan(func, (0,), prune_captures=True) is vjp_plan(
            func, (0,), prune_captures=True
        )
        assert vjp_plan(func, (0,)) is not vjp_plan(
            func, (0,), prune_captures=True
        )

    def test_pruning_never_drops_a_rule_diagnostic(self):
        # Pruning is an optimization, not a differentiability waiver: the
        # pruned plan carries the same diagnostics as the plain one.
        from repro.analysis.derivatives.models import dead_capture

        func = lower_function(dead_capture)
        plain = vjp_plan(func, (0,))
        pruned = vjp_plan(func, (0,), prune_captures=True)
        assert [d.message for d in pruned.diagnostics] == [
            d.message for d in plain.diagnostics
        ]

    def test_value_id_reuse_across_loop_iterations_under_pruning(self):
        # The loop body's SIL value ids are reused every iteration; the
        # pop-on-consume _Adjoints discipline must keep per-iteration
        # cotangents separate even when some sites are pruned away.
        from repro.analysis.derivatives.models import loop_dead_capture

        func = lower_function(loop_dead_capture)
        plain = vjp_plan(func, (0,))
        pruned = vjp_plan(func, (0,), prune_captures=True)
        for x in (0.2, 0.4, 0.6):
            v1, rec1 = plain.execute_forward((x,))
            v2, rec2 = pruned.execute_forward((x,))
            assert v1 == v2
            # 2 dead sites per iteration x 3 iterations never recorded.
            assert (
                sum(len(r.entries) for r in rec1)
                - sum(len(r.entries) for r in rec2)
                == 6
            )
            assert plain.run_pullback(rec1, 1.0) == pruned.run_pullback(
                rec2, 1.0
            )

    def test_corpus_property_pruning_preserves_gradients(self):
        from repro.analysis.derivatives.models import CLEAN_MODELS

        for model in CLEAN_MODELS:
            func = lower_function(model.build())
            plain = vjp_plan(func, model.wrt)
            pruned = vjp_plan(func, model.wrt, prune_captures=True)
            _, rec1 = plain.execute_forward(model.args)
            _, rec2 = pruned.execute_forward(model.args)
            assert plain.run_pullback(rec1, 1.0) == pruned.run_pullback(
                rec2, 1.0
            ), model.name
