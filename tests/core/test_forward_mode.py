"""Forward-mode (JVP) differentiation tests."""

import math

import pytest

from repro.core import differentiable, differential, gradient, jvp
from repro.core.differentiable import ZERO


def fd_dir(f, args, tangents, eps=1e-6):
    plus = [a + eps * t for a, t in zip(args, tangents)]
    minus = [a - eps * t for a, t in zip(args, tangents)]
    return (f(*plus) - f(*minus)) / (2 * eps)


def check_jvp(f, args, tangents):
    value, dvalue = jvp(f, args, tangents)
    assert value == pytest.approx(f(*args))
    assert dvalue == pytest.approx(fd_dir(f, args, tangents), rel=1e-4, abs=1e-6)


def test_polynomial_jvp():
    def f(x):
        return 3.0 * x * x + 2.0 * x

    check_jvp(f, (2.0,), (1.0,))
    value, d = jvp(f, (2.0,), (1.0,))
    assert d == pytest.approx(14.0)


def test_directional_derivative_two_args():
    def f(x, y):
        return x * y + x / y

    check_jvp(f, (2.0, 3.0), (1.0, 0.0))
    check_jvp(f, (2.0, 3.0), (0.0, 1.0))
    check_jvp(f, (2.0, 3.0), (0.7, -0.2))


def test_transcendental_jvp():
    def f(x):
        return math.exp(x) * math.sin(x)

    check_jvp(f, (0.5,), (1.0,))


def test_jvp_through_control_flow():
    def f(x):
        y = x
        while y < 10.0:
            y = y * y
        return y

    check_jvp(f, (1.5,), (1.0,))

    def g(x):
        if x > 0.0:
            return x * x
        return -x

    check_jvp(g, (2.0,), (1.0,))
    check_jvp(g, (-2.0,), (1.0,))


def test_jvp_through_loop():
    def f(x):
        s = 0.0
        for i in range(4):
            s += x ** float(i + 1) / 10.0
        return s

    check_jvp(f, (1.2,), (1.0,))


def test_jvp_function_calls():
    def square(v):
        return v * v

    def f(x):
        return square(square(x))

    check_jvp(f, (1.5,), (1.0,))


def test_jvp_tuples():
    def f(x, y):
        a, b = (x * y, x + y)
        return a * b

    check_jvp(f, (2.0, 3.0), (1.0, 0.5))


def test_differential_operator():
    def f(x):
        return x * x * x

    df = differential(f, (2.0,))
    assert df(1.0) == pytest.approx(12.0)
    assert df(2.0) == pytest.approx(24.0)  # linearity in the tangent


def test_jvp_zero_tangent():
    def f(x, y):
        return x * y

    value, d = jvp(f, (2.0, 3.0), (ZERO, ZERO))
    assert value == 6.0
    assert d is ZERO


def test_jvp_matches_vjp():
    # For scalar->scalar functions, JVP with unit tangent equals the gradient.
    def f(x):
        y = x
        for _ in range(3):
            y = y * 1.3 + math.sin(y)
        return y

    _, dv = jvp(f, (0.7,), (1.0,))
    g = gradient(f, 0.7)
    assert dv == pytest.approx(g)


def test_jvp_on_differentiable_function_object():
    @differentiable
    def f(x):
        return x * x

    value, d = f.jvp((3.0,), (1.0,))
    assert (value, d) == (9.0, pytest.approx(6.0))
