"""Property tests for every registered primitive's derivatives.

Two properties, checked against the *full* primitive corpus
(:data:`repro.sil.primitives.PRIMITIVES`):

* **Finite differences vs VJP**: for random seeded inputs and a random
  cotangent ``ct``, the directional derivative of ``<f(x), ct>`` along a
  random direction ``v`` (central differences) must match ``<pb(ct), v>``
  within a per-op tolerance.

* **JVP/VJP duality**: ``<ct, J dx> == <J^T ct, dx>`` — forward and
  reverse mode must implement adjoint linear maps of each other.

Every primitive must either carry a numeric test case below or be listed
as structural with a reason; a newly registered primitive fails the
coverage test until it is classified.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

import repro.nn  # noqa: F401  (registers identity / dropout_apply)
import repro.sil.mathprims  # noqa: F401  (registers the math primitives)
import repro.tensor.ops  # noqa: F401  (registers the tensor primitives)
from repro.core.differentiable import ZERO
from repro.sil.primitives import PRIMITIVES
from repro.tensor import Device, Tensor

EAGER = Device("eager")


def _t(rng, shape, positive=False, away_from_zero=False):
    a = rng.standard_normal(shape).astype(np.float32)
    if positive:
        a = np.abs(a) + 0.5
    if away_from_zero:
        a = a + np.sign(a) * 0.3
    return Tensor(a, EAGER)


# -- per-op case table -------------------------------------------------------
# Each case: input factory + FD epsilon + comparison tolerances.  Smooth
# f32 tensor ops tolerate ~1e-2 relative FD error; scalar (f64) ops are
# tight; piecewise ops keep inputs away from their kinks.


class Case:
    def __init__(self, make, eps=0.05, rtol=2e-2, atol=2e-3, stop_grads=()):
        self.make = make
        self.eps = eps
        self.rtol = rtol
        self.atol = atol
        #: Argument positions whose gradient the repo *intentionally* stops
        #: (None cotangent) even though the output depends on them.
        self.stop_grads = frozenset(stop_grads)


SCALAR = dict(eps=1e-6, rtol=1e-5, atol=1e-8)

CASES = {
    # scalar-or-tensor arithmetic (tested on tensors)
    "add": Case(lambda r: (_t(r, (3, 4)), _t(r, (3, 4)))),
    "sub": Case(lambda r: (_t(r, (3, 4)), _t(r, (3, 4)))),
    "mul": Case(lambda r: (_t(r, (3, 4)), _t(r, (3, 4)))),
    "div": Case(lambda r: (_t(r, (3, 4)), _t(r, (3, 4), positive=True))),
    "neg": Case(lambda r: (_t(r, (3, 4)),)),
    "pow": Case(lambda r: (_t(r, (3, 4), positive=True), 2.5)),
    # generic unary math (tested on tensors)
    "exp": Case(lambda r: (_t(r, (3, 4)),)),
    "log": Case(lambda r: (_t(r, (3, 4), positive=True),)),
    "sqrt": Case(lambda r: (_t(r, (3, 4), positive=True),)),
    "rsqrt": Case(lambda r: (_t(r, (3, 4), positive=True),)),
    "tanh": Case(lambda r: (_t(r, (3, 4)),)),
    "sigmoid": Case(lambda r: (_t(r, (3, 4)),)),
    "relu": Case(lambda r: (_t(r, (3, 4), away_from_zero=True),), eps=0.01),
    "abs": Case(lambda r: (_t(r, (3, 4), away_from_zero=True),), eps=0.01),
    # scalar-only math (no tensor method)
    "sin": Case(lambda r: (float(r.uniform(-2, 2)),), **SCALAR),
    "cos": Case(lambda r: (float(r.uniform(-2, 2)),), **SCALAR),
    "min": Case(lambda r: (2.0, 3.5, -1.25), **SCALAR),
    "max": Case(lambda r: (2.0, 3.5, -1.25), **SCALAR),
    # tensor contractions and convolutions
    "matmul": Case(lambda r: (_t(r, (3, 4)), _t(r, (4, 2)))),
    "matmul_op": Case(lambda r: (_t(r, (3, 4)), _t(r, (4, 2)))),
    "conv2d": Case(
        lambda r: (_t(r, (2, 5, 5, 2)), _t(r, (3, 3, 2, 3)), 1, "valid"),
        rtol=3e-2,
        atol=3e-3,
    ),
    "avg_pool2d": Case(lambda r: (_t(r, (2, 4, 4, 2)), 2, 2)),
    "max_pool2d": Case(lambda r: (_t(r, (2, 4, 4, 2)), 2, 2), eps=0.01),
    # reductions & shape ops
    "tensor_sum": Case(lambda r: (_t(r, (3, 4)), (1,), False)),
    "tensor_mean": Case(lambda r: (_t(r, (3, 4)), None, False)),
    "tensor_max": Case(lambda r: (_t(r, (3, 4)), None, False), eps=0.01),
    "tensor_reshape": Case(lambda r: (_t(r, (2, 6)), (3, 4))),
    "tensor_transpose": Case(lambda r: (_t(r, (2, 3)), (1, 0))),
    "tensor_broadcast_to": Case(lambda r: (_t(r, (3, 1)), (3, 4))),
    "flatten_batch": Case(lambda r: (_t(r, (2, 3, 4)),)),
    "tensor_concat": Case(lambda r: ([_t(r, (2, 3)), _t(r, (3, 3))], 0)),
    # losses
    "mse_loss": Case(lambda r: (_t(r, (4, 3)), _t(r, (4, 3)))),
    # nn-layer primitives
    "identity": Case(lambda r: (_t(r, (3, 4)),)),
    # Mask depends only on (shape, seed): fixed under FD perturbation.
    "dropout_apply": Case(lambda r: (_t(r, (3, 4)), 0.5, 11)),
    # Labels are targets: the VJP stops their gradient by design.
    "softmax_cross_entropy": Case(
        lambda r: (
            _t(r, (4, 5)),
            Tensor(np.eye(5, dtype=np.float32)[r.integers(0, 5, 4)], EAGER),
        ),
        stop_grads=(1,),
    ),
}

#: Primitives whose "derivative" is structural or discrete — no numeric
#: surface for finite differences to probe.
STRUCTURAL = {
    "bool": "discrete cast",
    "int": "discrete cast",
    "float": "identity cast (derivative is pass-through)",
    "not": "boolean",
    "eq": "predicate",
    "ne": "predicate",
    "lt": "predicate",
    "le": "predicate",
    "gt": "predicate",
    "ge": "predicate",
    "floordiv": "piecewise constant (derivative 0)",
    "mod": "deliberately discrete (gradient stopped, see _discrete_vjp)",
    "len": "integer-valued",
    "range": "integer sequence",
    "print": "effectful, non-differentiable",
    "one_hot": "discrete encoding",
    "index_get": "container shuffle (covered by program-level tests)",
    "slice_get": "container shuffle (covered by program-level tests)",
    "list_make": "container construction",
    "tuple_make": "container construction",
    "value_copy": "ownership artifact (identity)",
}


def _rng_for(name: str) -> np.random.Generator:
    return np.random.default_rng(zlib.crc32(name.encode()))


def _flat(obj) -> np.ndarray:
    """Flatten a value/cotangent to an f64 vector (ZERO/None -> empty)."""
    if obj is None or obj is ZERO:
        return np.zeros(0)
    if isinstance(obj, Tensor):
        return obj.numpy().astype(np.float64).ravel()
    if isinstance(obj, (list, tuple)):
        if not obj:
            return np.zeros(0)
        return np.concatenate([_flat(o) for o in obj])
    return np.array([float(obj)])


def _size(obj) -> int:
    return _flat(obj).size


def _perturbed(obj, v: np.ndarray, h: float):
    """``obj + h*v`` with the same structure (Tensors stay f32)."""
    if isinstance(obj, Tensor):
        base = obj.numpy().astype(np.float64)
        stepped = (base + h * v.reshape(base.shape)).astype(np.float32)
        return Tensor(stepped, EAGER)
    if isinstance(obj, (list, tuple)):
        out, offset = [], 0
        for o in obj:
            n = _size(o)
            out.append(_perturbed(o, v[offset : offset + n], h))
            offset += n
        return type(obj)(out) if isinstance(obj, tuple) else out
    return float(obj) + h * float(v[0])


def _cotangent_for(result, rng):
    if isinstance(result, Tensor):
        return Tensor(rng.standard_normal(result.shape).astype(np.float32), EAGER)
    return 1.0


def _diff_indices(prim, args) -> list[int]:
    return [i for i in range(len(args)) if i not in prim.nondiff_args]


def _numeric(obj) -> bool:
    return isinstance(obj, (Tensor, float)) or (
        isinstance(obj, list) and all(isinstance(o, Tensor) for o in obj)
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_fd_vs_vjp(name):
    prim = PRIMITIVES[name]
    case = CASES[name]
    rng = _rng_for(name)
    args = case.make(rng)

    result, pullback = prim.vjp(*args)
    ct = _cotangent_for(result, rng)
    cotangents = pullback(ct)
    assert len(cotangents) == len(args), name

    # Forward consistency: the VJP's primal equals the primitive's value.
    direct = prim(*args)
    np.testing.assert_allclose(_flat(direct), _flat(result), rtol=1e-6)

    ct_vec = _flat(ct)

    def objective(eval_args) -> float:
        value = prim(*eval_args)
        return float(_flat(value) @ ct_vec) if ct_vec.size else float(
            _flat(value)[0]
        )

    for i in _diff_indices(prim, args):
        if i in case.stop_grads or not _numeric(args[i]):
            continue
        n = _size(args[i])
        v = rng.standard_normal(n)
        plus = list(args)
        plus[i] = _perturbed(args[i], v, case.eps)
        minus = list(args)
        minus[i] = _perturbed(args[i], v, -case.eps)
        fd = (objective(plus) - objective(minus)) / (2 * case.eps)
        analytic = float(_flat(cotangents[i]) @ v) if _size(
            cotangents[i]
        ) else 0.0
        np.testing.assert_allclose(
            analytic,
            fd,
            rtol=case.rtol,
            atol=case.atol,
            err_msg=f"{name}: FD vs VJP mismatch on arg {i}",
        )


@pytest.mark.parametrize(
    "name", sorted(n for n in CASES if PRIMITIVES[n].jvp is not None)
)
def test_jvp_vjp_duality(name):
    prim = PRIMITIVES[name]
    case = CASES[name]
    rng = _rng_for(name + ":duality")
    args = case.make(rng)
    diff = set(_diff_indices(prim, args)) - case.stop_grads

    tangents = []
    for i, arg in enumerate(args):
        if i in diff and isinstance(arg, Tensor):
            tangents.append(
                Tensor(rng.standard_normal(arg.shape).astype(np.float32), EAGER)
            )
        elif i in diff and isinstance(arg, float):
            tangents.append(float(rng.standard_normal()))
        else:
            tangents.append(ZERO)

    value_fwd, dy = prim.jvp(list(args), list(tangents))
    value_rev, pullback = prim.vjp(*args)
    np.testing.assert_allclose(_flat(value_fwd), _flat(value_rev), rtol=1e-6)

    ct = _cotangent_for(value_rev, rng)
    cotangents = pullback(ct)

    lhs = float(_flat(ct) @ _flat(dy)) if _size(dy) else 0.0
    rhs = 0.0
    for i in diff:
        if _size(cotangents[i]) and _size(tangents[i]):
            rhs += float(_flat(cotangents[i]) @ _flat(tangents[i]))
    np.testing.assert_allclose(
        lhs, rhs, rtol=1e-4, atol=1e-6, err_msg=f"{name}: <ct, Jdx> != <JTct, dx>"
    )


def test_corpus_fully_classified():
    """Every registered primitive is either property-tested or explicitly
    structural — registering a new primitive forces a decision here.

    Scoped to library primitives (``fn.__module__`` under ``repro``):
    other test modules register throwaway primitives into the shared
    registry, which this coverage contract must not chase.
    """
    corpus = {
        name
        for name, prim in PRIMITIVES.items()
        if getattr(prim.fn, "__module__", "").startswith("repro.")
    }
    tested = set(CASES)
    structural = set(STRUCTURAL)
    assert not (tested & structural), tested & structural
    unclassified = corpus - tested - structural
    assert not unclassified, f"primitives without derivative coverage: {unclassified}"
    missing = (tested | structural) - corpus
    assert not missing, f"classified but unregistered: {missing}"


def test_differentiable_primitives_have_vjps():
    for name in CASES:
        assert PRIMITIVES[name].vjp is not None, name
