"""Forward-mode differentiation through layers and structs."""

import numpy as np
import pytest

from repro.core import ZERO, jvp
from repro.nn import Dense, relu
from repro.tensor import Tensor, eager_device


def test_jvp_through_dense_layer_input_tangent():
    device = eager_device()
    layer = Dense.create(3, 2, device=device, rng=np.random.default_rng(0))
    x = Tensor(np.ones((4, 3), np.float32), device)
    dx = Tensor(np.full((4, 3), 0.1, np.float32), device)

    def f(layer, x):
        return layer(x).sum()

    value, tangent = jvp(f, (layer, x), (ZERO, dx))
    # d(sum(xW+b)) in direction dx = sum(dx @ W).
    expected = float((dx.numpy() @ layer.weight.numpy()).sum())
    assert float(tangent) == pytest.approx(expected, rel=1e-5)


def test_jvp_through_layer_parameter_tangent():
    device = eager_device()
    layer = Dense.create(2, 2, device=device, rng=np.random.default_rng(1))
    x = Tensor(np.ones((3, 2), np.float32), device)
    dW = Tensor(np.full((2, 2), 0.5, np.float32), device)
    layer_tangent = type(layer).TangentVector(weight=dW)

    def f(layer, x):
        return layer(x).sum()

    _, tangent = jvp(f, (layer, x), (layer_tangent, ZERO))
    expected = float((x.numpy() @ dW.numpy()).sum())
    assert float(tangent) == pytest.approx(expected, rel=1e-5)


def test_jvp_with_activation_and_both_tangents():
    device = eager_device()
    layer = Dense.create(2, 1, activation=relu, device=device, rng=np.random.default_rng(2))
    x = Tensor(np.array([[1.0, -1.0]], np.float32), device)
    dx = Tensor(np.array([[0.1, 0.2]], np.float32), device)
    dW = Tensor(np.full((2, 1), 0.3, np.float32), device)
    tangent_in = (type(layer).TangentVector(weight=dW), dx)

    def f(layer, x):
        return layer(x).sum()

    value, tangent = jvp(f, (layer, x), tangent_in)

    # Compare against central differences along the joint direction.
    eps = 1e-3

    def moved(sign):
        w = layer.weight.numpy() + sign * eps * dW.numpy()
        moved_layer = Dense(Tensor(w, device), layer.bias, layer.activation)
        moved_x = Tensor(x.numpy() + sign * eps * dx.numpy(), device)
        return float(f(moved_layer, moved_x))

    fd = (moved(+1) - moved(-1)) / (2 * eps)
    assert float(tangent) == pytest.approx(fd, rel=1e-3, abs=1e-4)


def test_jvp_struct_field_tangent_selection():
    from dataclasses import dataclass

    from repro.core import differentiable_struct

    @differentiable_struct
    @dataclass
    class P:
        a: float
        b: float

    def f(p):
        return p.a * p.a + 3.0 * p.b

    _, t = jvp(f, (P(2.0, 1.0),), (P.TangentVector(a=1.0),))
    assert t == pytest.approx(4.0)  # only da contributes
    _, t = jvp(f, (P(2.0, 1.0),), (P.TangentVector(b=1.0),))
    assert t == pytest.approx(3.0)
    _, t = jvp(f, (P(2.0, 1.0),), (P.TangentVector(a=1.0, b=1.0),))
    assert t == pytest.approx(7.0)
