"""Reverse-mode AD through arbitrary control flow.

The paper's approach stores per-basic-block records of the taken control
flow path (Section 2.2); these tests exercise branches, loops, early
returns, breaks, and recursion against finite differences.
"""

import math

import pytest

from repro.core import gradient, value_and_gradient


def fd(f, args, i, eps=1e-6):
    plus, minus = list(args), list(args)
    plus[i] += eps
    minus[i] -= eps
    return (f(*plus) - f(*minus)) / (2 * eps)


def check_grad(f, *args):
    g = gradient(f, *args, wrt=0)
    assert g == pytest.approx(fd(f, args, 0), rel=1e-4, abs=1e-6)


def test_if_branches():
    def f(x):
        if x > 0.0:
            return x * x
        return -x * 3.0

    check_grad(f, 2.0)
    check_grad(f, -2.0)
    assert gradient(f, 2.0) == pytest.approx(4.0)
    assert gradient(f, -2.0) == pytest.approx(-3.0)


def test_if_with_join():
    def f(x):
        if x > 1.0:
            y = x * 2.0
        else:
            y = x * x
        return y + x

    check_grad(f, 3.0)
    check_grad(f, 0.5)


def test_nested_ifs():
    def f(x):
        if x > 0.0:
            if x > 1.0:
                r = x * x * x
            else:
                r = x * x
        else:
            r = -x
        return r

    for x in (2.0, 0.5, -1.0):
        check_grad(f, x)


def test_while_loop_power():
    def f(x, n):
        result = 1.0
        i = 0
        while i < n:
            result = result * x
            i += 1
        return result

    assert gradient(f, 2.0, 5, wrt=0) == pytest.approx(5 * 2.0**4)
    assert gradient(f, 3.0, 3, wrt=0) == pytest.approx(3 * 9.0)
    assert gradient(f, 2.0, 0, wrt=0) == 0.0


def test_for_loop_accumulation():
    def f(x):
        total = 0.0
        for i in range(4):
            total += x * float(i)
        return total

    assert gradient(f, 5.0) == pytest.approx(0.0 + 1.0 + 2.0 + 3.0)


def test_loop_carried_dependency():
    # total depends on the running value: gradients flow across iterations.
    def f(x):
        y = x
        for _ in range(3):
            y = y * y
        return y

    # y = x^8, dy/dx = 8 x^7
    check_grad(f, 1.1)
    assert gradient(f, 1.1) == pytest.approx(8 * 1.1**7)


def test_loop_with_branch_inside():
    def f(x):
        total = 0.0
        for i in range(6):
            if i % 2 == 0:
                total += x * x
            else:
                total += x
        return total

    assert gradient(f, 2.0) == pytest.approx(3 * 2 * 2.0 + 3 * 1.0)


def test_loop_with_break():
    def f(x):
        total = 0.0
        i = 0
        while True:
            total += x * float(i + 1)
            i += 1
            if total > 10.0:
                break
        return total

    check_grad(f, 2.0)


def test_loop_with_continue():
    def f(x):
        total = 0.0
        for i in range(5):
            if i == 2:
                continue
            total += x ** float(i + 1) / 10.0

        return total

    check_grad(f, 1.3)


def test_early_return_in_loop():
    def f(x):
        acc = x
        for _ in range(100):
            acc = acc * 1.5
            if acc > 10.0:
                return acc * 2.0
        return acc

    check_grad(f, 1.0)
    check_grad(f, 0.001)


def test_recursive_function():
    def power(x, n):
        if n == 0:
            return 1.0
        return x * power(x, n - 1)

    def f(x):
        return power(x, 4)

    assert gradient(f, 2.0) == pytest.approx(4 * 8.0)
    check_grad(f, 1.5)


def test_data_dependent_iteration_count():
    # The number of iterations depends on the *value* of x: each call may
    # take a different control-flow path, yet no re-transformation happens.
    def f(x):
        y = x
        while y < 100.0:
            y = y * y
        return y

    for x in (1.5, 3.0, 50.0, 200.0):
        check_grad(f, x)


def test_no_retransformation_across_paths():
    from repro.core import derivative_count, differentiable

    @differentiable
    def f(x):
        if x > 0.0:
            return x * x
        y = -x
        for _ in range(3):
            y = y * 1.1
        return y

    for x in (2.0, -2.0, 0.5, -0.5, 1.0):
        gradient(f, x)
    assert derivative_count(f) == 1


def test_fibonacci_style_two_carried():
    def f(x):
        a = x
        b = x * 2.0
        for _ in range(5):
            a, b = b, a + b
        return b

    check_grad(f, 1.0)


def test_value_and_gradient_through_loop():
    def f(x):
        s = 0.0
        for i in range(3):
            s = s + math.exp(x * float(i) / 10.0)
        return s

    value, grad = value_and_gradient(f, 1.0)
    assert value == pytest.approx(f(1.0))
    assert grad == pytest.approx(fd(f, [1.0], 0), rel=1e-4)


def test_nested_loops_gradient():
    def f(x):
        s = 0.0
        for i in range(3):
            for j in range(3):
                s += x * float(i * j) / 10.0
        return s

    check_grad(f, 2.0)


def test_conditional_expression_gradient():
    def f(x):
        return x * x if x > 0.0 else -x

    check_grad(f, 2.0)
    check_grad(f, -2.0)


def test_boolean_ops_gradient():
    def f(x):
        if x > 0.0 and x < 10.0:
            return x * 3.0
        return x * x

    check_grad(f, 5.0)
    check_grad(f, 20.0)
    check_grad(f, -1.0)
