"""`@derivative(of:)` custom derivative registration and AOT diagnostics."""

import pytest

from repro.core import derivative, differentiable, gradient, jvp, vjp
from repro.errors import DifferentiabilityError
from repro.sil.primitives import primitive


def test_custom_vjp_for_new_primitive():
    @primitive("softplus_test")
    def softplus(x):
        import math

        return math.log(1.0 + math.exp(x))

    calls = []

    @derivative(of=softplus)
    def softplus_vjp(x):
        import math

        y = math.log(1.0 + math.exp(x))
        sig = 1.0 / (1.0 + math.exp(-x))
        calls.append(x)
        return y, lambda ct: (ct * sig,)

    def f(v):
        return softplus(v) * 2.0

    g = gradient(f, 1.0)
    import math

    assert g == pytest.approx(2.0 / (1.0 + math.exp(-1.0)))
    assert calls  # the registered derivative was actually used


def test_custom_vjp_overrides_transformation():
    def cube(v):
        return v * v * v

    # A deliberately wrong derivative proves the custom rule takes priority
    # over recursive transformation of the body.
    @derivative(of=cube)
    def cube_vjp(v):
        return v * v * v, lambda ct: (ct * 100.0,)

    def f(x):
        return cube(x)

    assert gradient(f, 2.0) == pytest.approx(100.0)


def test_custom_jvp():
    @primitive("iden_test")
    def iden(x):
        return x

    @derivative(of=iden, kind="jvp")
    def iden_jvp(primals, tangents):
        return primals[0], tangents[0] * 42.0

    def f(x):
        return iden(x)

    _, d = jvp(f, (1.0,), (1.0,))
    assert d == 42.0


def test_nondifferentiable_primitive_rejected_at_transform_time():
    @primitive("opaque_test")
    def opaque(x):
        return x * 2.0

    def f(x):
        return opaque(x)

    # The error fires when synthesizing the derivative — before any
    # gradient value is computed ("catch errors before execution").
    with pytest.raises(DifferentiabilityError, match="no registered derivative"):
        gradient(f, 1.0)


def test_nondifferentiable_callee_reported_with_function_name():
    @primitive("opaque_test2")
    def opaque2(x):
        return x

    def helper(v):
        return opaque2(v)

    def f(x):
        return helper(x)

    with pytest.raises(DifferentiabilityError, match="helper"):
        gradient(f, 1.0)


def test_inactive_nondifferentiable_calls_are_fine():
    # A non-differentiable primitive on an *inactive* path needs no
    # derivative: activity analysis prunes it.
    @primitive("clock_test", pure=False)
    def clock():
        return 42.0

    def f(x):
        offset = clock()  # not varied: no derivative required
        return x * 2.0 + offset * 0.0

    assert gradient(f, 1.0) == pytest.approx(2.0)


def test_decorated_function_diagnoses_eagerly():
    @primitive("opaque_test3")
    def opaque3(x):
        return x

    @differentiable
    def f(x):
        return opaque3(x)

    # Decoration lowers; the *first* derivative request runs checking and
    # fails before executing any user code.
    with pytest.raises(DifferentiabilityError):
        f.vjp(1.0)


def test_vjp_pullback_reuse():
    def f(x):
        return x * x * x

    value, pb = vjp(f, 2.0)
    assert value == 8.0
    assert pb(1.0) == pytest.approx(12.0)
    assert pb(2.0) == pytest.approx(24.0)  # pullback is reusable & linear


def test_derivative_registration_invalidates_existing_plans():
    def quad(v):
        return v * v

    def f(x):
        return quad(x)

    assert gradient(f, 3.0) == pytest.approx(6.0)

    @derivative(of=quad)
    def quad_vjp(v):
        return v * v, lambda ct: (ct * -1.0,)

    assert gradient(f, 3.0) == pytest.approx(-1.0)


def test_primitive_without_jvp_rejected_in_forward_mode():
    @primitive("revonly_test")
    def revonly(x):
        return x * 2.0

    @derivative(of=revonly)
    def revonly_vjp(x):
        return x * 2.0, lambda ct: (ct * 2.0,)

    def f(x):
        return revonly(x)

    assert gradient(f, 1.0) == pytest.approx(2.0)
    with pytest.raises(DifferentiabilityError, match="JVP"):
        jvp(f, (1.0,), (1.0,))
