"""Unit tests of activity analysis (varied/useful/active)."""

from repro.core.activity import analyze_activity
from repro.sil import ir, lower_function


def _lowered(fn):
    return lower_function(fn)


def _apply_insts(func):
    return [i for i in func.instructions() if isinstance(i, ir.ApplyInst)]


def test_constant_subexpression_not_varied():
    def f(x):
        c = 2.0 * 3.0  # constant: not varied
        return x * c

    func = _lowered(f)
    info = analyze_activity(func, (0,))
    applies = _apply_insts(func)
    const_mul = applies[0]  # 2.0 * 3.0
    x_mul = applies[1]
    assert not info.is_varied(const_mul.result)
    assert info.is_varied(x_mul.result)
    assert info.is_active(x_mul)
    assert not info.is_active(const_mul)


def test_unused_computation_not_useful():
    def f(x):
        dead = x * 100.0  # varied but does not reach the return
        return x + 1.0

    func = _lowered(f)
    info = analyze_activity(func, (0,))
    applies = _apply_insts(func)
    dead_mul = applies[0]
    assert info.is_varied(dead_mul.result)
    assert not info.is_useful(dead_mul.result)
    assert not info.is_active(dead_mul)


def test_wrt_selects_parameters():
    def f(x, y):
        return x * 2.0 + y * 3.0

    func = _lowered(f)
    info_x = analyze_activity(func, (0,))
    info_y = analyze_activity(func, (1,))
    applies = _apply_insts(func)
    x_mul, y_mul = applies[0], applies[1]
    assert info_x.is_active(x_mul) and not info_x.is_active(y_mul)
    assert info_y.is_active(y_mul) and not info_y.is_active(x_mul)


def test_variedness_flows_through_branches():
    def f(x):
        if x > 0.0:
            y = x * 2.0
        else:
            y = x * 3.0
        return y

    func = _lowered(f)
    info = analyze_activity(func, (0,))
    # The join block's argument must be varied and useful.
    join_args = [
        a for b in func.blocks for a in b.args if b is not func.entry
    ]
    assert any(info.is_active_value(a) for a in join_args)


def test_variedness_flows_through_loops():
    def f(x):
        y = x
        for _ in range(3):
            y = y * 2.0
        return y

    func = _lowered(f)
    info = analyze_activity(func, (0,))
    assert info.result_varied()
    mul = [i for i in _apply_insts(func) if i.callee.name == "mul"]
    assert all(info.is_active(m) for m in mul)


def test_result_not_varied_when_constant():
    def f(x):
        return 42.0

    info = analyze_activity(_lowered(f), (0,))
    assert not info.result_varied()


def test_nondiff_operand_blocks_variedness():
    # index_get's index operand is structurally non-differentiable: an index
    # computed from x must not make the load varied via the index.
    def f(xs, i):
        return xs[i + 1]

    func = _lowered(f)
    info = analyze_activity(func, (1,))  # wrt the *index* argument
    loads = [a for a in _apply_insts(func) if a.callee.name == "index_get"]
    assert len(loads) == 1
    assert not info.is_varied(loads[0].result)
    assert not info.result_varied()


def test_comparison_results_not_useful():
    def f(x):
        if x > 0.0:
            return x * 2.0
        return x

    func = _lowered(f)
    info = analyze_activity(func, (0,))
    compares = [a for a in _apply_insts(func) if a.callee.name == "gt"]
    assert compares and all(not info.is_useful(c.result) for c in compares)
