"""Reverse-mode gradients of scalar functions, checked against closed forms
and central finite differences."""

import math

import pytest

from repro.core import differentiable, gradient, value_and_gradient
from repro.sil.mathprims import cos, exp, log, relu, sigmoid, sin, sqrt, tanh


def fd(f, args, i, eps=1e-6):
    """Central finite difference of f wrt args[i]."""
    plus = list(args)
    minus = list(args)
    plus[i] += eps
    minus[i] -= eps
    return (f(*plus) - f(*minus)) / (2 * eps)


def check_grad(f, *args, wrt=None):
    g = gradient(f, *args, wrt=wrt)
    indices = range(len(args)) if wrt is None else (
        [wrt] if isinstance(wrt, int) else wrt
    )
    indices = list(indices)
    gs = (g,) if len(indices) == 1 else g
    for slot, i in enumerate(indices):
        assert gs[slot] == pytest.approx(fd(f, args, i), rel=1e-4, abs=1e-6), (
            f"grad wrt arg {i}"
        )


def test_polynomial():
    def f(x):
        return 3.0 * x * x + 2.0 * x + 1.0

    check_grad(f, 2.0)
    check_grad(f, -1.5)
    assert gradient(f, 2.0) == pytest.approx(14.0)


def test_two_arguments():
    def f(x, y):
        return x * y + x / y

    check_grad(f, 2.0, 3.0)
    check_grad(f, -1.0, 0.5)


def test_wrt_selection():
    def f(x, y):
        return x * x * y

    assert gradient(f, 3.0, 2.0, wrt=0) == pytest.approx(12.0)
    assert gradient(f, 3.0, 2.0, wrt=1) == pytest.approx(9.0)
    gx, gy = gradient(f, 3.0, 2.0)
    assert (gx, gy) == (pytest.approx(12.0), pytest.approx(9.0))


def test_value_and_gradient():
    def f(x):
        return x * x

    value, grad = value_and_gradient(f, 3.0)
    assert value == 9.0
    assert grad == pytest.approx(6.0)


def test_transcendentals():
    def f(x):
        return exp(x) + log(x) + sin(x) * cos(x) + tanh(x) + sqrt(x)

    check_grad(f, 0.7)
    check_grad(f, 2.3)


def test_math_module_functions():
    def f(x):
        return math.exp(math.sin(x)) * math.cos(x)

    check_grad(f, 0.4)


def test_sigmoid_and_relu():
    def f(x):
        return sigmoid(x) + relu(x - 1.0) * 2.0

    check_grad(f, 2.0)
    check_grad(f, -2.0)


def test_division_and_negation():
    def f(x, y):
        return -x / (y * y) + 1.0 / x

    check_grad(f, 2.0, 3.0)


def test_power():
    def f(x):
        return x**3 + x**0.5

    check_grad(f, 4.0)


def test_shared_subexpression():
    # x used multiple times: adjoints must accumulate.
    def f(x):
        y = x * x
        return y * y + y + x

    check_grad(f, 1.5)
    assert gradient(f, 2.0) == pytest.approx(4 * 8.0 + 4.0 + 1.0)


def test_deep_chain():
    def f(x):
        y = x
        y = y * 1.1 + 0.1
        y = y * 1.1 + 0.1
        y = y * 1.1 + 0.1
        y = y * 1.1 + 0.1
        return y

    check_grad(f, 0.3)
    assert gradient(f, 0.3) == pytest.approx(1.1**4)


def test_tuple_flow():
    def f(x, y):
        pair = (x * y, x + y)
        a, b = pair
        return a * b

    check_grad(f, 2.0, 3.0)


def test_nested_tuples():
    def f(x):
        t = ((x, x * 2.0), x * 3.0)
        inner, c = t
        a, b = inner
        return a + b * c

    check_grad(f, 1.2)


def test_function_call_composition():
    def square(v):
        return v * v

    def f(x):
        return square(square(x)) + square(x + 1.0)

    check_grad(f, 1.3)
    assert gradient(f, 2.0) == pytest.approx(4 * 8.0 + 2 * 3.0)


def test_differentiable_function_called_from_another():
    @differentiable
    def inner(v):
        return v * v * v

    def f(x):
        return inner(x) + inner(2.0 * x)

    check_grad(f, 0.7)


def test_constant_result_warns_but_zero_gradient():
    def f(x):
        return 7.0

    assert gradient(f, 3.0) == 0.0


def test_abs_and_minmax():
    def f(x, y):
        return abs(x) + min(x, y) + max(x * 2.0, y)

    check_grad(f, 3.0, 1.0)
    check_grad(f, -3.0, 1.0)


def test_int_argument_mixed():
    def f(x, n):
        return x * float(n)

    assert gradient(f, 2.0, 3, wrt=0) == pytest.approx(3.0)


def test_gradient_of_nonscalar_errors():
    def f(x):
        return (x, x)

    from repro.errors import ReproError

    with pytest.raises(ReproError, match="scalar"):
        gradient(f, 1.0)
