"""Fault injection for the process backend: crashes, raises, bad payloads.

The contracts under test (ISSUE: worker death must be survivable):

* a worker SIGKILLed **mid-step** surfaces exactly one replica-id-ordered
  :class:`WorkerCrash` after every sibling has drained;
* a replica *raising* mid-step surfaces an ordered :class:`ReplicaError`,
  also after the drain;
* either way, **no shared-memory segment survives the failed step**
  (proven by name: reattaching must fail), and the trainer is usable on
  the very next step — dead workers respawn, restore a survivor's
  snapshot, and the pod returns to bit-exact lockstep with the serial
  oracle.

Faults are injected by patching the module-global ``_materialize`` hook
*before* the trainer forks its workers (children inherit the patch) and
arming it through a flag file, so each fault fires deterministically
inside a chosen replica at a chosen step.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.nn import MLP, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.parallel import (
    ParallelDataParallelTrainer,
    ReplicaError,
    WorkerCrash,
    current_worker_replica,
    fork_supported,
    registered_segments,
    segment_exists,
)
from repro.runtime.parallel import trainer as trainer_mod

pytestmark = pytest.mark.skipif(
    not fork_supported(), reason="process backend needs the fork start method"
)

N_REPLICAS = 3


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


def _make(backend="process"):
    return ParallelDataParallelTrainer(
        lambda device: MLP.create(6, [8], 4, device=device, seed=0),
        lambda: SGD(learning_rate=0.1),
        N_REPLICAS,
        backend=backend,
    )


def _batch():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((6, 6)).astype(np.float32)
    y = np.eye(4, dtype=np.float32)[rng.integers(0, 4, 6)]
    return x, y


def _install_fault(monkeypatch, tmp_path, replicas, action):
    """Patch ``_materialize`` so chosen replicas fault while ``flag`` exists.

    Must run before the trainer is constructed: workers fork at
    construction (and at respawn) and inherit whatever is patched then.
    Siblings record a witness file proving they really ran the faulting
    step (the drain guarantee).
    """
    flag = tmp_path / "armed"
    original = trainer_mod._materialize

    def patched(device, tensors):
        replica = current_worker_replica()
        if replica is not None and flag.exists():
            if replica in replicas:
                if action == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                raise RuntimeError(f"injected failure in replica {replica}")
            (tmp_path / f"witness-{replica}").touch()
        return original(device, tensors)

    monkeypatch.setattr(trainer_mod, "_materialize", patched)
    return flag


def _assert_lockstep(proc, serial):
    oracle = serial.weights_bytes(0)
    for replica in range(N_REPLICAS):
        assert proc.weights_bytes(replica) == oracle, (
            f"replica {replica} fell out of lockstep"
        )


def test_sigkill_mid_step_surfaces_ordered_crash_and_cleans_up(
    monkeypatch, tmp_path
):
    flag = _install_fault(monkeypatch, tmp_path, {1}, "kill")
    proc, serial = _make("process"), _make("serial")
    x, y = _batch()
    try:
        # A clean step first, so an exchange (and its segments) exists.
        s0 = serial.step(_loss, serial.replicate_batch(x, y))
        p0 = proc.step(_loss, proc.replicate_batch(x, y))
        assert p0.losses == s0.losses
        names = proc.segment_names()
        assert names and all(segment_exists(n) for n in names)

        flag.touch()
        with pytest.raises(WorkerCrash) as exc_info:
            proc.step(_loss, proc.replicate_batch(x, y))
        assert exc_info.value.replica == 1

        # Every sibling drained before the raise...
        for replica in (0, 2):
            assert (tmp_path / f"witness-{replica}").exists(), replica
        # ...and no segment survived the failed step (reattach by name
        # must fail), with the registry bookkeeping agreeing.
        assert proc.segment_names() == []
        assert not any(segment_exists(n) for n in names)
        assert registered_segments() == ()

        # Disarm; the next steps respawn replica 1, restore it from a
        # survivor, and return the pod to bit-exact lockstep.
        flag.unlink()
        for _ in range(2):
            s = serial.step(_loss, serial.replicate_batch(x, y))
            p = proc.step(_loss, proc.replicate_batch(x, y))
            assert p.losses == s.losses
            for mine, ref in zip(p.averaged_leaves, s.averaged_leaves):
                if isinstance(ref, float):
                    assert mine == ref
                else:
                    assert mine.tobytes() == ref.tobytes()
        _assert_lockstep(proc, serial)
    finally:
        proc.shutdown()
        serial.shutdown()
    assert registered_segments() == ()


def test_multiple_deaths_raise_the_lowest_replica_first(monkeypatch, tmp_path):
    flag = _install_fault(monkeypatch, tmp_path, {1, 2}, "kill")
    proc = _make("process")
    x, y = _batch()
    try:
        flag.touch()
        with pytest.raises(WorkerCrash) as exc_info:
            proc.step(_loss, proc.replicate_batch(x, y))
        assert exc_info.value.replica == 1  # ordered: min of the dead
        assert sorted(proc.pool.dead_replicas()) == [1, 2]
        assert registered_segments() == ()

        flag.unlink()
        stats = proc.step(_loss, proc.replicate_batch(x, y))
        assert len(stats.losses) == N_REPLICAS
    finally:
        proc.shutdown()
    assert registered_segments() == ()


def test_raising_replica_surfaces_ordered_replica_error(monkeypatch, tmp_path):
    flag = _install_fault(monkeypatch, tmp_path, {2}, "raise")
    proc, serial = _make("process"), _make("serial")
    x, y = _batch()
    try:
        s0 = serial.step(_loss, serial.replicate_batch(x, y))
        p0 = proc.step(_loss, proc.replicate_batch(x, y))
        assert p0.losses == s0.losses
        names = proc.segment_names()

        flag.touch()
        with pytest.raises(ReplicaError) as exc_info:
            proc.step(_loss, proc.replicate_batch(x, y))
        assert exc_info.value.replica == 2
        assert exc_info.value.exc_type == "RuntimeError"
        assert "injected failure in replica 2" in str(exc_info.value)

        # Siblings drained; the raise did not kill anyone.
        for replica in (0, 1):
            assert (tmp_path / f"witness-{replica}").exists(), replica
        assert proc.pool.dead_replicas() == []
        # Exchange torn down all the same: segments never survive a
        # failed step.
        assert proc.segment_names() == []
        assert not any(segment_exists(n) for n in names)
        assert registered_segments() == ()

        flag.unlink()
        s = serial.step(_loss, serial.replicate_batch(x, y))
        p = proc.step(_loss, proc.replicate_batch(x, y))
        assert p.losses == s.losses
        _assert_lockstep(proc, serial)
    finally:
        proc.shutdown()
        serial.shutdown()
    assert registered_segments() == ()


def test_worker_death_between_steps_heals_transparently(monkeypatch, tmp_path):
    proc, serial = _make("process"), _make("serial")
    x, y = _batch()
    try:
        s0 = serial.step(_loss, serial.replicate_batch(x, y))
        p0 = proc.step(_loss, proc.replicate_batch(x, y))
        assert p0.losses == s0.losses

        victim = proc.worker_pid(1)
        os.kill(victim, signal.SIGKILL)
        for _ in range(100):  # is_alive flips once the child is reaped
            if not proc.pool.alive(1):
                break
            time.sleep(0.05)
        assert not proc.pool.alive(1)

        # No step was in flight, so the next step heals without raising.
        s1 = serial.step(_loss, serial.replicate_batch(x, y))
        p1 = proc.step(_loss, proc.replicate_batch(x, y))
        assert p1.losses == s1.losses
        assert proc.worker_pid(1) != victim
        _assert_lockstep(proc, serial)
    finally:
        proc.shutdown()
        serial.shutdown()
    assert registered_segments() == ()


def test_unpicklable_loss_raises_helpful_typeerror():
    proc = _make("process")
    x, y = _batch()
    try:
        with pytest.raises(TypeError, match="module level"):
            proc.step(
                lambda model, bx, by: softmax_cross_entropy(model(bx), by),
                proc.replicate_batch(x, y),
            )
        # The pool survives a refused payload; a proper loss still works.
        stats = proc.step(_loss, proc.replicate_batch(x, y))
        assert len(stats.losses) == N_REPLICAS
    finally:
        proc.shutdown()
    assert registered_segments() == ()
