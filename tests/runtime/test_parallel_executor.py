"""MultiReplicaExecutor and ParallelDataParallelTrainer unit tests.

The executor's contract: replica-id ordering regardless of completion
order, full drain before exception propagation, serial mode semantically
identical to parallel.  The trainer's contract: lockstep determinism —
identical shards on a power-of-two replica count stay bit-identical to a
single replica, and the serial and threaded executors produce the same
bits.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.nn import softmax_cross_entropy
from repro.runtime.parallel import (
    BACKENDS,
    MultiReplicaExecutor,
    ParallelDataParallelTrainer,
    ReplicaError,
    WorkerCrash,
    fork_supported,
    resolve_backend,
)

needs_fork = pytest.mark.skipif(
    not fork_supported(), reason="process backend needs the fork start method"
)

# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


def test_results_in_replica_order_despite_reverse_completion():
    with MultiReplicaExecutor(4) as executor:
        def staggered(i):
            time.sleep(0.02 * (4 - i))  # replica 3 finishes first
            return i * 10

        assert executor.run(staggered) == [0, 10, 20, 30]


def test_serial_and_parallel_agree():
    fn = lambda i: (i, i * i)  # noqa: E731
    with MultiReplicaExecutor(5, serial=True) as serial, MultiReplicaExecutor(
        5
    ) as parallel:
        assert serial.run(fn) == parallel.run(fn)


def test_single_replica_degrades_to_serial():
    executor = MultiReplicaExecutor(1)
    assert executor.serial
    assert executor.run(lambda i: i + 1) == [1]


def test_needs_a_replica():
    with pytest.raises(ValueError):
        MultiReplicaExecutor(0)


def test_first_exception_in_id_order_propagates():
    with MultiReplicaExecutor(4) as executor:
        def explode(i):
            if i in (1, 3):
                raise RuntimeError(f"replica {i}")
            return i

        with pytest.raises(RuntimeError, match="replica 1"):
            executor.run(explode)


def test_all_replicas_drain_before_raising():
    """A failing replica must not abandon its siblings mid-flight."""
    finished = []
    lock = threading.Lock()
    with MultiReplicaExecutor(4) as executor:
        def work(i):
            if i == 0:
                raise RuntimeError("fast failure")
            time.sleep(0.03)
            with lock:
                finished.append(i)
            return i

        with pytest.raises(RuntimeError):
            executor.run(work)
    assert sorted(finished) == [1, 2, 3]


def test_runs_are_actually_concurrent():
    """All four replicas must be in flight at once (thread pool, not a loop)."""
    barrier = threading.Barrier(4, timeout=10)
    with MultiReplicaExecutor(4) as executor:
        assert executor.run(lambda i: barrier.wait() is not None) == [True] * 4


def test_executor_reusable_across_runs():
    with MultiReplicaExecutor(3) as executor:
        assert executor.run(lambda i: i) == [0, 1, 2]
        assert executor.run(lambda i: -i) == [0, -1, -2]


# ---------------------------------------------------------------------------
# The backend knob
# ---------------------------------------------------------------------------


def test_backend_resolution():
    assert BACKENDS == ("serial", "thread", "process")
    assert resolve_backend(4, None, False) == "thread"
    assert resolve_backend(4, None, True) == "serial"
    assert resolve_backend(4, "process", False) == "process"
    # An explicit backend outranks the legacy serial flag.
    assert resolve_backend(4, "thread", True) == "thread"
    # One replica cannot overlap anything.
    assert resolve_backend(1, "process", False) == "serial"
    with pytest.raises(ValueError, match="unknown executor backend"):
        resolve_backend(4, "gpu", False)
    with pytest.raises(ValueError):
        MultiReplicaExecutor(2, backend="gpu")


@pytest.mark.parametrize("backend", BACKENDS)
def test_backends_share_the_run_contract(backend):
    if backend == "process" and not fork_supported():
        pytest.skip("needs fork")
    with MultiReplicaExecutor(3, backend=backend) as executor:
        assert executor.backend == backend
        assert executor.run(lambda i: i * 10) == [0, 10, 20]
        assert executor.run(lambda i: -i) == [0, -1, -2]  # reusable


@needs_fork
def test_process_results_in_replica_order_despite_reverse_completion():
    with MultiReplicaExecutor(3, backend="process") as executor:
        def staggered(i):
            time.sleep(0.02 * (3 - i))  # replica 2's child finishes first
            return (i, os.getpid())

        results = executor.run(staggered)
    assert [r[0] for r in results] == [0, 1, 2]
    pids = {r[1] for r in results}
    assert len(pids) == 3 and os.getpid() not in pids


@needs_fork
def test_process_first_error_in_id_order_after_draining(tmp_path):
    with MultiReplicaExecutor(4, backend="process") as executor:
        def work(i):
            if i in (1, 3):
                raise RuntimeError(f"replica {i} exploded")
            (tmp_path / f"done-{i}").write_text("x")
            return i

        with pytest.raises(ReplicaError) as exc_info:
            executor.run(work)
    assert exc_info.value.replica == 1
    assert exc_info.value.exc_type == "RuntimeError"
    assert "replica 1 exploded" in str(exc_info.value)
    # The healthy siblings drained to completion before the raise.
    assert (tmp_path / "done-0").exists()
    assert (tmp_path / "done-2").exists()


@needs_fork
def test_process_killed_child_surfaces_worker_crash():
    with MultiReplicaExecutor(3, backend="process") as executor:
        def die(i):
            if i == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            return i

        with pytest.raises(WorkerCrash) as exc_info:
            executor.run(die)
    assert exc_info.value.replica == 1


@needs_fork
def test_process_closures_cross_fork_without_pickling():
    sentinel = {"value": 41}  # closures (even unpicklable ones) fork across

    def unpicklable(i, _lock=threading.Lock()):
        return sentinel["value"] + 1 + i

    with MultiReplicaExecutor(2, backend="process") as executor:
        assert executor.run(lambda i: unpicklable(i)) == [42, 43]


# ---------------------------------------------------------------------------
# Trainer lockstep determinism
# ---------------------------------------------------------------------------


def _make_trainer(n_replicas, **kwargs):
    from repro.nn import MLP
    from repro.optim import SGD

    return ParallelDataParallelTrainer(
        lambda device: MLP.create(6, [8], 4, device=device, seed=0),
        lambda: SGD(learning_rate=0.1),
        n_replicas,
        **kwargs,
    )


def _batch():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((8, 6)).astype(np.float32)
    y = np.eye(4, dtype=np.float32)[rng.integers(0, 4, 8)]
    return x, y


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


def _loss_fn():
    return _loss


def _weight_bytes(model) -> bytes:
    from repro.optim.tree import tree_map

    chunks = []

    def grab(leaf):
        if hasattr(leaf, "numpy"):
            chunks.append(np.asarray(leaf.numpy()).tobytes())
        return leaf

    tree_map(grab, model)
    return b"|".join(chunks)


def _train(trainer, steps=3):
    x, y = _batch()
    shards = trainer.replicate_batch(x, y)
    loss_fn = _loss_fn()
    stats = None
    for _ in range(steps):
        stats = trainer.step(loss_fn, shards)
    return stats


def test_replicas_stay_bit_identical():
    trainer = _make_trainer(4)
    stats = _train(trainer)
    assert len(set(stats.losses)) == 1  # identical shards -> identical loss
    reference = _weight_bytes(trainer.models[0])
    for model in trainer.models[1:]:
        assert _weight_bytes(model) == reference
    trainer.shutdown()


def test_pod_matches_single_replica_bitwise():
    """Power-of-two averaging of identical gradients is exact in f32: the
    4-replica pod's weights equal a lone replica's, bit for bit."""
    pod = _make_trainer(4)
    single = _make_trainer(1)
    _train(pod)
    _train(single)
    assert _weight_bytes(pod.models[0]) == _weight_bytes(single.models[0])
    pod.shutdown()
    single.shutdown()


def test_serial_and_threaded_trainers_agree_bitwise():
    threaded = _make_trainer(4)
    serial = _make_trainer(4, serial=True)
    threaded_stats = _train(threaded)
    serial_stats = _train(serial)
    assert _weight_bytes(threaded.models[0]) == _weight_bytes(serial.models[0])
    assert threaded_stats.losses == serial_stats.losses
    # The simulated clock merge is scheduling-independent too.
    assert threaded_stats.gradient_bytes == serial_stats.gradient_bytes
    threaded.shutdown()
    serial.shutdown()


def test_step_stats_surface():
    trainer = _make_trainer(2, pod_size=16)
    stats = _train(trainer, steps=1)
    assert trainer.pod.n_cores == 16  # pod decoupled from real replicas
    assert len(stats.losses) == 2
    assert len(stats.replica_compute_times) == 2
    assert len(stats.device_stats) == 2
    assert stats.gradient_bytes == sum(stats.grad_leaf_bytes)
    assert stats.gradient_bytes > 0
    assert stats.step_time == pytest.approx(
        stats.compute_time + stats.allreduce_time
    )
    assert stats.loss == pytest.approx(sum(stats.losses) / 2)
    total, per_core = trainer.throughput(stats, per_replica_batch=8)
    assert total == pytest.approx(per_core * 16)
    trainer.shutdown()


def test_async_compile_trainer_matches_sync_bitwise():
    sync = _make_trainer(2)
    async_ = _make_trainer(2, async_compile=True)
    _train(sync)
    _train(async_)
    async_.wait_for_compiles()
    assert _weight_bytes(async_.models[0]) == _weight_bytes(sync.models[0])
    stats = async_.async_stats()
    assert stats["submitted"] >= 1
    assert stats["failed"] == 0
    assert stats["compile_inflight"] == 0
    sync.shutdown()
    async_.shutdown()


def test_trainer_backend_knob():
    trainer = _make_trainer(2, backend="serial")
    assert trainer.backend == "serial"
    trainer.shutdown()
    legacy = _make_trainer(2, serial=True)
    assert legacy.backend == "serial"
    legacy.shutdown()
    with pytest.raises(ValueError, match="unknown"):
        _make_trainer(2, backend="mpi")


@needs_fork
def test_process_trainer_rejects_async_compile():
    with pytest.raises(ValueError, match="async_compile"):
        _make_trainer(2, backend="process", async_compile=True)


@needs_fork
def test_process_trainer_matches_thread_trainer_bitwise():
    proc = _make_trainer(4, backend="process")
    thread = _make_trainer(4, backend="thread")
    proc_stats = _train(proc)
    thread_stats = _train(thread)
    assert proc_stats.losses == thread_stats.losses
    assert proc_stats.device_stats == thread_stats.device_stats
    for replica in range(4):
        assert proc.weights_bytes(replica) == thread.weights_bytes(replica)
    proc.shutdown()
    thread.shutdown()


def test_worker_introspection_needs_process_backend():
    trainer = _make_trainer(2, backend="thread")
    with pytest.raises(ValueError, match="worker"):
        trainer.worker_pid(0)
    assert trainer.segment_names() == []
    trainer.shutdown()


def test_shard_count_is_checked():
    trainer = _make_trainer(2)
    x, y = _batch()
    with pytest.raises(ValueError):
        trainer.place_shards([(x, y)])
    with pytest.raises(ValueError):
        trainer.step(_loss_fn(), trainer.replicate_batch(x, y)[:1])
    trainer.shutdown()
