"""Instrumented locks, the dynamic order witness, and guarded-state races.

Covers three layers: the :mod:`repro.locks` primitives themselves, the
witness workloads cross-checked against the static lock-order graph, and
stress regressions for the runtime fields the lockset analysis proved
guarded (memory tracker, plan cache, compiler stats).
"""

import threading

import pytest

from repro.nn import softmax_cross_entropy

from repro.locks import (
    InstrumentedRLock,
    LOCK_REGISTRY,
    held_locks,
    named_rlock,
    reset_witness,
    witness_edges,
)


@pytest.fixture(autouse=True)
def _clean_witness():
    reset_witness()
    yield
    reset_witness()


# ---------------------------------------------------------------------------
# InstrumentedRLock semantics
# ---------------------------------------------------------------------------


class TestInstrumentedRLock:
    def test_named_lock_registers_its_class(self):
        before = LOCK_REGISTRY["test.registry"]
        named_rlock("test.registry")
        named_rlock("test.registry")
        assert LOCK_REGISTRY["test.registry"] == before + 2

    def test_anonymous_name_rejected(self):
        with pytest.raises(ValueError):
            named_rlock("")

    def test_held_by_current_thread(self):
        lock = named_rlock("test.held")
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            assert "test.held" in held_locks()
        assert not lock.held_by_current_thread()
        assert "test.held" not in held_locks()

    def test_hold_is_per_thread(self):
        lock = named_rlock("test.per-thread")
        seen = {}
        with lock:
            thread = threading.Thread(
                target=lambda: seen.update(other=lock.held_by_current_thread())
            )
            thread.start()
            thread.join()
        assert seen["other"] is False

    def test_reentrant_acquire_records_no_self_edge(self):
        lock = named_rlock("test.reentrant")
        with lock:
            with lock:
                pass
        assert witness_edges() == frozenset()

    def test_nested_distinct_locks_record_an_edge(self):
        outer = named_rlock("test.outer")
        inner = named_rlock("test.inner")
        with outer:
            with inner:
                pass
        assert ("test.outer", "test.inner") in witness_edges()
        assert ("test.inner", "test.outer") not in witness_edges()

    def test_same_class_instances_record_no_edge(self):
        # Two instances of one lock class are one graph vertex.
        a = InstrumentedRLock("test.class")
        b = InstrumentedRLock("test.class")
        with a:
            with b:
                pass
        assert witness_edges() == frozenset()

    def test_manual_acquire_release(self):
        lock = named_rlock("test.manual")
        assert lock.acquire()
        assert lock.held_by_current_thread()
        lock.release()
        assert not lock.held_by_current_thread()

    def test_reset_clears_edges(self):
        with named_rlock("test.r1"):
            with named_rlock("test.r2"):
                pass
        assert witness_edges()
        reset_witness()
        assert witness_edges() == frozenset()


# ---------------------------------------------------------------------------
# Witness workloads vs the static lock-order graph
# ---------------------------------------------------------------------------


def _witness_loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


class TestWitnessCrossCheck:
    def test_consistent_pair_stress_edges_covered_by_static(self):
        from repro.analysis.concurrency.lockorder import (
            check_static_covers_dynamic,
        )
        from repro.analysis.concurrency.lockset import analyze_locksets
        from repro.analysis.concurrency.models import CORPUS_TARGET
        from repro.analysis.concurrency.witness import run_consistent_pair

        static = analyze_locksets(CORPUS_TARGET).edge_set()
        report = run_consistent_pair(iterations=100)
        # Two barriered threads hammered the pair; only the consistent
        # A->B nesting was ever observed, and the static graph predicted it.
        assert report.edges == {("corpus.lock_a", "corpus.lock_b")}
        assert report.acquisitions["corpus.lock_a"] >= 200
        ok, missing = check_static_covers_dynamic(static, report.edges)
        assert ok, f"unpredicted dynamic edges: {missing}"

    def test_inverted_pair_witness_completes_the_cycle(self):
        from repro.analysis.concurrency.lockorder import build_lock_order
        from repro.analysis.concurrency.lockset import analyze_locksets
        from repro.analysis.concurrency.models import CORPUS_TARGET
        from repro.analysis.concurrency.witness import run_inverted_pair

        report = run_inverted_pair()
        assert ("corpus.lock_a", "corpus.lock_b") in report.edges
        assert ("corpus.lock_b", "corpus.lock_a") in report.edges

        order = build_lock_order(analyze_locksets(CORPUS_TARGET), report.edges)
        assert not order.acyclic
        assert ("corpus.lock_a", "corpus.lock_b") in order.cycles
        diag = next(d for d in order.diagnostics if "deadlock" in d.message)
        assert diag.is_error
        assert diag.location.line > 0
        # Every witnessed edge was statically predicted: the hazard was
        # knowable before a thread ever blocked.
        assert order.cross_check_ok

    def test_process_trainer_locks_introduce_no_order_edges(self):
        """The process backend's two new lock classes stay edge-free.

        A real process-trainer step acquires both ``runtime.parallel.shm``
        (segment registry, exchange tokens) and ``runtime.parallel.pool``
        (worker lifecycle) on the driver; the witness must observe the
        acquisitions but record **no** lock-order edge touching either —
        matching the static graph, which is empty.
        """
        import numpy as np

        from repro.analysis.concurrency.inventory import RUNTIME_TARGET
        from repro.analysis.concurrency.lockorder import (
            check_static_covers_dynamic,
        )
        from repro.analysis.concurrency.lockset import analyze_locksets
        from repro.locks import WITNESS
        from repro.nn import MLP
        from repro.optim import SGD
        from repro.runtime.parallel import (
            ParallelDataParallelTrainer,
            fork_supported,
        )

        if not fork_supported():
            pytest.skip("process backend needs the fork start method")
        trainer = ParallelDataParallelTrainer(
            lambda device: MLP.create(4, [4], 2, device=device, seed=0),
            lambda: SGD(learning_rate=0.1),
            2,
            backend="process",
        )
        try:
            rng = np.random.default_rng(0)
            x = rng.standard_normal((4, 4)).astype(np.float32)
            y = np.eye(2, dtype=np.float32)[rng.integers(0, 2, 4)]
            for _ in range(2):
                trainer.step(_witness_loss, trainer.replicate_batch(x, y))
        finally:
            trainer.shutdown()
        acquisitions = dict(WITNESS.acquisitions)
        edges = WITNESS.edge_set()
        for name in ("runtime.parallel.shm", "runtime.parallel.pool"):
            assert acquisitions.get(name, 0) > 0, name
            assert not any(name in edge for edge in edges), (name, edges)
        static = analyze_locksets(RUNTIME_TARGET).edge_set()
        ok, missing = check_static_covers_dynamic(static, edges)
        assert ok, f"unpredicted dynamic edges: {missing}"

    def test_runtime_workloads_never_nest_engine_locks(self):
        from repro.analysis.concurrency.inventory import RUNTIME_TARGET
        from repro.analysis.concurrency.lockorder import (
            check_static_covers_dynamic,
        )
        from repro.analysis.concurrency.lockset import analyze_locksets
        from repro.analysis.concurrency.witness import run_runtime_witness

        report = run_runtime_witness()
        # The workloads really exercised the engine's lock classes...
        for name in ("runtime.memory", "hlo.compiler.cache",
                     "hlo.async_compiler", "core.plan_cache"):
            assert report.acquisitions.get(name, 0) > 0, name
        # ...and every observed nesting (if any — finalizers may fire
        # under a lock) is either statically predicted or into the leaf.
        static = analyze_locksets(RUNTIME_TARGET).edge_set()
        ok, missing = check_static_covers_dynamic(static, report.edges)
        assert ok, f"unpredicted dynamic edges: {missing}"


# ---------------------------------------------------------------------------
# Regression stress for the newly guarded runtime state
# ---------------------------------------------------------------------------


def _hammer(workers, iterations=200):
    barrier = threading.Barrier(len(workers))
    errors = []

    def wrap(fn):
        def run():
            barrier.wait()
            try:
                for _ in range(iterations):
                    fn()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestGuardedStateUnderStress:
    def test_memory_tracker_reset_races_allocate(self):
        from repro.runtime.memory import MemoryTracker

        tracker = MemoryTracker()
        _hammer([lambda: tracker.allocate(64), tracker.reset])
        # Reset must never interleave mid-allocate: after a final reset the
        # counters are mutually consistent (peak >= live, both >= 0).
        tracker.reset()
        assert tracker.live_bytes == 0
        assert tracker.peak_bytes == 0
        assert tracker.allocation_count == 0

    def test_track_scopes_race_allocations(self):
        from repro.runtime import memory

        def scoped():
            with memory.track() as t:
                memory.allocate(32)
                assert t.live_bytes >= 32
                memory.free(32)

        _hammer([scoped, lambda: memory.allocate(16), lambda: memory.free(16)],
                iterations=100)

    def test_plan_invalidation_races_synthesis(self):
        from repro.core.synthesis import invalidate_plans_for, vjp_plan
        from repro.sil import lower_function

        def f(x):
            return x * x + 3.0 * x

        func = lower_function(f)

        def build():
            plan = vjp_plan(func, (0,))
            assert plan.rules  # fully built, never a stranded half-plan

        _hammer([build, lambda: invalidate_plans_for(func)], iterations=50)
        # The cache converges to a usable plan afterwards.
        assert vjp_plan(func, (0,)).rules

    def test_compiler_stats_reset_races_compiles(self):
        from repro.hlo.compiler import STATS, compile_module
        from repro.hlo.ir import HloComputation, HloInstruction, HloModule, Shape

        def module():
            comp = HloComputation("entry")
            p0 = comp.add(HloInstruction(
                "parameter", [], Shape((2, 2)), parameter_number=0
            ))
            comp.set_root(comp.add(
                HloInstruction("negate", [p0], Shape((2, 2)))
            ))
            return HloModule("stress", comp)

        _hammer(
            [lambda: compile_module(module(), use_cache=False), STATS.reset],
            iterations=30,
        )
        STATS.reset()
        assert STATS.compiles == 0
