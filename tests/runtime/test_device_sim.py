"""Simulated clock, dispatch pipelining, all-reduce scaling, memory."""

import numpy as np
import pytest

from repro.runtime import (
    GTX_1080,
    S4TF_EAGER,
    TORCH_LIKE,
    TPU_V3_CORE,
    Dispatcher,
    PodSimulator,
    SimDevice,
    get_kernel,
    track,
)


def test_kernel_time_roofline():
    # Compute-bound: large matmul.
    t_big = GTX_1080.kernel_time(flops=1e12, traffic_bytes=1e6)
    assert t_big == pytest.approx(GTX_1080.kernel_launch_overhead + 1e12 / 8.9e12)
    # Memory-bound: elementwise op.
    t_mem = GTX_1080.kernel_time(flops=1e6, traffic_bytes=1e9)
    assert t_mem == pytest.approx(GTX_1080.kernel_launch_overhead + 1e9 / 320e9)


def test_dispatch_computes_and_accounts():
    dev = SimDevice(GTX_1080)
    disp = Dispatcher(dev, S4TF_EAGER)
    x = np.ones((4, 4), dtype=np.float32)
    out = disp.dispatch(get_kernel("add"), (x, x))
    np.testing.assert_array_equal(out, 2 * x)
    assert disp.ops_dispatched == 1
    assert dev.stats.kernels_launched == 1
    assert disp.host_time == pytest.approx(S4TF_EAGER.per_op_overhead)
    assert dev.busy_until > disp.host_time  # device finishes after dispatch


def test_host_runs_ahead_until_sync():
    dev = SimDevice(GTX_1080)
    disp = Dispatcher(dev, TORCH_LIKE)
    x = np.ones((512, 512), dtype=np.float32)
    mm = get_kernel("matmul")
    for _ in range(10):
        disp.dispatch(mm, (x, x))
    # Host time only reflects dispatch overhead; device queue is behind.
    assert disp.host_time == pytest.approx(10 * TORCH_LIKE.per_op_overhead)
    assert dev.busy_until > disp.host_time
    synced = disp.sync()
    assert synced == dev.busy_until


def test_eager_overhead_dominates_small_ops():
    """With tiny tensors, per-op dispatch overhead decides throughput: the
    S4TF eager engine (TF-Eager dispatch path) is much slower than the
    PyTorch-like core — the Table 3 mechanism."""

    def run(engine):
        dev = SimDevice(GTX_1080)
        disp = Dispatcher(dev, engine)
        x = np.ones((8, 8), dtype=np.float32)
        add = get_kernel("add")
        for _ in range(100):
            disp.dispatch(add, (x, x))
        return disp.sync()

    slow = run(S4TF_EAGER)
    fast = run(TORCH_LIKE)
    assert slow / fast > 3.0


def test_fused_launch_cheaper_than_sequence():
    dev = SimDevice(GTX_1080)
    n = 1_000_000
    shapes = [(n,)] * 2
    add = get_kernel("add")
    t_seq = 0.0
    for _ in range(8):
        t_seq = dev.launch(add, (n,), shapes, 0.0)
    dev2 = SimDevice(GTX_1080)
    flops = 8 * n
    traffic = 3 * n * 4  # inputs + output only, no intermediates
    t_fused = dev2.launch_fused(8, flops, traffic, 0.0)
    assert t_fused < t_seq / 4


def test_allreduce_scales_sublinearly():
    nbytes = 100e6  # ~ResNet-50 gradient size
    t16 = TPU_V3_CORE.allreduce_time(nbytes, 16)
    t128 = TPU_V3_CORE.allreduce_time(nbytes, 128)
    # Ring all-reduce transfer volume saturates at 2*nbytes; per-core cost
    # grows only through latency terms.
    assert t128 < t16 * 2.5
    assert TPU_V3_CORE.allreduce_time(nbytes, 1) == 0.0


def test_pod_per_core_throughput_nearly_flat():
    pod_sizes = [16, 32, 128]
    per_core = []
    for n in pod_sizes:
        pod = PodSimulator(TPU_V3_CORE, n)
        per_core.append(
            pod.per_core_throughput(
                per_replica_compute=0.02, gradient_bytes=100e6, per_replica_batch=16
            )
        )
    # Table 1 shape: modest degradation (within ~10%) from 16 to 128 cores.
    assert per_core[0] > per_core[1] > per_core[2]
    assert per_core[2] > 0.9 * per_core[0]


def test_memory_tracking():
    dev = SimDevice(GTX_1080)
    with track() as t:
        dev.allocate((1024,))
        dev.allocate((1024,))
        dev.free((1024,))
    assert t.peak_bytes == 2 * 1024 * 4
    assert t.live_bytes == 1024 * 4
    assert dev.memory.peak_bytes == 2 * 1024 * 4


def test_device_reset():
    dev = SimDevice(GTX_1080)
    disp = Dispatcher(dev, TORCH_LIKE)
    x = np.ones((4,), dtype=np.float32)
    disp.dispatch(get_kernel("neg"), (x,))
    disp.reset()
    assert disp.host_time == 0.0
    assert dev.stats.kernels_launched == 0
    assert dev.busy_until == 0.0
