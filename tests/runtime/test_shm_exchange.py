"""Property tests for the shared-memory gradient exchange.

The exchange is the process backend's numerics-critical core: gradient
bits cross an address-space boundary through it, and the differential
harness's bit-identity guarantee holds only if a write/read round trip
never moves an ulp.  These tests pin that property across dtypes
(including f16 and bf16-as-u16 payloads the trainer does not use yet),
degenerate shapes (0-d, zero-length), and non-contiguous sources, and
pin the isolation property: two live exchanges — same layout, same or
different processes — can never alias a segment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.parallel import (
    GradientExchange,
    LeafSpec,
    MultiReplicaExecutor,
    WorkerAttachment,
    fork_supported,
    registered_segments,
    segment_exists,
)

#: bf16 has no NumPy dtype; its 16-bit payloads ride as uint16 and the
#: round trip must preserve them exactly (no float reinterpretation).
DTYPES = ("float16", "uint16", "float32", "float64")
SHAPES = ((), (0,), (5,), (3, 4), (2, 0, 3), (2, 3, 4))


def _seeded(dtype: str, shape, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if dtype == "uint16":
        return rng.integers(0, 2**16, size=shape, dtype=np.uint16)
    return rng.standard_normal(shape).astype(dtype)


# ---------------------------------------------------------------------------
# Bit-exact round trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("shape", SHAPES, ids=str)
def test_round_trip_is_bit_identical(dtype, shape):
    spec = LeafSpec("array", dtype, shape)
    with GradientExchange(2, [spec]) as exchange:
        sources = [_seeded(dtype, shape, seed) for seed in (1, 2)]
        for replica, source in enumerate(sources):
            attachment = WorkerAttachment(exchange.worker_payload(replica))
            try:
                attachment.write_leaves([source])
            finally:
                attachment.close()
        for replica, source in enumerate(sources):
            got = exchange.grad_view(replica, 0)
            assert got.dtype == source.dtype
            assert got.shape == source.shape
            assert got.tobytes() == source.tobytes()


@pytest.mark.parametrize("dtype", ("float16", "float32", "float64"))
def test_non_contiguous_sources_round_trip(dtype):
    base = _seeded(dtype, (6, 8), 7)
    sources = [
        base.T,            # transposed view
        base[::2],         # strided rows
        base[:, ::-1],     # negative stride
        base[1:4, 2:7:2],  # offset + strided window
    ]
    for source in sources:
        assert not source.flags["C_CONTIGUOUS"]
        spec = LeafSpec("array", dtype, tuple(source.shape))
        with GradientExchange(1, [spec]) as exchange:
            exchange.write(0, 0, source)
            # tobytes() materializes the source in C order — exactly what
            # the contiguous slot must now hold, bit for bit.
            assert exchange.grad_view(0, 0).tobytes() == source.tobytes()


def test_scalar_leaves_average_like_python_floats():
    values = (0.30000000000000004, -1.1e-16, 2.5e8)
    spec = LeafSpec("scalar", "float64", ())
    with GradientExchange(3, [spec]) as exchange:
        for replica, value in enumerate(values):
            exchange.write(replica, 0, value)
        exchange.reduce_mean()
        (got,) = exchange.averaged()
    expected = ((values[0] + values[1]) + values[2]) / 3
    assert isinstance(got, float)
    assert got == expected  # bitwise: same f64 sum order, same divide


def test_reduce_mean_matches_thread_average_bits():
    from repro.runtime.parallel.trainer import _average_leaves

    leaves = [
        [_seeded("float32", (4, 3), 10 * r + j) for j in range(2)]
        + [float(_seeded("float64", (), 100 + r))]
        for r in range(3)
    ]
    expected = _average_leaves(leaves)
    specs = [LeafSpec.for_value(v) for v in leaves[0]]
    with GradientExchange(3, specs) as exchange:
        for replica, row in enumerate(leaves):
            for j, value in enumerate(row):
                exchange.write(replica, j, value)
        exchange.reduce_mean()
        got = exchange.averaged()
    for mine, ref in zip(got, expected, strict=True):
        if isinstance(ref, float):
            assert mine == ref
        else:
            assert mine.tobytes() == np.asarray(ref).tobytes()


def test_worker_reads_back_fresh_averaged_copies():
    spec = LeafSpec("array", "float32", (3,))
    with GradientExchange(2, [spec]) as exchange:
        for replica in range(2):
            exchange.write(replica, 0, _seeded("float32", (3,), replica))
        exchange.reduce_mean()
        attachment = WorkerAttachment(exchange.worker_payload(1))
        try:
            (got,) = attachment.read_averaged()
            (want,) = exchange.averaged()
            assert got.tobytes() == want.tobytes()
            # A fresh copy: mutating the averaged slot afterwards must not
            # reach into a value the worker already consumed.
            exchange.avg_view(0)[...] = 0
            assert got.tobytes() == want.tobytes()
        finally:
            attachment.close()


# ---------------------------------------------------------------------------
# Isolation: concurrent exchanges never alias
# ---------------------------------------------------------------------------


def test_two_live_exchanges_never_alias():
    specs = [LeafSpec("array", "float32", (2, 2))]
    with GradientExchange(2, specs) as a, GradientExchange(2, specs) as b:
        assert not set(a.segment_names()) & set(b.segment_names())
        ones = np.ones((2, 2), dtype=np.float32)
        for replica in range(2):
            a.write(replica, 0, ones * (replica + 1))
            b.write(replica, 0, -ones * (replica + 1))
        for replica in range(2):
            assert (a.grad_view(replica, 0) == replica + 1).all()
            assert (b.grad_view(replica, 0) == -(replica + 1)).all()


@pytest.mark.skipif(not fork_supported(), reason="needs fork")
def test_exchanges_in_concurrent_processes_never_alias():
    specs = [LeafSpec("array", "float32", (4,))]
    with GradientExchange(2, specs) as mine:
        executor = MultiReplicaExecutor(2, backend="process")
        try:
            def child_names(replica: int):
                with GradientExchange(2, specs) as theirs:
                    return theirs.segment_names()

            others = executor.run(child_names)
        finally:
            executor.shutdown()
        name_sets = [set(mine.segment_names())] + [set(n) for n in others]
        for i in range(len(name_sets)):
            for j in range(i + 1, len(name_sets)):
                assert not name_sets[i] & name_sets[j], (i, j)
        # The children unlinked their own segments on exit...
        for names in others:
            assert not any(segment_exists(n) for n in names)
        # ...and could not touch ours.
        assert all(segment_exists(n) for n in mine.segment_names())


# ---------------------------------------------------------------------------
# Lifecycle: registry bookkeeping and deterministic unlinking
# ---------------------------------------------------------------------------


def test_registry_tracks_created_segments():
    spec = LeafSpec("array", "float32", (2,))
    before = set(registered_segments())
    exchange = GradientExchange(3, [spec])
    try:
        names = set(exchange.segment_names())
        assert len(names) == 4  # 3 replica slots + 1 averaged slot
        assert names <= set(registered_segments())
        assert names.isdisjoint(before)
    finally:
        exchange.unlink()
    assert names.isdisjoint(set(registered_segments()))


def test_unlink_makes_reattach_fail():
    spec = LeafSpec("array", "float64", (3, 3))
    exchange = GradientExchange(2, [spec])
    payload = exchange.worker_payload(0)
    names = exchange.segment_names()
    exchange.unlink()
    assert not any(segment_exists(name) for name in names)
    with pytest.raises(FileNotFoundError):
        WorkerAttachment(payload)
    exchange.unlink()  # idempotent


def test_constructor_failure_leaks_nothing():
    before = set(registered_segments())
    with pytest.raises(ValueError):
        GradientExchange(0, [LeafSpec("array", "float32", (1,))])
    with pytest.raises(ValueError):
        GradientExchange(2, [])
    with pytest.raises(ValueError):
        LeafSpec("matrix", "float32", (1,))
    assert set(registered_segments()) == before


def test_leaf_spec_for_value():
    assert LeafSpec.for_value(1.5) == LeafSpec("scalar", "float64", ())
    assert LeafSpec.for_value(3) == LeafSpec("scalar", "float64", ())
    array = np.zeros((2, 5), dtype=np.float32)
    assert LeafSpec.for_value(array) == LeafSpec("array", "float32", (2, 5))
    assert LeafSpec.for_value(array).nbytes == 40
    assert LeafSpec("array", "float64", ()).count == 1
    assert LeafSpec("array", "float16", (0, 4)).nbytes == 0
