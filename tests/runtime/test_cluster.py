"""PodSimulator and all-reduce cost-model unit tests.

Includes the regression for the 1-core pod: ``step_time`` used to charge a
ring all-reduce to a pod with nobody to reduce with; a single core's
gradient "exchange" must cost exactly zero under every schedule.
"""

import pytest

from repro.runtime.cluster import PodSimulator, StepTiming
from repro.runtime.costmodel import (
    SINGLE_SHOT,
    TPU_V3_CORE,
    AllReduceConfig,
    bucket_gradient_bytes,
    overlapped_allreduce_time,
)

GRAD_BYTES = 100e6
LEAVES = [30e6, 10e6, 25e6, 5e6, 20e6, 10e6]  # backward production order


# ---------------------------------------------------------------------------
# n_cores == 1 regression
# ---------------------------------------------------------------------------


def test_single_core_pod_allreduce_is_free():
    pod = PodSimulator(TPU_V3_CORE, n_cores=1)
    timing = pod.step_time(0.25, GRAD_BYTES)
    assert timing.allreduce_time == 0.0
    assert timing.allreduce_total == 0.0
    assert timing.hidden_allreduce == 0.0
    assert timing.total == 0.25


def test_single_core_pod_free_under_every_schedule():
    for config in (SINGLE_SHOT, AllReduceConfig(bucket_bytes=1e6, overlap=True)):
        pod = PodSimulator(TPU_V3_CORE, n_cores=1, allreduce=config)
        timing = pod.step_time(0.1, GRAD_BYTES, grad_leaf_bytes=LEAVES)
        assert timing.allreduce_time == 0.0
        assert timing.total == 0.1


def test_multi_core_pod_allreduce_is_not_free():
    pod = PodSimulator(TPU_V3_CORE, n_cores=2)
    assert pod.step_time(0.25, GRAD_BYTES).allreduce_time > 0.0


def test_pod_needs_a_core():
    with pytest.raises(ValueError):
        PodSimulator(TPU_V3_CORE, n_cores=0)


# ---------------------------------------------------------------------------
# Gradient bucketing
# ---------------------------------------------------------------------------


def test_buckets_preserve_total_bytes():
    buckets = bucket_gradient_bytes(LEAVES, 25e6)
    assert sum(buckets) == pytest.approx(sum(LEAVES))
    assert len(buckets) > 1


def test_all_buckets_but_last_reach_threshold():
    threshold = 25e6
    buckets = bucket_gradient_bytes(LEAVES, threshold)
    assert all(b >= threshold for b in buckets[:-1])


def test_infinite_threshold_is_single_shot():
    assert bucket_gradient_bytes(LEAVES, float("inf")) == [sum(LEAVES)]


def test_empty_leaves_yield_one_empty_bucket():
    assert bucket_gradient_bytes([], 1e6) == [0.0]


def test_negative_leaf_rejected():
    with pytest.raises(ValueError):
        bucket_gradient_bytes([1e6, -1.0], 1e6)


def test_bucketing_is_deterministic():
    assert bucket_gradient_bytes(LEAVES, 25e6) == bucket_gradient_bytes(
        LEAVES, 25e6
    )


# ---------------------------------------------------------------------------
# Overlapped all-reduce pipeline
# ---------------------------------------------------------------------------


def test_overlap_identity_hidden_plus_exposed_is_total():
    buckets = bucket_gradient_bytes(LEAVES, 25e6)
    timing = overlapped_allreduce_time(
        TPU_V3_CORE, buckets, 32, backward_time=0.2, overlap=True
    )
    assert timing.exposed <= timing.total
    assert timing.exposed >= 0.0
    hidden = timing.total - timing.exposed
    assert hidden >= 0.0


def test_no_overlap_exposes_everything():
    buckets = bucket_gradient_bytes(LEAVES, 25e6)
    timing = overlapped_allreduce_time(
        TPU_V3_CORE, buckets, 32, backward_time=0.2, overlap=False
    )
    assert timing.exposed == timing.total
    assert timing.total == pytest.approx(
        sum(TPU_V3_CORE.allreduce_time(b, 32) for b in buckets)
    )


def test_longer_backward_hides_more():
    buckets = bucket_gradient_bytes(LEAVES, 25e6)
    short = overlapped_allreduce_time(
        TPU_V3_CORE, buckets, 32, backward_time=0.001, overlap=True
    )
    long = overlapped_allreduce_time(
        TPU_V3_CORE, buckets, 32, backward_time=0.5, overlap=True
    )
    assert long.exposed <= short.exposed
    assert long.total == pytest.approx(short.total)


def test_zero_backward_overlap_exposes_everything():
    buckets = bucket_gradient_bytes(LEAVES, 25e6)
    timing = overlapped_allreduce_time(
        TPU_V3_CORE, buckets, 32, backward_time=0.0, overlap=True
    )
    assert timing.exposed == pytest.approx(timing.total)


def test_one_device_pipeline_is_free():
    timing = overlapped_allreduce_time(
        TPU_V3_CORE, [GRAD_BYTES], 1, backward_time=0.2, overlap=True
    )
    assert timing.exposed == 0.0 and timing.total == 0.0


# ---------------------------------------------------------------------------
# step_time / step_time_multi
# ---------------------------------------------------------------------------


def test_step_time_multi_takes_slowest_replica():
    pod = PodSimulator(TPU_V3_CORE, n_cores=4)
    single = pod.step_time(0.3, GRAD_BYTES)
    multi = pod.step_time_multi([0.1, 0.3, 0.2, 0.05], GRAD_BYTES)
    assert multi.compute_time == 0.3
    assert multi.total == pytest.approx(single.total)


def test_step_time_multi_order_independent():
    pod = PodSimulator(TPU_V3_CORE, n_cores=4)
    times = [0.11, 0.29, 0.17, 0.23]
    a = pod.step_time_multi(times, GRAD_BYTES)
    b = pod.step_time_multi(list(reversed(times)), GRAD_BYTES)
    assert a == b


def test_step_time_multi_requires_a_replica():
    pod = PodSimulator(TPU_V3_CORE, n_cores=4)
    with pytest.raises(ValueError):
        pod.step_time_multi([], GRAD_BYTES)


def test_overlap_beats_single_shot_when_backward_hides_it():
    config = AllReduceConfig(bucket_bytes=GRAD_BYTES / 8, overlap=True)
    pod = PodSimulator(TPU_V3_CORE, n_cores=16)
    overlapped = pod.step_time(
        0.3, GRAD_BYTES, grad_leaf_bytes=LEAVES, allreduce=config
    )
    single = pod.step_time(0.3, GRAD_BYTES, allreduce=SINGLE_SHOT)
    assert overlapped.total < single.total
    assert overlapped.hidden_allreduce > 0.0
    assert overlapped.n_buckets > 1
    assert single.n_buckets == 1 and single.hidden_allreduce == 0.0


def test_step_timing_defaults_total_to_exposed():
    timing = StepTiming(compute_time=1.0, allreduce_time=0.25)
    assert timing.allreduce_total == 0.25
    assert timing.total == 1.25
    assert timing.hidden_allreduce == 0.0
