"""Kernel numerics checked against direct NumPy computations."""

import numpy as np
import pytest

from repro.runtime.kernels import (
    KERNELS,
    avg_pool2d,
    avg_pool2d_grad,
    conv2d,
    conv2d_grad_filter,
    conv2d_grad_input,
    matmul,
    max_pool2d,
    max_pool2d_grad,
    one_hot,
    reduce_mean,
    reduce_sum,
    softmax,
    softmax_cross_entropy,
    softmax_cross_entropy_grad,
)

rng = np.random.default_rng(7)


def test_elementwise_kernels_match_numpy():
    x = rng.standard_normal((3, 4)).astype(np.float32)
    y = rng.standard_normal((3, 4)).astype(np.float32) + 2.5
    cases = {
        "add": x + y,
        "sub": x - y,
        "mul": x * y,
        "div": x / y,
        "neg": -x,
        "exp": np.exp(x),
        "tanh": np.tanh(x),
        "relu": np.maximum(x, 0),
        "abs": np.abs(x),
        "maximum": np.maximum(x, y),
        "minimum": np.minimum(x, y),
    }
    for name, expected in cases.items():
        kernel = KERNELS[name]
        args = (x,) if kernel.fn.__code__.co_argcount == 1 else (x, y)
        np.testing.assert_allclose(kernel(*args), expected, rtol=1e-5)


def test_matmul():
    a = rng.standard_normal((5, 3)).astype(np.float32)
    b = rng.standard_normal((3, 7)).astype(np.float32)
    np.testing.assert_allclose(matmul(a, b), a @ b, rtol=1e-5)


def test_matmul_flops():
    k = KERNELS["matmul"]
    assert k.flops((5, 7), [(5, 3), (3, 7)]) == 2 * 5 * 7 * 3


def test_reduces():
    x = rng.standard_normal((4, 5)).astype(np.float32)
    np.testing.assert_allclose(reduce_sum(x, (0,), False), x.sum(axis=0), rtol=1e-5)
    np.testing.assert_allclose(
        reduce_mean(x, None, False), x.mean(), rtol=1e-5
    )


def test_conv2d_matches_naive():
    x = rng.standard_normal((2, 6, 6, 3)).astype(np.float32)
    f = rng.standard_normal((3, 3, 3, 4)).astype(np.float32)
    out = conv2d(x, f, 1, "valid")
    assert out.shape == (2, 4, 4, 4)
    # Naive reference
    ref = np.zeros_like(out)
    for n in range(2):
        for i in range(4):
            for j in range(4):
                patch = x[n, i : i + 3, j : j + 3, :]
                for co in range(4):
                    ref[n, i, j, co] = (patch * f[:, :, :, co]).sum()
    np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)


def test_conv2d_same_padding_shape():
    x = rng.standard_normal((1, 7, 7, 2)).astype(np.float32)
    f = rng.standard_normal((3, 3, 2, 5)).astype(np.float32)
    out = conv2d(x, f, 1, "same")
    assert out.shape == (1, 7, 7, 5)
    out2 = conv2d(x, f, 2, "same")
    assert out2.shape == (1, 4, 4, 5)


def test_conv2d_gradients_match_fd():
    x = rng.standard_normal((1, 5, 5, 2)).astype(np.float64).astype(np.float32)
    f = rng.standard_normal((3, 3, 2, 3)).astype(np.float32)
    g = rng.standard_normal((1, 3, 3, 3)).astype(np.float32)

    def loss_x(xv):
        return float((conv2d(xv, f, 1, "valid") * g).sum())

    def loss_f(fv):
        return float((conv2d(x, fv, 1, "valid") * g).sum())

    gx = conv2d_grad_input(g, f, x.shape, 1, "valid")
    gf = conv2d_grad_filter(x, g, f.shape, 1, "valid")

    eps = 1e-2
    for _ in range(8):
        idx = tuple(rng.integers(0, s) for s in x.shape)
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        fd = (loss_x(xp) - loss_x(xm)) / (2 * eps)
        assert gx[idx] == pytest.approx(fd, rel=2e-2, abs=2e-2)
    for _ in range(8):
        idx = tuple(rng.integers(0, s) for s in f.shape)
        fp, fm = f.copy(), f.copy()
        fp[idx] += eps
        fm[idx] -= eps
        fd = (loss_f(fp) - loss_f(fm)) / (2 * eps)
        assert gf[idx] == pytest.approx(fd, rel=2e-2, abs=2e-2)


def test_conv2d_grad_same_padding_consistency():
    x = rng.standard_normal((1, 6, 6, 1)).astype(np.float32)
    f = rng.standard_normal((3, 3, 1, 2)).astype(np.float32)
    g = np.ones((1, 6, 6, 2), dtype=np.float32)
    gx = conv2d_grad_input(g, f, x.shape, 1, "same")
    assert gx.shape == x.shape
    gf = conv2d_grad_filter(x, g, f.shape, 1, "same")
    assert gf.shape == f.shape


def test_avg_pool_and_grad():
    x = rng.standard_normal((2, 4, 4, 3)).astype(np.float32)
    out = avg_pool2d(x, 2, 2)
    assert out.shape == (2, 2, 2, 3)
    np.testing.assert_allclose(
        out[0, 0, 0, 0], x[0, :2, :2, 0].mean(), rtol=1e-5
    )
    g = np.ones_like(out)
    gx = avg_pool2d_grad(g, x.shape, 2, 2)
    np.testing.assert_allclose(gx, np.full_like(x, 0.25), rtol=1e-6)


def test_max_pool_and_grad():
    x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
    out = max_pool2d(x, 2, 2)
    np.testing.assert_allclose(out.ravel(), [5, 7, 13, 15])
    g = np.ones_like(out)
    gx = max_pool2d_grad(x, g, 2, 2)
    assert gx.sum() == 4.0
    assert gx[0, 1, 1, 0] == 1.0  # gradient lands on the max positions


def test_softmax_and_cross_entropy():
    logits = rng.standard_normal((4, 10)).astype(np.float32)
    labels = one_hot(np.array([1, 3, 5, 7], dtype=np.float32), 10)
    p = softmax(logits)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-5)
    loss = softmax_cross_entropy(logits, labels)
    expected = -np.log(p[np.arange(4), [1, 3, 5, 7]]).mean()
    assert float(loss) == pytest.approx(float(expected), rel=1e-5)

    grad = softmax_cross_entropy_grad(logits, labels)
    eps = 1e-3
    for _ in range(5):
        i, j = rng.integers(0, 4), rng.integers(0, 10)
        lp, lm = logits.copy(), logits.copy()
        lp[i, j] += eps
        lm[i, j] -= eps
        fd = (
            float(softmax_cross_entropy(lp, labels))
            - float(softmax_cross_entropy(lm, labels))
        ) / (2 * eps)
        assert grad[i, j] == pytest.approx(fd, rel=1e-2, abs=1e-4)


def test_one_hot():
    out = one_hot(np.array([0.0, 2.0]), 3)
    np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])


def test_traffic_estimate_counts_inputs_and_outputs():
    k = KERNELS["add"]
    assert k.traffic((10,), [(10,), (10,)]) == 30 * 4
