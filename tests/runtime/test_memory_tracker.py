"""Edge paths of ``repro.runtime.memory``: scope nesting, exception
unwinding, reset-under-scope, buffer id-dedup, and the per-trace
attribution registry that backs the static memory planner."""

import numpy as np
import pytest

from repro.runtime import memory


@pytest.fixture(autouse=True)
def _clean_attribution():
    memory._ATTRIBUTION.clear()
    yield
    memory._ATTRIBUTION.clear()


def test_nested_scopes_both_see_allocations():
    with memory.scoped_tracker() as outer:
        memory.allocate(100)
        with memory.scoped_tracker() as inner:
            memory.allocate(50)
        # Inner scope saw only its own window.
        assert inner.total_allocated == 50
        memory.allocate(25)
    assert outer.total_allocated == 175
    assert inner.total_allocated == 50  # closed scope stops observing


def test_scope_unwinds_on_exception():
    depth_before = len(memory._ACTIVE)
    with pytest.raises(RuntimeError, match="boom"):
        with memory.scoped_tracker():
            raise RuntimeError("boom")
    assert len(memory._ACTIVE) == depth_before
    # The crashed scope's tracker no longer observes allocations.
    with memory.scoped_tracker() as t:
        memory.allocate(8)
        memory.free(8)
    assert t.peak_bytes == 8


def test_reset_under_active_scope():
    with memory.scoped_tracker() as t:
        memory.allocate(64)
        t.reset()
        assert t.snapshot() == (0, 0)
        memory.allocate(16)
    assert t.peak_bytes == 16
    assert t.allocation_count == 1


def test_peak_tracks_high_water_mark_not_total():
    with memory.scoped_tracker() as t:
        memory.allocate(100)
        memory.free(100)
        memory.allocate(60)
        memory.free(60)
    assert t.peak_bytes == 100
    assert t.total_allocated == 160
    assert t.live_bytes == 0


def test_track_alias_is_scoped_tracker():
    assert memory.track is memory.scoped_tracker


def test_track_buffer_id_dedup():
    buf = np.zeros(16, dtype=np.float32)  # 64 bytes
    with memory.scoped_tracker() as t:
        memory.track_buffer(buf)
        memory.track_buffer(buf)  # same object: must not double-count
    assert t.total_allocated == 64
    assert id(buf) in memory._TRACKED_IDS
    del buf  # finalizer forgets the id and frees the bytes


def test_track_buffer_release_on_gc():
    with memory.scoped_tracker() as t:
        buf = np.zeros(8, dtype=np.float32)
        memory.track_buffer(buf)
        assert t.live_bytes == 32
        buf_id = id(buf)
        del buf
        assert buf_id not in memory._TRACKED_IDS
        assert t.live_bytes == 0
    assert t.peak_bytes == 32


def test_track_buffer_ignores_empty():
    with memory.scoped_tracker() as t:
        memory.track_buffer(np.zeros(0, dtype=np.float32))
        memory.track_buffer(object(), nbytes=0)
    assert t.allocation_count == 0


def test_trace_attribution_records_max_peak():
    attribution = memory._ATTRIBUTION
    assert not attribution.enabled()
    with memory.trace_attribution() as scope:
        assert scope is attribution
        assert attribution.enabled()
        assert memory.intermediates_tracked()
        scope.record("k1", 100)
        scope.record("k1", 80)  # lower peak: max-merge keeps 100
        scope.record("k1", 120)
        scope.record("k2", 7)
    assert not attribution.enabled()
    assert attribution.peak_for("k1") == 120
    assert attribution.peak_for("k2") == 7
    assert attribution.peak_for("nonesuch") is None


def test_trace_attribution_nests():
    with memory.trace_attribution():
        with memory.trace_attribution():
            assert memory._ATTRIBUTION.depth == 2
        assert memory._ATTRIBUTION.enabled()
    assert not memory._ATTRIBUTION.enabled()


def test_attribute_trace_disabled_never_calls_key_fn():
    def explode():
        raise AssertionError("key_fn called outside trace_attribution scope")

    with memory.attribute_trace(explode) as tracker:
        assert tracker is None


def test_attribute_trace_records_transient_peak():
    with memory.trace_attribution() as attribution:
        with memory.attribute_trace(lambda: "trace-key") as tracker:
            assert tracker is not None
            memory.allocate(256)
            memory.free(256)
            memory.allocate(64)
            memory.free(64)
    assert attribution.peak_for("trace-key") == 256


def test_attribute_trace_key_computed_before_body():
    calls = []
    with memory.trace_attribution():
        with memory.attribute_trace(lambda: calls.append("key") or "k"):
            calls.append("body")
    assert calls == ["key", "body"]
