"""Race stress tests for the compilation caches (the single-flight proof).

Two layers share the guarantee that one canonical key compiles exactly
once no matter how many threads race on it:

* ``repro.hlo.compiler.compile_module`` — the synchronous fingerprint
  cache: late arrivals block on the owner's Future;
* :class:`repro.hlo.compiler.AsyncCompiler` — the non-blocking cache the
  concurrent engine uses: late arrivals coalesce onto the in-flight
  compile and fall back to op-by-op execution.

Every test hammers one of them from many threads through a barrier (to
maximize collision probability) and asserts build counts, stats
consistency, and the absence of deadlocks (joins are time-bounded).
"""

from __future__ import annotations

import threading
import time
from collections import Counter

from repro.hlo import compiler as hlo_compiler
from repro.hlo.compiler import STATS, AsyncCompiler, compile_module
from repro.hlo.ir import HloComputation, HloInstruction, HloModule, Shape

N_THREADS = 8
JOIN_TIMEOUT = 30.0


def _run_threads(fn, n=N_THREADS):
    """Run ``fn(thread_index)`` on n threads behind a start barrier;
    re-raise the first worker exception; fail instead of deadlocking."""
    barrier = threading.Barrier(n)
    errors: list[BaseException] = []

    def worker(i):
        barrier.wait()
        try:
            fn(i)
        except BaseException as exc:  # noqa: BLE001 - reported via errors
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=JOIN_TIMEOUT)
        assert not t.is_alive(), "worker deadlocked"
    if errors:
        raise errors[0]


def _fresh_module(dims=(5, 7)):
    """A small well-formed module; identical dims => identical fingerprint
    (fingerprints canonicalize value names but keep shapes)."""
    comp = HloComputation("entry")
    p0 = comp.add(
        HloInstruction("parameter", [], Shape(dims), parameter_number=0)
    )
    p1 = comp.add(
        HloInstruction("parameter", [], Shape(dims), parameter_number=1)
    )
    add = comp.add(HloInstruction("add", [p0, p1], Shape(dims)))
    neg = comp.add(HloInstruction("negate", [add], Shape(dims)))
    comp.set_root(neg)
    return HloModule("m", comp)


# ---------------------------------------------------------------------------
# Synchronous cache: compile_module
# ---------------------------------------------------------------------------


def test_compile_module_single_flight_under_contention():
    # Distinct dims per test run are unnecessary: clear the global cache
    # so this module's fingerprint is guaranteed fresh.
    hlo_compiler.clear_cache()
    dims = (11, 13)
    key = hlo_compiler.fingerprint(_fresh_module(dims))
    compiles_before = STATS.compiles
    results = [None] * N_THREADS

    def race(i):
        results[i] = compile_module(_fresh_module(dims))

    _run_threads(race)

    assert all(r is not None for r in results)
    # Single-flight: every thread got the *same* Executable object.
    assert len({id(r) for r in results}) == 1
    # Exactly one compile ran for this fingerprint across all threads.
    assert STATS.compiles == compiles_before + 1
    assert key in hlo_compiler.cache_keys()


def test_compile_module_distinct_keys_compile_independently():
    hlo_compiler.clear_cache()
    shapes = [(2, i + 2) for i in range(N_THREADS)]
    compiles_before = STATS.compiles
    results = [None] * N_THREADS

    def race(i):
        results[i] = compile_module(_fresh_module(shapes[i]))

    _run_threads(race)

    assert len({id(r) for r in results}) == N_THREADS
    assert STATS.compiles == compiles_before + N_THREADS
    assert hlo_compiler.cache_size() >= N_THREADS


# ---------------------------------------------------------------------------
# Asynchronous cache: AsyncCompiler
# ---------------------------------------------------------------------------


class _SlowBuild:
    """A build callable that records invocations and is deliberately slow,
    widening the window in which racing submits must coalesce."""

    def __init__(self, delay=0.02):
        self.delay = delay
        self.calls = Counter()
        self.lock = threading.Lock()

    def builder(self, key):
        def build():
            with self.lock:
                self.calls[key] += 1
            time.sleep(self.delay)
            return ("executable", key)

        return build


def test_async_cache_colliding_keys_build_once():
    compiler = AsyncCompiler()
    build = _SlowBuild()
    keys = [f"key-{i % 2}" for i in range(N_THREADS)]  # heavy collisions
    futures = [None] * N_THREADS

    def race(i):
        key = keys[i]
        if compiler.lookup(key) is None:
            futures[i] = compiler.submit(key, build.builder(key))
            compiler.note_fallback()

    _run_threads(race)
    compiler.wait()

    # Exactly one build per distinct key, however many threads submitted.
    assert build.calls == Counter({"key-0": 1, "key-1": 1})
    stats = compiler.stats_dict()
    assert stats["submitted"] == 2
    assert stats["completed"] == 2
    assert stats["submitted"] + stats["deduplicated"] == N_THREADS
    assert stats["fallback_steps"] == N_THREADS
    assert stats["compile_inflight"] == 0
    assert stats["failed"] == 0
    # Every racer's Future resolves to its key's executable.
    for key, future in zip(keys, futures):
        assert future.result(timeout=JOIN_TIMEOUT) == ("executable", key)
    # After completion, lookups hit.
    assert compiler.lookup("key-0") == ("executable", "key-0")
    assert compiler.lookup("key-1") == ("executable", "key-1")
    assert stats["cached_executables"] == 2
    compiler.shutdown()


def test_async_cache_hammer_many_rounds():
    """N threads x R rounds x K keys: the steady-state invariants hold
    whatever interleaving the scheduler produces."""
    compiler = AsyncCompiler(workers=2)
    build = _SlowBuild(delay=0.001)
    n_keys = 5
    rounds = 20

    def race(i):
        for r in range(rounds):
            key = f"k{(i + r) % n_keys}"
            if compiler.lookup(key) is None:
                compiler.submit(key, build.builder(key))
                compiler.note_fallback()

    _run_threads(race)
    compiler.wait()

    stats = compiler.stats_dict()
    # One build per key ever.
    assert build.calls == Counter({f"k{i}": 1 for i in range(n_keys)})
    assert stats["submitted"] == n_keys
    assert stats["completed"] == n_keys
    assert stats["cached_executables"] == n_keys
    assert stats["compile_inflight"] == 0
    # Conservation: every loop iteration either hit or fell back.
    assert stats["compile_hits"] + stats["fallback_steps"] == N_THREADS * rounds
    # Warm cache: everything is a hit now.
    hits_before = stats["compile_hits"]
    for i in range(n_keys):
        assert compiler.lookup(f"k{i}") == ("executable", f"k{i}")
    assert compiler.stats_dict()["compile_hits"] == hits_before + n_keys
    compiler.shutdown()


def test_async_cache_failed_build_is_not_poisoned():
    """A failing compile clears its in-flight slot: the key can be
    resubmitted and succeed (no wedged Future, no cached failure)."""
    compiler = AsyncCompiler()

    def boom():
        raise RuntimeError("codegen exploded")

    future = compiler.submit("bad", boom)
    try:
        future.result(timeout=JOIN_TIMEOUT)
    except RuntimeError:
        pass
    else:  # pragma: no cover - the build must fail
        raise AssertionError("expected the build to raise")
    compiler.wait()
    stats = compiler.stats_dict()
    assert stats["failed"] == 1
    assert stats["compile_inflight"] == 0
    assert compiler.lookup("bad") is None

    # Retry succeeds and caches.
    good = compiler.submit("bad", lambda: "fixed")
    assert good.result(timeout=JOIN_TIMEOUT) == "fixed"
    compiler.wait()
    assert compiler.lookup("bad") == "fixed"
    assert compiler.stats_dict()["completed"] == 1
    compiler.shutdown()


def test_async_cache_reset_resets():
    compiler = AsyncCompiler()
    compiler.submit("x", lambda: 1)
    compiler.wait()
    assert compiler.lookup("x") == 1
    compiler.reset()
    assert compiler.lookup("x") is None
    stats = compiler.stats_dict()
    assert stats["submitted"] == 0 and stats["compile_hits"] == 0
    compiler.shutdown()
