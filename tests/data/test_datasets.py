"""Dataset generators and batching."""

import numpy as np

from repro.data import (
    personalization_split,
    synthetic_cifar10,
    synthetic_imagenet,
    synthetic_mnist,
)
from repro.tensor import eager_device


def test_mnist_shapes():
    data = synthetic_mnist(n=64)
    assert data.images.shape == (64, 28, 28, 1)
    assert data.labels.shape == (64,)
    assert data.num_classes == 10
    assert data.images.dtype == np.float32
    assert set(np.unique(data.labels)).issubset(set(range(10)))


def test_cifar_and_imagenet_shapes():
    c = synthetic_cifar10(n=16)
    assert c.images.shape == (16, 32, 32, 3)
    i = synthetic_imagenet(n=8, image_size=16, num_classes=50)
    assert i.images.shape == (8, 16, 16, 3)
    assert i.num_classes == 50


def test_determinism_per_seed():
    a = synthetic_mnist(n=8, seed=5)
    b = synthetic_mnist(n=8, seed=5)
    np.testing.assert_array_equal(a.images, b.images)
    np.testing.assert_array_equal(a.labels, b.labels)
    c = synthetic_mnist(n=8, seed=6)
    assert not np.array_equal(a.images, c.images)


def test_classes_are_separable():
    """Same-class images are closer than cross-class (templates + noise)."""
    data = synthetic_mnist(n=200, image_size=8, seed=0)
    flat = data.images.reshape(len(data), -1)
    centroids = np.stack(
        [flat[data.labels == k].mean(axis=0) for k in range(10) if (data.labels == k).any()]
    )
    # Assign each sample to the nearest centroid: should beat chance easily.
    d = ((flat[:, None, :] - centroids[None]) ** 2).sum(-1)
    labels_present = [k for k in range(10) if (data.labels == k).any()]
    predicted = np.array(labels_present)[d.argmin(axis=1)]
    assert (predicted == data.labels).mean() > 0.5


def test_batching_shapes_and_one_hot():
    device = eager_device()
    data = synthetic_mnist(n=70, image_size=8)
    batches = list(data.batches(32, device=device))
    assert len(batches) == 2  # remainder dropped by default
    x, y = batches[0]
    assert x.shape == (32, 8, 8, 1)
    assert y.shape == (32, 10)
    rows = y.numpy()
    np.testing.assert_allclose(rows.sum(axis=1), 1.0)


def test_batching_without_drop_remainder():
    device = eager_device()
    data = synthetic_mnist(n=70, image_size=8)
    batches = list(data.batches(32, device=device, drop_remainder=False))
    assert [b[0].shape[0] for b in batches] == [32, 32, 6]


def test_batch_shuffle_is_seeded():
    device = eager_device()
    data = synthetic_mnist(n=64, image_size=8)
    a = [x.numpy() for x, _ in data.batches(16, device=device, seed=1)]
    b = [x.numpy() for x, _ in data.batches(16, device=device, seed=1)]
    c = [x.numpy() for x, _ in data.batches(16, device=device, seed=2)]
    np.testing.assert_array_equal(a[0], b[0])
    assert not np.array_equal(a[0], c[0])


def test_personalization_split():
    global_data, user_data = personalization_split(n_global=100, n_user=20, seed=3)
    assert len(global_data) == 100
    assert len(user_data) == 20
    assert global_data.xs.min() >= 0.0 and global_data.xs.max() <= 1.0
    # The user's curve is a genuine distribution shift, not a copy.
    from repro.data.spline_data import _global_curve

    user_residual = np.abs(user_data.ys - _global_curve(user_data.xs)).mean()
    global_residual = np.abs(global_data.ys - _global_curve(global_data.xs)).mean()
    assert user_residual > 3 * global_residual
