"""Checkpoint save/restore round-trips and mismatch detection."""

import numpy as np
import pytest

from repro.nn import LeNet, MLP, resnet_cifar_small
from repro.nn.checkpoint import load, load_state_dict, save, state_dict
from repro.tensor import Tensor, eager_device, lazy_device


def test_state_dict_covers_all_parameters():
    model = LeNet.create(eager_device(), seed=0)
    state = state_dict(model)
    assert "conv1.filter" in state
    assert "fc3.bias" in state
    assert state["conv1.filter"].shape == (5, 5, 1, 6)
    # 2 convs + 3 dense, 2 params each.
    assert len([k for k in state if "filter" in k or "weight" in k]) == 5


def test_round_trip_restores_exact_values(tmp_path):
    device = eager_device()
    model = LeNet.create(device, seed=1)
    expected = model.conv1.filter.numpy().copy()
    path = save(model, tmp_path / "lenet.npz")

    fresh = LeNet.create(device, seed=99)
    assert not np.array_equal(fresh.conv1.filter.numpy(), expected)
    load(fresh, path)
    np.testing.assert_array_equal(fresh.conv1.filter.numpy(), expected)
    # Outputs agree exactly after restore.
    x = Tensor(np.random.default_rng(0).standard_normal((2, 28, 28, 1)).astype(np.float32), device)
    np.testing.assert_allclose(model(x).numpy(), fresh(x).numpy(), rtol=1e-6)


def test_round_trip_nested_lists():
    device = eager_device()
    model = resnet_cifar_small(device, seed=2)
    state = state_dict(model)
    assert any(k.startswith("stages.0.layers.0.") for k in state)

    fresh = resnet_cifar_small(device, seed=3)
    load_state_dict(fresh, state)
    np.testing.assert_array_equal(
        fresh.stages[0].layers[0].conv1.conv.filter.numpy(),
        model.stages[0].layers[0].conv1.conv.filter.numpy(),
    )


def test_restore_across_devices():
    # Train eagerly, deploy lazily: the checkpoint is backend-agnostic.
    eager_model = MLP.create(4, [8], 2, device=eager_device(), seed=4)
    state = state_dict(eager_model)
    lazy_model = MLP.create(4, [8], 2, device=lazy_device(), seed=5)
    load_state_dict(lazy_model, state)
    x = np.random.default_rng(1).standard_normal((3, 4)).astype(np.float32)
    a = eager_model(Tensor(x, eager_model.hidden.layers[0].weight.device)).numpy()
    b = lazy_model(Tensor(x, lazy_model.hidden.layers[0].weight.device)).numpy()
    np.testing.assert_allclose(a, b, rtol=1e-5)


def test_missing_parameter_rejected():
    device = eager_device()
    model = MLP.create(4, [8], 2, device=device)
    state = state_dict(model)
    del state["head.bias"]
    with pytest.raises(KeyError, match="head.bias"):
        load_state_dict(MLP.create(4, [8], 2, device=device), state)


def test_extra_parameter_rejected():
    device = eager_device()
    model = MLP.create(4, [8], 2, device=device)
    state = state_dict(model)
    state["bogus.weight"] = np.zeros(3, np.float32)
    with pytest.raises(KeyError, match="unknown"):
        load_state_dict(MLP.create(4, [8], 2, device=device), state)


def test_spline_model_checkpoints():
    from repro.spline import SplineModel

    m = SplineModel([0.1, 0.2, 0.3, 0.4, 0.5], 4)
    state = state_dict(m)
    assert len(state) == 5
    fresh = SplineModel.create(5)
    load_state_dict(fresh, state)
    np.testing.assert_allclose(fresh.control_points, m.control_points, rtol=1e-6)
