"""Layer protocol and standard layers."""

import numpy as np
import pytest

from repro.core import ZERO, gradient, move
from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Residual,
    Sequential,
    relu,
)
from repro.tensor import Tensor, eager_device, lazy_device

RNG = np.random.default_rng(0)


@pytest.fixture(params=["eager", "lazy"])
def device(request):
    return eager_device() if request.param == "eager" else lazy_device()


def test_dense_forward(device):
    d = Dense.create(3, 2, device=device, rng=np.random.default_rng(1))
    x = Tensor(RNG.standard_normal((4, 3)).astype(np.float32), device)
    y = d(x)
    assert y.shape == (4, 2)
    expected = x.numpy() @ d.weight.numpy() + d.bias.numpy()
    np.testing.assert_allclose(y.numpy(), expected, rtol=1e-5)


def test_dense_activation(device):
    d = Dense.create(3, 2, activation=relu, device=device, rng=np.random.default_rng(1))
    x = Tensor(RNG.standard_normal((4, 3)).astype(np.float32), device)
    assert float(d(x).numpy().min()) >= 0.0


def test_layer_is_value_type(device):
    d = Dense.create(2, 2, device=device, rng=np.random.default_rng(2))
    tangent = type(d).TangentVector(weight=Tensor.ones((2, 2), device))
    moved = move(d, tangent)
    # Functional move leaves the original untouched.
    np.testing.assert_allclose(
        moved.weight.numpy(), d.weight.numpy() + 1.0, rtol=1e-6
    )


def test_layer_tangent_vector_shape(device):
    d = Dense.create(3, 2, device=device)
    tv_cls = type(d).TangentVector
    assert set(tv_cls._fields) == {"weight", "bias"}  # activation excluded
    zero = tv_cls()
    assert zero.weight is ZERO


def test_conv_layer(device):
    conv = Conv2D.create(
        (3, 3, 1, 4), padding="same", activation=relu, device=device,
        rng=np.random.default_rng(3),
    )
    x = Tensor(RNG.standard_normal((2, 8, 8, 1)).astype(np.float32), device)
    y = conv(x)
    assert y.shape == (2, 8, 8, 4)


def test_pool_layers(device):
    x = Tensor(RNG.standard_normal((1, 4, 4, 2)).astype(np.float32), device)
    assert AvgPool2D(2, 2)(x).shape == (1, 2, 2, 2)
    assert MaxPool2D(2, 2)(x).shape == (1, 2, 2, 2)


def test_flatten(device):
    x = Tensor(RNG.standard_normal((2, 3, 4, 5)).astype(np.float32), device)
    assert Flatten()(x).shape == (2, 60)


def test_batchnorm_normalizes(device):
    bn = BatchNorm.create(3, device=device)
    x = Tensor((RNG.standard_normal((16, 3)) * 5 + 2).astype(np.float32), device)
    y = bn(x).numpy()
    np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-3)
    np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-2)


def test_dropout(device):
    x = Tensor(np.ones((4, 100), np.float32), device)
    y = Dropout(rate=0.5, seed=1)(x).numpy()
    zero_fraction = (y == 0).mean()
    assert 0.3 < zero_fraction < 0.7
    kept = y[y != 0]
    np.testing.assert_allclose(kept, 2.0, rtol=1e-6)  # inverted scaling
    # rate=0 is the identity.
    np.testing.assert_allclose(Dropout(rate=0.0)(x).numpy(), x.numpy())


def test_sequential_and_sequenced(device):
    rng = np.random.default_rng(4)
    seq = Sequential(
        [
            Dense.create(4, 8, activation=relu, device=device, rng=rng),
            Dense.create(8, 2, device=device, rng=rng),
        ]
    )
    x = Tensor(RNG.standard_normal((3, 4)).astype(np.float32), device)
    y1 = seq(x)
    y2 = seq.layers[1](seq.layers[0](x))
    np.testing.assert_allclose(y1.numpy(), y2.numpy(), rtol=1e-5)


def test_residual(device):
    rng = np.random.default_rng(5)
    res = Residual(Dense.create(4, 4, device=device, rng=rng))
    x = Tensor(RNG.standard_normal((2, 4)).astype(np.float32), device)
    np.testing.assert_allclose(
        res(x).numpy(), x.numpy() + res.body(x).numpy(), rtol=1e-5
    )


def test_gradient_through_single_layer(device):
    rng = np.random.default_rng(6)
    d = Dense.create(3, 1, device=device, rng=rng)
    x = Tensor(RNG.standard_normal((5, 3)).astype(np.float32), device)

    def loss(layer, xb):
        return (layer(xb) * layer(xb)).sum()

    g = gradient(loss, d, x, wrt=0)
    assert g.weight.shape == (3, 1)
    assert g.bias.shape == (1,)
    # Check against finite differences on one weight entry.
    eps = 1e-2
    w = d.weight.numpy().copy()
    for idx in [(0, 0), (2, 0)]:
        wp, wm = w.copy(), w.copy()
        wp[idx] += eps
        wm[idx] -= eps
        dp = Dense(Tensor(wp, device), d.bias, d.activation)
        dm = Dense(Tensor(wm, device), d.bias, d.activation)
        fd = (float(loss(dp, x)) - float(loss(dm, x))) / (2 * eps)
        assert float(g.weight.numpy()[idx]) == pytest.approx(fd, rel=2e-2, abs=1e-2)


def test_gradient_through_sequential(device):
    rng = np.random.default_rng(7)
    seq = Sequential(
        [
            Dense.create(3, 4, activation=relu, device=device, rng=rng),
            Dense.create(4, 1, device=device, rng=rng),
        ]
    )
    x = Tensor(RNG.standard_normal((4, 3)).astype(np.float32), device)

    def loss(model, xb):
        return model(xb).sum()

    g = gradient(loss, seq, x, wrt=0)
    # The list-of-layers field receives a list tangent.
    assert isinstance(g.layers, list)
    assert g.layers[0].weight.shape == (3, 4)
    assert g.layers[1].weight.shape == (4, 1)


def test_gradient_through_nested_residual(device):
    rng = np.random.default_rng(8)
    res = Residual(Dense.create(2, 2, device=device, rng=rng))
    x = Tensor(np.ones((1, 2), np.float32), device)

    def loss(model, xb):
        return model(xb).sum()

    g = gradient(loss, res, x, wrt=0)
    assert g.body.weight.shape == (2, 2)
    # d(sum(x + xW + b))/dW = outer sum over x: every entry equals x value.
    np.testing.assert_allclose(g.body.weight.numpy(), np.ones((2, 2)), rtol=1e-5)


def test_embedding_lookup_and_gradient(device):
    from repro.nn import Embedding

    emb = Embedding.create(5, 3, device=device, rng=np.random.default_rng(9))
    indices = Tensor([0.0, 2.0, 2.0], device)
    out = emb(indices)
    assert out.shape == (3, 3)
    np.testing.assert_allclose(out.numpy()[0], emb.table.numpy()[0], rtol=1e-6)
    np.testing.assert_allclose(out.numpy()[1], emb.table.numpy()[2], rtol=1e-6)

    def loss(layer, idx):
        return layer(idx).sum()

    g = gradient(loss, emb, indices, wrt=0)
    table_grad = g.table.numpy()
    # Row 2 was looked up twice, row 0 once, rows 1/3/4 never.
    np.testing.assert_allclose(table_grad[0], 1.0)
    np.testing.assert_allclose(table_grad[2], 2.0)
    np.testing.assert_allclose(table_grad[1], 0.0)
    np.testing.assert_allclose(table_grad[4], 0.0)


def test_batchnorm_gradient_matches_fd(device):
    bn = BatchNorm.create(2, device=device)
    x0 = Tensor(
        np.random.default_rng(10).standard_normal((6, 2)).astype(np.float32) * 2,
        device,
    )

    def loss(layer, x):
        y = layer(x)
        return (y * y * 0.5 + y).sum()

    g = gradient(loss, bn, x0, wrt=0)
    eps = 1e-2
    scale = bn.scale.numpy().copy()
    for j in range(2):
        sp, sm = scale.copy(), scale.copy()
        sp[j] += eps
        sm[j] -= eps
        lp = BatchNorm(Tensor(sp, device), bn.offset)
        lm = BatchNorm(Tensor(sm, device), bn.offset)
        fd = (float(loss(lp, x0)) - float(loss(lm, x0))) / (2 * eps)
        assert float(g.scale.numpy()[j]) == pytest.approx(fd, rel=3e-2, abs=1e-2)


def test_batchnorm_input_gradient_fd(device):
    bn = BatchNorm.create(2, device=device)

    def loss(x):
        y = bn(x)
        return (y * y).sum()

    x0 = Tensor(
        np.random.default_rng(11).standard_normal((4, 2)).astype(np.float32),
        device,
    )
    g = gradient(loss, x0)
    base = x0.numpy().astype(np.float64)
    eps = 1e-2
    for idx in [(0, 0), (2, 1)]:
        xp, xm = base.copy(), base.copy()
        xp[idx] += eps
        xm[idx] -= eps
        fd = (
            float(loss(Tensor(xp.astype(np.float32), device)))
            - float(loss(Tensor(xm.astype(np.float32), device)))
        ) / (2 * eps)
        assert float(g.numpy()[idx]) == pytest.approx(fd, rel=5e-2, abs=5e-2)
