"""Model definitions: LeNet (Figure 6), MLP, ResNets."""

import numpy as np
import pytest

from repro.core import gradient
from repro.nn import MLP, LeNet, resnet_cifar_small, softmax_cross_entropy
from repro.tensor import Tensor, eager_device, lazy_device, one_hot


@pytest.fixture(params=["eager", "lazy"])
def device(request):
    return eager_device() if request.param == "eager" else lazy_device()


def test_lenet_shapes(device):
    model = LeNet.create(device)
    x = Tensor(np.zeros((4, 28, 28, 1), np.float32), device)
    logits = model(x)
    assert logits.shape == (4, 10)


def test_lenet_structure_matches_figure6():
    model = LeNet.create(eager_device())
    assert model.conv1.filter.shape == (5, 5, 1, 6)
    assert model.conv1.padding == "same"
    assert model.conv2.filter.shape == (5, 5, 6, 16)
    assert model.fc1.weight.shape == (400, 120)
    assert model.fc2.weight.shape == (120, 84)
    assert model.fc3.weight.shape == (84, 10)


def test_lenet_gradient_covers_all_parameters(device):
    model = LeNet.create(device)
    x = Tensor(
        np.random.default_rng(0).standard_normal((2, 28, 28, 1)).astype(np.float32),
        device,
    )
    labels = one_hot(Tensor([3.0, 7.0], device), 10)

    def loss(m, xb, yb):
        return softmax_cross_entropy(m(xb), yb)

    g = gradient(loss, model, x, labels, wrt=0)
    for field in ("conv1", "conv2"):
        layer_g = getattr(g, field)
        assert float(layer_g.filter.abs().sum()) > 0
        assert float(layer_g.bias.abs().sum()) > 0
    for field in ("fc1", "fc2", "fc3"):
        layer_g = getattr(g, field)
        assert float(layer_g.weight.abs().sum()) > 0


def test_mlp(device):
    model = MLP.create(8, [16, 16], 3, device=device)
    x = Tensor(np.random.default_rng(1).standard_normal((5, 8)).astype(np.float32), device)
    assert model(x).shape == (5, 3)


def test_resnet_small(device):
    model = resnet_cifar_small(device)
    x = Tensor(
        np.random.default_rng(2).standard_normal((2, 16, 16, 3)).astype(np.float32),
        device,
    )
    logits = model(x)
    assert logits.shape == (2, 10)


def test_resnet_gradient_flows_through_skip_connections(device):
    model = resnet_cifar_small(device)
    x = Tensor(
        np.random.default_rng(3).standard_normal((2, 16, 16, 3)).astype(np.float32),
        device,
    )
    labels = one_hot(Tensor([0.0, 1.0], device), 10)

    def loss(m, xb, yb):
        return softmax_cross_entropy(m(xb), yb)

    g = gradient(loss, model, x, labels, wrt=0)
    assert float(g.stem.conv.filter.abs().sum()) > 0
    first_block = g.stages[0].layers[0]
    assert float(first_block.conv1.conv.filter.abs().sum()) > 0
    assert float(g.head.weight.abs().sum()) > 0


def test_resnet56_block_count():
    from repro.nn import resnet56_cifar

    model = resnet56_cifar(eager_device(), width=4)  # narrow, fast to build
    total_blocks = sum(len(stage.layers) for stage in model.stages)
    assert total_blocks == 27  # 3 stages x 9 blocks => 54 convs + stem + head


def test_models_deterministic_per_seed():
    a = LeNet.create(eager_device(), seed=42)
    b = LeNet.create(eager_device(), seed=42)
    np.testing.assert_array_equal(a.conv1.filter.numpy(), b.conv1.filter.numpy())
    c = LeNet.create(eager_device(), seed=43)
    assert not np.array_equal(a.conv1.filter.numpy(), c.conv1.filter.numpy())
