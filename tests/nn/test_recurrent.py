"""Recurrent layers: dynamic unrolling, gradients through time, learning."""

import numpy as np
import pytest

from repro.core import gradient, value_and_gradient
from repro.nn.recurrent import GRU, SimpleRNN
from repro.optim import Adam
from repro.tensor import Tensor, eager_device, lazy_device, mse_loss


@pytest.fixture(params=["eager", "lazy"])
def device(request):
    return eager_device() if request.param == "eager" else lazy_device()


def make_sequence(device, T, batch=2, features=3, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Tensor(rng.standard_normal((batch, features)).astype(np.float32), device)
        for _ in range(T)
    ]


def test_rnn_forward_shapes(device):
    rnn = SimpleRNN.create(3, 5, device=device, rng=np.random.default_rng(1))
    for T in (1, 4, 9):
        h = rnn(make_sequence(device, T))
        assert h.shape == (2, 5)


def test_rnn_handles_varying_lengths_without_retransformation(device):
    # Dynamic architecture per call: the same AOT derivative covers every
    # sequence length (the DyNet comparison of Section 6).
    rnn = SimpleRNN.create(3, 4, device=device, rng=np.random.default_rng(2))

    def loss(model, inputs):
        return (model(inputs) * model(inputs)).sum()

    from repro.core.api import _promote

    df = _promote(loss)
    plans = set()
    for T in (2, 3, 7, 4):
        g = gradient(loss, rnn, make_sequence(device, T), wrt=0)
        assert g.w_hh.shape == (4, 4)
        plans.add(id(df.vjp_plan((0,))))
    assert len(plans) == 1  # one synthesized derivative for all lengths


def test_gradient_through_time_matches_fd(device):
    rnn = SimpleRNN.create(2, 3, device=device, rng=np.random.default_rng(3))
    inputs = make_sequence(device, 4, batch=1, features=2, seed=4)

    def loss(model, xs):
        return model(xs).sum()

    g = gradient(loss, rnn, inputs, wrt=0)
    eps = 1e-2
    w = rnn.w_hh.numpy().copy()
    for idx in [(0, 0), (1, 2), (2, 1)]:
        wp, wm = w.copy(), w.copy()
        wp[idx] += eps
        wm[idx] -= eps
        mp = SimpleRNN(rnn.w_ih, Tensor(wp, device), rnn.bias)
        mm = SimpleRNN(rnn.w_ih, Tensor(wm, device), rnn.bias)
        fd = (float(loss(mp, inputs)) - float(loss(mm, inputs))) / (2 * eps)
        assert float(g.w_hh.numpy()[idx]) == pytest.approx(fd, rel=5e-2, abs=5e-3)


def test_rnn_learns_to_remember_first_input():
    """Train the RNN to output the first element of the sequence."""
    device = eager_device()
    rng = np.random.default_rng(5)
    rnn = SimpleRNN.create(1, 8, device=device, rng=rng)
    from repro.nn import Dense

    head = Dense.create(8, 1, device=device, rng=rng)

    def loss(model, inputs, target):
        return mse_loss(head(model(inputs)), target)

    opt = Adam(learning_rate=0.02)
    losses = []
    for step in range(150):
        seq_np = rng.standard_normal((3, 4, 1)).astype(np.float32) * 0.5
        inputs = [Tensor(seq_np[t], device) for t in range(3)]
        target = Tensor(seq_np[0], device)
        value, g = value_and_gradient(loss, rnn, inputs, target, wrt=0)
        opt.update(rnn, g)
        losses.append(float(value))
    assert np.mean(losses[-10:]) < np.mean(losses[:10]) * 0.5


def test_gru_forward_and_gradient(device):
    gru = GRU.create(3, 4, device=device, rng=np.random.default_rng(6))
    inputs = make_sequence(device, 5)
    h = gru(inputs)
    assert h.shape == (2, 4)

    def loss(model, xs):
        return (model(xs) * model(xs)).sum()

    g = gradient(loss, gru, inputs, wrt=0)
    for field in ("w_z", "u_z", "w_r", "u_r", "w_h", "u_h"):
        grad = getattr(g, field)
        assert float(grad.abs().sum()) > 0


def test_gru_gates_bound_hidden_state(device):
    gru = GRU.create(2, 3, device=device, rng=np.random.default_rng(7))
    inputs = make_sequence(device, 20, batch=1, features=2, seed=8)
    h = gru(inputs).numpy()
    assert np.all(np.abs(h) <= 1.0 + 1e-5)  # tanh candidates + convex gates
