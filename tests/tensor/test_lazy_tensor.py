"""LazyTensor semantics: the eager illusion, trace caching, barriers."""

import numpy as np
import pytest

from repro.hlo import clear_cache
from repro.hlo.compiler import STATS as COMPILER_STATS
from repro.tensor import LazyTensorBarrier, Tensor, lazy_device


def setup_function(_):
    clear_cache()
    COMPILER_STATS.reset()


def test_ops_do_not_execute_until_observed():
    dev = lazy_device()
    x = Tensor([1.0, 2.0], dev)
    y = (x * 2.0 + 1.0).tanh()
    # Nothing has been compiled or launched yet.
    assert COMPILER_STATS.compiles == 0
    assert dev.sim.stats.kernels_launched == 0
    assert not y._impl.is_source
    # Observation triggers compile + run.
    np.testing.assert_allclose(y.numpy(), np.tanh([3.0, 5.0]), rtol=1e-6)
    assert COMPILER_STATS.compiles == 1
    assert y._impl.is_source


def test_repr_does_not_materialize():
    dev = lazy_device()
    x = Tensor([1.0], dev)
    y = x + 1.0
    assert "unmaterialized" in repr(y)
    assert COMPILER_STATS.compiles == 0


def test_materialization_is_cached_on_node():
    dev = lazy_device()
    x = Tensor([1.0, 2.0], dev)
    y = x * 3.0
    first = y.numpy()
    compiles = COMPILER_STATS.compiles
    second = y.numpy()  # already a source: no recompilation, no rerun
    np.testing.assert_array_equal(first, second)
    assert COMPILER_STATS.compiles == compiles


def test_trace_cache_hits_across_iterations():
    """The same computation on fresh data each step compiles exactly once —
    'each unique trace is only compiled by XLA once' (Section 3.4)."""
    dev = lazy_device()
    w = Tensor([[0.5, -0.5], [0.25, 0.75]], dev)
    for step in range(5):
        x = Tensor(np.full((3, 2), step, np.float32), dev)
        loss = ((x @ w).relu()).sum()
        loss.item()
    assert COMPILER_STATS.compiles == 1
    assert COMPILER_STATS.cache_hits == 4
    assert dev.runtime.compiles_triggered == 1
    assert dev.runtime.materializations == 5


def test_shape_change_triggers_recompilation():
    dev = lazy_device()
    w = Tensor(np.ones((4, 2), np.float32), dev)
    for batch in (1, 2, 4):
        x = Tensor(np.ones((batch, 4), np.float32), dev)
        (x @ w).sum().item()
    # Every distinct input shape is a distinct trace (Section 3.4).
    assert COMPILER_STATS.compiles == 3


def test_tracing_overhead_recurs_every_iteration():
    dev = lazy_device()
    w = Tensor([1.0, 2.0], dev)
    baseline = dev.runtime.ops_traced
    for _ in range(3):
        x = Tensor([1.0, 1.0], dev)
        ((x * w) + w).sum().item()
    traced = dev.runtime.ops_traced - baseline
    assert traced == 3 * 3  # mul, add, sum re-traced on every iteration


def test_barrier_materializes_live_tensors():
    dev = lazy_device()
    a = Tensor([1.0], dev)
    b = a * 2.0
    c = a + 3.0
    LazyTensorBarrier(dev)
    assert b._impl.is_source
    assert c._impl.is_source
    # One fused fragment, one compile.
    assert COMPILER_STATS.compiles == 1
    np.testing.assert_allclose(b.numpy(), [2.0])
    np.testing.assert_allclose(c.numpy(), [4.0])
    assert COMPILER_STATS.compiles == 1  # numpy() after barrier is free


def test_barrier_cuts_traces_for_cache_stability():
    """With a barrier after each step, step N's trace does not grow with N
    (no accidental unrolling of the training loop)."""
    dev = lazy_device()
    w = Tensor([1.0, 1.0], dev)
    trace_sizes = []
    for _ in range(4):
        before = dev.runtime.ops_traced
        w = w - (w * 0.1)
        LazyTensorBarrier(dev)
        trace_sizes.append(dev.runtime.ops_traced - before)
    assert len(set(trace_sizes)) == 1  # constant work per step


def test_without_barrier_trace_grows():
    dev = lazy_device()
    w = Tensor([1.0, 1.0], dev)
    for _ in range(4):
        w = w - (w * 0.1)
    # The full unrolled chain materializes at once: 8 ops in one fragment.
    w.numpy()
    assert dev.runtime.ops_traced == 8
    assert COMPILER_STATS.compiles == 1


def test_mixed_tensor_and_host_computation():
    """Host code can consume tensor values mid-computation and feed them
    back — tracing composes with arbitrary host computation (Section 3.3's
    robotics-motion-planning argument)."""
    dev = lazy_device()
    x = Tensor([3.0], dev)
    y = x * x  # traced
    host_value = float(y)  # observation: run the first fragment
    # "black-box CPU solver":
    solved = host_value**0.5 + 1.0
    z = y * solved  # a second trace begins, consuming y as a source
    np.testing.assert_allclose(z.numpy(), [9.0 * 4.0])
    assert COMPILER_STATS.compiles == 2  # two fragments, discovered dynamically


def test_lazy_matches_eager_numerics():
    from repro.tensor import eager_device

    rng = np.random.default_rng(0)
    xv = rng.standard_normal((5, 8)).astype(np.float32)
    wv = rng.standard_normal((8, 3)).astype(np.float32)

    def program(dev):
        x = Tensor(xv, dev)
        w = Tensor(wv, dev)
        h = (x @ w).relu()
        return (h.mean() + h.max()).item()

    assert program(lazy_device()) == pytest.approx(program(eager_device()), rel=1e-5)


def test_fusion_happens_in_compiled_trace():
    dev = lazy_device()
    x = Tensor(np.ones(128, np.float32), dev)
    y = ((x * 2.0 + 1.0).tanh() - 0.5).exp()
    y.numpy()
    stats = dev.sim.stats
    # The elementwise chain compiled into fewer kernels than ops.
    assert stats.fused_kernels >= 1
    assert stats.ops_in_fused_kernels > stats.fused_kernels


def test_compile_cost_charged_once():
    dev = lazy_device()
    w = Tensor([1.0], dev)

    def step():
        x = Tensor([2.0], dev)
        (x * w + 1.0).sum().item()

    step()
    t_first = dev.runtime.host_time
    step()
    t_second = dev.runtime.host_time - t_first
    # Second iteration avoids JIT compilation: strictly cheaper.
    assert t_second < t_first / 2
