"""Property-based broadcasting/ops equivalence vs NumPy on all backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, eager_device, lazy_device, naive_device

finite32 = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False, width=32
)


@st.composite
def broadcast_pair(draw):
    """Two broadcast-compatible shapes (NumPy rules) with data."""
    rank = draw(st.integers(1, 3))
    base = [draw(st.integers(1, 4)) for _ in range(rank)]
    a_dims = [d if draw(st.booleans()) else 1 for d in base]
    b_dims = [d if (a != 1 or draw(st.booleans())) else 1 for d, a in zip(base, a_dims)]
    # Possibly drop leading axes from one side.
    cut_a = draw(st.integers(0, rank - 1))
    cut_b = 0 if cut_a else draw(st.integers(0, rank - 1))
    a_shape = tuple(a_dims[cut_a:]) or (1,)
    b_shape = tuple(b_dims[cut_b:]) or (1,)
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = rng.uniform(-5, 5, a_shape).astype(np.float32)
    b = rng.uniform(0.5, 5, b_shape).astype(np.float32)
    return a, b


DEVICES = [naive_device, eager_device, lazy_device]


@given(broadcast_pair(), st.sampled_from(["add", "sub", "mul", "div"]))
@settings(max_examples=40, deadline=None)
def test_binary_broadcasting_matches_numpy(pair, op):
    a, b = pair
    np_expected = {
        "add": a + b,
        "sub": a - b,
        "mul": a * b,
        "div": a / b,
    }[op]
    for factory in DEVICES:
        device = factory()
        ta, tb = Tensor(a, device), Tensor(b, device)
        got = {
            "add": ta + tb,
            "sub": ta - tb,
            "mul": ta * tb,
            "div": ta / tb,
        }[op]
        assert got.shape == np_expected.shape
        np.testing.assert_allclose(
            got.numpy(), np_expected, rtol=1e-4, atol=1e-5
        )


@given(broadcast_pair())
@settings(max_examples=30, deadline=None)
def test_sum_to_match_inverts_broadcast(pair):
    """sum_to_match is the adjoint of broadcasting: sum over expanded dims."""
    a, b = pair
    out_shape = np.broadcast_shapes(a.shape, b.shape)
    expanded = np.broadcast_to(a, out_shape).astype(np.float32)
    # Reference: sum the expanded tensor back to a's shape.
    reference = expanded.copy()
    lead = len(out_shape) - len(a.shape)
    if lead:
        reference = reference.sum(axis=tuple(range(lead)))
    for axis, dim in enumerate(a.shape):
        if dim == 1 and reference.shape[axis] != 1:
            reference = reference.sum(axis=axis, keepdims=True)
    for factory in DEVICES:
        device = factory()
        t = Tensor(expanded, device).sum_to_match(a.shape)
        assert t.shape == a.shape
        np.testing.assert_allclose(t.numpy(), reference, rtol=1e-4)


@given(
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_reduction_axes_match_numpy(rows, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-5, 5, (rows, cols)).astype(np.float32)
    for factory in DEVICES:
        device = factory()
        t = Tensor(a, device)
        np.testing.assert_allclose(t.sum(axes=0).numpy(), a.sum(0), rtol=1e-4)
        np.testing.assert_allclose(
            t.mean(axes=1, keepdims=True).numpy(),
            a.mean(1, keepdims=True),
            rtol=1e-4,
        )
        np.testing.assert_allclose(t.max().numpy(), a.max(), rtol=1e-5)


@given(broadcast_pair())
@settings(max_examples=20, deadline=None)
def test_backends_agree_with_each_other(pair):
    a, b = pair
    results = []
    for factory in DEVICES:
        device = factory()
        ta, tb = Tensor(a, device), Tensor(b, device)
        results.append(((ta * tb + ta).tanh()).sum().item())
    assert results[0] == pytest.approx(results[1], rel=1e-4, abs=1e-5)
    assert results[1] == pytest.approx(results[2], rel=1e-5, abs=1e-6)
