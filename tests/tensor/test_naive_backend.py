"""Naive backend: pure-Python arrays checked against NumPy (property-based).

Per the project's performance guidance, the easy-to-audit Python
implementation is the gold standard the accelerated kernels are compared
to — these tests also go the other way, pinning the naive backend to
NumPy semantics on randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import naive_backend as nb

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)


def small_arrays(max_dims=3, max_side=4):
    return array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side).flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite)
    )


def to_naive(a: np.ndarray) -> nb.NaiveArray:
    return nb.from_nested(a.tolist())


def to_numpy(a: nb.NaiveArray) -> np.ndarray:
    return np.asarray(nb.to_nested(a), dtype=np.float64).reshape(a.shape)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_roundtrip(a):
    np.testing.assert_allclose(to_numpy(to_naive(a)), a)


@given(small_arrays(), st.sampled_from(["add", "sub", "mul", "maximum", "minimum"]))
@settings(max_examples=60, deadline=None)
def test_binary_elementwise_matches_numpy(a, op):
    b = a * 0.5 + 1.0
    got = to_numpy(nb.binary(op, to_naive(a), to_naive(b)))
    expected = {
        "add": a + b,
        "sub": a - b,
        "mul": a * b,
        "maximum": np.maximum(a, b),
        "minimum": np.minimum(a, b),
    }[op]
    np.testing.assert_allclose(got, expected, rtol=1e-9)


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_unary_matches_numpy(a):
    np.testing.assert_allclose(
        to_numpy(nb.unary("tanh", to_naive(a))), np.tanh(a), rtol=1e-9
    )
    np.testing.assert_allclose(
        to_numpy(nb.unary("relu", to_naive(a))), np.maximum(a, 0), rtol=1e-9
    )
    np.testing.assert_allclose(to_numpy(nb.unary("neg", to_naive(a))), -a)


@given(small_arrays(max_dims=2))
@settings(max_examples=40, deadline=None)
def test_broadcast_scalar_matches_numpy(a):
    s = nb.from_nested(2.5)
    got = to_numpy(nb.binary("mul", to_naive(a), s))
    np.testing.assert_allclose(got, a * 2.5, rtol=1e-9)


def test_broadcast_row_and_column():
    m = to_naive(np.arange(6, dtype=float).reshape(2, 3))
    row = to_naive(np.array([10.0, 20.0, 30.0]))
    col = to_naive(np.array([[100.0], [200.0]]))
    np.testing.assert_allclose(
        to_numpy(nb.binary("add", m, row)),
        np.arange(6).reshape(2, 3) + np.array([10, 20, 30]),
    )
    np.testing.assert_allclose(
        to_numpy(nb.binary("add", m, col)),
        np.arange(6).reshape(2, 3) + np.array([[100], [200]]),
    )


def test_broadcast_incompatible_raises():
    with pytest.raises(ValueError, match="broadcast"):
        nb.binary("add", to_naive(np.zeros(3)), to_naive(np.zeros(4)))


@given(
    st.integers(1, 4), st.integers(1, 4), st.integers(1, 4), st.integers(0, 1000)
)
@settings(max_examples=30, deadline=None)
def test_matmul_matches_numpy(m, k, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    got = to_numpy(nb.matmul(to_naive(a), to_naive(b)))
    np.testing.assert_allclose(got, a @ b, rtol=1e-9)


def test_matmul_vector():
    v = to_naive(np.array([1.0, 2.0]))
    m = to_naive(np.array([[3.0, 4.0], [5.0, 6.0]]))
    np.testing.assert_allclose(to_numpy(nb.matmul(v, m)), [13.0, 16.0])


def test_matmul_shape_errors():
    with pytest.raises(ValueError, match="mismatch"):
        nb.matmul(to_naive(np.zeros((2, 3))), to_naive(np.zeros((2, 3))))
    with pytest.raises(ValueError, match="rank"):
        nb.matmul(to_naive(np.zeros((2, 2, 2))), to_naive(np.zeros((2, 2))))


@given(small_arrays(max_dims=3), st.booleans())
@settings(max_examples=40, deadline=None)
def test_reduce_all_matches_numpy(a, keepdims):
    got = to_numpy(nb.reduce("sum", to_naive(a), None, keepdims))
    expected = a.sum(keepdims=keepdims)
    np.testing.assert_allclose(got.reshape(np.shape(expected)), expected, rtol=1e-7)


@given(st.integers(0, 2), st.booleans(), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_reduce_axis_matches_numpy(axis, keepdims, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((2, 3, 4))
    for kind, np_fn in [("sum", np.sum), ("mean", np.mean), ("max", np.max)]:
        got = to_numpy(nb.reduce(kind, to_naive(a), (axis,), keepdims))
        expected = np_fn(a, axis=axis, keepdims=keepdims)
        np.testing.assert_allclose(got, expected, rtol=1e-7)


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_transpose_matches_numpy(seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((2, 3, 4))
    for perm in [(0, 1, 2), (2, 1, 0), (1, 0, 2), (2, 0, 1)]:
        got = to_numpy(nb.transpose(to_naive(a), perm))
        np.testing.assert_allclose(got, np.transpose(a, perm))


def test_reshape_and_errors():
    a = to_naive(np.arange(6, dtype=float))
    np.testing.assert_allclose(
        to_numpy(nb.reshape(a, (2, 3))), np.arange(6).reshape(2, 3)
    )
    with pytest.raises(ValueError, match="reshape"):
        nb.reshape(a, (4, 2))


def test_sum_to_match():
    a = to_naive(np.ones((3, 4)))
    reduced = nb.sum_to_match(a, (4,))
    np.testing.assert_allclose(to_numpy(reduced), [3, 3, 3, 3])
    kept = nb.sum_to_match(a, (3, 4))
    assert kept is a
    col = nb.sum_to_match(a, (3, 1))
    np.testing.assert_allclose(to_numpy(col), [[4], [4], [4]])


def test_select_and_compare():
    a = to_naive(np.array([-1.0, 0.0, 2.0]))
    zero = nb.from_nested(0.0)
    mask = nb.compare("gt", a, zero)
    np.testing.assert_allclose(to_numpy(mask), [0, 0, 1])
    out = nb.select(mask, a, nb.unary("neg", a))
    np.testing.assert_allclose(to_numpy(out), [1, 0, 2])


def test_ragged_nested_rejected():
    with pytest.raises(ValueError, match="ragged"):
        nb.from_nested([[1.0, 2.0], [3.0]])
