"""The AD system differentiating Tensor programs on every backend —
demonstrating the decoupling of AD from the Tensor implementation."""

import numpy as np
import pytest

from repro.core import gradient, value_and_gradient
from repro.tensor import (
    Tensor,
    avg_pool2d,
    conv2d,
    eager_device,
    flatten_batch,
    lazy_device,
    matmul,
    max_pool2d,
    mse_loss,
    naive_device,
    one_hot,
    softmax_cross_entropy,
)

DEVICES = {"naive": naive_device, "eager": eager_device, "lazy": lazy_device}


@pytest.fixture(params=sorted(DEVICES))
def device(request):
    return DEVICES[request.param]()


def numeric_grad(f, x: Tensor, eps=1e-2):
    """Central finite differences w.r.t. a tensor argument."""
    base = x.numpy().astype(np.float64)
    g = np.zeros_like(base)
    flat = base.reshape(-1)
    gflat = g.reshape(-1)
    for i in range(flat.size):
        plus, minus = flat.copy(), flat.copy()
        plus[i] += eps
        minus[i] -= eps
        fp = f(Tensor(plus.reshape(base.shape), x.device))
        fm = f(Tensor(minus.reshape(base.shape), x.device))
        gflat[i] = (float(fp) - float(fm)) / (2 * eps)
    return g


def check_tensor_grad(f, x: Tensor, rtol=2e-2, atol=2e-2):
    g = gradient(f, x)
    expected = numeric_grad(f, x)
    np.testing.assert_allclose(g.numpy(), expected, rtol=rtol, atol=atol)


def test_sum_of_squares(device):
    def f(x):
        return (x * x).sum()

    x = Tensor([[1.0, -2.0], [3.0, 0.5]], device)
    g = gradient(f, x)
    np.testing.assert_allclose(g.numpy(), 2 * x.numpy(), rtol=1e-5)


def test_elementwise_chain(device):
    def f(x):
        return ((x * 2.0 + 1.0).tanh()).sum()

    x = Tensor([0.1, -0.3, 0.7], device)
    check_tensor_grad(f, x)


def test_broadcast_bias_gradient(device):
    def f(b):
        x = Tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], b.device)
        return ((x + b) * (x + b)).sum()

    b = Tensor([0.5, -0.5], device)
    check_tensor_grad(f, b)


def test_scalar_broadcast_gradient(device):
    def f(x):
        return (x * 3.0 + 2.0).sum()

    x = Tensor([[1.0, 1.0]], device)
    g = gradient(f, x)
    np.testing.assert_allclose(g.numpy(), [[3.0, 3.0]])


def test_matmul_gradient(device):
    a0 = Tensor([[1.0, 2.0], [3.0, 4.0]], device)
    b0 = Tensor([[0.5, -0.5], [1.5, 2.0]], device)

    def fa(a):
        return (matmul(a, b0)).sum()

    def fb(b):
        return (matmul(a0, b)).sum()

    check_tensor_grad(fa, a0)
    check_tensor_grad(fb, b0)


def test_mean_and_max_gradients(device):
    def f(x):
        return x.mean() + x.max()

    x = Tensor([[1.0, 5.0], [2.0, 0.0]], device)
    g = gradient(f, x).numpy()
    expected = np.full((2, 2), 0.25)
    expected[0, 1] += 1.0
    np.testing.assert_allclose(g, expected, rtol=1e-5)


def test_relu_gradient(device):
    def f(x):
        return x.relu().sum()

    x = Tensor([-1.0, 0.5, 2.0], device)
    g = gradient(f, x)
    np.testing.assert_allclose(g.numpy(), [0, 1, 1])


def test_reshape_transpose_gradient(device):
    def f(x):
        return (x.reshaped((4,)) * Tensor([1.0, 2.0, 3.0, 4.0], x.device)).sum()

    x = Tensor([[1.0, 1.0], [1.0, 1.0]], device)
    g = gradient(f, x)
    np.testing.assert_allclose(g.numpy(), [[1, 2], [3, 4]])


def test_mse_loss_gradient(device):
    targets = Tensor([1.0, 2.0, 3.0], device)

    def f(p):
        return mse_loss(p, targets)

    p = Tensor([1.5, 1.5, 1.5], device)
    g = gradient(f, p)
    np.testing.assert_allclose(
        g.numpy(), 2 / 3 * (p.numpy() - targets.numpy()), rtol=1e-5
    )


def test_mixed_tensor_scalar_wrt(device):
    # Differentiate w.r.t. a python float scaling a tensor computation.
    x = Tensor([1.0, 2.0, 3.0], device)

    def f(s):
        return (x * s).sum()

    g = gradient(f, 2.0)
    assert float(g) == pytest.approx(6.0)


def test_control_flow_over_tensor_values(device):
    # Host control flow on observed tensor values; AD follows the path.
    def f(x):
        y = (x * x).sum()
        if y > 10.0:  # observation (materializes on lazy)
            return y * 2.0
        return y

    big = Tensor([3.0, 3.0], device)
    small = Tensor([1.0, 1.0], device)
    np.testing.assert_allclose(gradient(f, big).numpy(), [12.0, 12.0])
    np.testing.assert_allclose(gradient(f, small).numpy(), [2.0, 2.0])


# Conv/pool gradients only on accelerated backends (naive has no conv).


@pytest.fixture(params=["eager", "lazy"])
def accel(request):
    return DEVICES[request.param]()


def test_conv2d_gradient(accel):
    rng = np.random.default_rng(0)
    x0 = Tensor(rng.standard_normal((1, 5, 5, 1)).astype(np.float32), accel)
    f0 = Tensor(rng.standard_normal((3, 3, 1, 2)).astype(np.float32), accel)

    def loss_x(x):
        return conv2d(x, f0).sum()

    def loss_f(f):
        return conv2d(x0, f).sum()

    check_tensor_grad(loss_x, x0)
    check_tensor_grad(loss_f, f0)


def test_conv2d_same_padding_gradient(accel):
    rng = np.random.default_rng(1)
    x0 = Tensor(rng.standard_normal((1, 4, 4, 2)).astype(np.float32), accel)
    f0 = Tensor(rng.standard_normal((3, 3, 2, 1)).astype(np.float32), accel)

    def loss(f):
        return (conv2d(x0, f, 1, "same") * conv2d(x0, f, 1, "same")).sum()

    check_tensor_grad(loss, f0, rtol=5e-2, atol=5e-2)


def test_pool_gradients(accel):
    rng = np.random.default_rng(2)
    x0 = Tensor(rng.standard_normal((1, 4, 4, 1)).astype(np.float32), accel)

    def loss_avg(x):
        return (avg_pool2d(x, 2, 2) * 3.0).sum()

    def loss_max(x):
        return max_pool2d(x, 2, 2).sum()

    check_tensor_grad(loss_avg, x0)
    g = gradient(loss_max, x0)
    assert float(g.numpy().sum()) == pytest.approx(4.0)


def test_softmax_cross_entropy_gradient(accel):
    rng = np.random.default_rng(3)
    logits0 = Tensor(rng.standard_normal((4, 5)).astype(np.float32), accel)
    labels = one_hot(Tensor([0.0, 2.0, 4.0, 1.0], accel), 5)

    def loss(logits):
        return softmax_cross_entropy(logits, labels)

    check_tensor_grad(loss, logits0, rtol=5e-2, atol=1e-3)


def test_flatten_gradient(accel):
    x0 = Tensor(np.ones((2, 3, 4, 1), np.float32), accel)

    def loss(x):
        flat = flatten_batch(x)
        return (flat * flat).sum()

    g = gradient(loss, x0)
    np.testing.assert_allclose(g.numpy(), 2 * np.ones((2, 3, 4, 1)))


def test_gradient_descent_converges_on_tensor(device):
    target = Tensor([3.0, -1.0], device)

    def loss(w):
        return mse_loss(w, target)

    w = Tensor([0.0, 0.0], device)
    for _ in range(100):
        _, g = value_and_gradient(loss, w)
        w.move_(g * -0.5)
    np.testing.assert_allclose(w.numpy(), [3.0, -1.0], atol=1e-3)


def test_gradient_on_lazy_is_lazy_until_observed():
    from repro.hlo import clear_cache
    from repro.hlo.compiler import STATS

    clear_cache()
    STATS.reset()
    dev = lazy_device()

    def f(x):
        return (x * x).sum()

    x = Tensor([1.0, 2.0], dev)
    g = gradient(f, x)
    # Differentiation itself stayed in the traced world: nothing compiled.
    assert STATS.compiles == 0
    np.testing.assert_allclose(g.numpy(), [2.0, 4.0])
    assert STATS.compiles == 1
