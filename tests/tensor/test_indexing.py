"""Tensor indexing, slicing, concat — values and gradients on all backends."""

import numpy as np
import pytest

from repro.core import gradient
from repro.tensor import (
    Tensor,
    eager_device,
    lazy_device,
    naive_device,
    tensor_concat,
)

DEVICES = {"naive": naive_device, "eager": eager_device, "lazy": lazy_device}


@pytest.fixture(params=sorted(DEVICES))
def device(request):
    return DEVICES[request.param]()


def test_len_and_int_index(device):
    x = Tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], device)
    assert len(x) == 3
    np.testing.assert_allclose(x[0].numpy(), [1, 2])
    np.testing.assert_allclose(x[2].numpy(), [5, 6])
    np.testing.assert_allclose(x[-1].numpy(), [5, 6])
    assert x[1].shape == (2,)


def test_index_out_of_range(device):
    x = Tensor([1.0, 2.0], device)
    with pytest.raises(IndexError):
        x[5]
    with pytest.raises(TypeError):
        len(Tensor(1.0, device))


def test_slice(device):
    x = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), device)
    np.testing.assert_allclose(
        x[1:3].numpy(), np.arange(12).reshape(4, 3)[1:3]
    )
    np.testing.assert_allclose(x[:2].numpy(), np.arange(6).reshape(2, 3))
    assert x[2:2].shape == (0, 3)


def test_index_gradient_is_one_hot_row(device):
    def f(x):
        return (x[1] * x[1]).sum()

    x = Tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], device)
    g = gradient(f, x)
    np.testing.assert_allclose(g.numpy(), [[0, 0], [6, 8], [0, 0]])


def test_index_scalar_rows(device):
    def f(x):
        return x[0] * x[2]

    x = Tensor([2.0, 5.0, 7.0], device)
    g = gradient(f, x)
    np.testing.assert_allclose(g.numpy(), [7, 0, 2])


def test_indexing_in_loop_gradient(device):
    def f(x):
        total = x[0].sum() * 0.0
        for i in range(len(x)):
            total = total + (x[i] * float(i)).sum()
        return total

    x = Tensor(np.ones((3, 2), np.float32), device)
    g = gradient(f, x)
    np.testing.assert_allclose(g.numpy(), [[0, 0], [1, 1], [2, 2]])


def test_concat_values(device):
    a = Tensor([[1.0, 2.0]], device)
    b = Tensor([[3.0, 4.0], [5.0, 6.0]], device)
    out = tensor_concat([a, b])
    np.testing.assert_allclose(out.numpy(), [[1, 2], [3, 4], [5, 6]])


def test_concat_axis1():
    device = eager_device()
    a = Tensor([[1.0], [2.0]], device)
    b = Tensor([[3.0, 4.0], [5.0, 6.0]], device)
    out = tensor_concat([a, b], 1)
    np.testing.assert_allclose(out.numpy(), [[1, 3, 4], [2, 5, 6]])


@pytest.fixture(params=["eager", "lazy"])
def accel(request):
    return DEVICES[request.param]()


def test_concat_gradient(accel):
    a0 = Tensor([[1.0, 1.0]], accel)
    b0 = Tensor([[2.0, 2.0], [3.0, 3.0]], accel)

    def f(a, b):
        joined = tensor_concat([a, b])
        weights = Tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], a.device)
        return (joined * weights).sum()

    ga, gb = gradient(f, a0, b0)
    np.testing.assert_allclose(ga.numpy(), [[1, 2]])
    np.testing.assert_allclose(gb.numpy(), [[3, 4], [5, 6]])


def test_slice_roundtrip_with_concat(accel):
    x0 = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2), accel)

    def f(x):
        # split and re-join; gradient must be the identity map
        rejoined = tensor_concat([x[:2], x[2:4]])
        return (rejoined * rejoined).sum()

    g = gradient(f, x0)
    np.testing.assert_allclose(g.numpy(), 2 * x0.numpy())
