"""Automatic trace cutting — the paper's Section 3.4 future work,
implemented: sufficiently large trace fragments compile and dispatch
automatically, with no user annotations."""

import numpy as np

from repro.hlo import clear_cache
from repro.hlo.compiler import STATS
from repro.tensor import Tensor, lazy_device


def setup_function(_):
    clear_cache()
    STATS.reset()


def test_auto_cut_fires_at_threshold():
    device = lazy_device(auto_barrier_threshold=10)
    x = Tensor(np.ones(8, np.float32), device)
    y = x
    for _ in range(25):
        y = y * 1.01
    # Fragments were dispatched automatically mid-loop.
    assert device.runtime.auto_cuts >= 2
    np.testing.assert_allclose(y.numpy(), 1.01**25 * np.ones(8), rtol=1e-4)


def test_auto_cut_bounds_fragment_size():
    threshold = 12
    device = lazy_device(auto_barrier_threshold=threshold)
    device.runtime.capture_traces = True
    x = Tensor(np.ones(4, np.float32), device)
    y = x
    for _ in range(60):
        y = y + 0.5
    y.numpy()
    for text, _args in device.runtime.captured_traces:
        op_lines = [
            ln
            for ln in text.splitlines()
            if " add(" in ln or " multiply(" in ln
        ]
        assert len(op_lines) <= threshold


def test_auto_cut_matches_uncut_numerics():
    def program(device):
        x = Tensor(np.linspace(0, 1, 16).astype(np.float32), device)
        y = x
        for i in range(40):
            y = (y * 1.1).tanh() + x * 0.01
        return y.numpy()

    uncut = program(lazy_device())
    cut = program(lazy_device(auto_barrier_threshold=7))
    np.testing.assert_allclose(uncut, cut, rtol=1e-5, atol=1e-6)


def test_auto_cut_keeps_cache_effective_across_iterations():
    device = lazy_device(auto_barrier_threshold=8)
    w = Tensor(np.ones(4, np.float32), device)

    def iteration():
        nonlocal w
        x = Tensor(np.full(4, 0.5, np.float32), device)
        y = x
        for _ in range(20):
            y = y * w + 0.1
        w = w - y * 0.001
        from repro.tensor import LazyTensorBarrier

        LazyTensorBarrier(device)

    iteration()
    compiles_after_first = STATS.compiles
    for _ in range(4):
        iteration()
    # Cut points are deterministic by op count, so later iterations reuse
    # the first iteration's compiled fragments.
    assert STATS.compiles <= compiles_after_first + 1
    assert STATS.cache_hits > 0


def test_disabled_by_default():
    device = lazy_device()
    x = Tensor(np.ones(4, np.float32), device)
    y = x
    for _ in range(100):
        y = y + 1.0
    assert device.runtime.auto_cuts == 0
    assert STATS.compiles == 0  # still fully lazy until observed
