"""Automatic trace cutting — the paper's Section 3.4 future work,
implemented: sufficiently large trace fragments compile and dispatch
automatically, with no user annotations."""

import numpy as np

from repro.hlo import clear_cache
from repro.hlo.compiler import STATS
from repro.tensor import Tensor, lazy_device


def setup_function(_):
    clear_cache()
    STATS.reset()


def test_auto_cut_fires_at_threshold():
    device = lazy_device(auto_barrier_threshold=10)
    x = Tensor(np.ones(8, np.float32), device)
    y = x
    for _ in range(25):
        y = y * 1.01
    # Fragments were dispatched automatically mid-loop.
    assert device.runtime.auto_cuts >= 2
    np.testing.assert_allclose(y.numpy(), 1.01**25 * np.ones(8), rtol=1e-4)


def test_auto_cut_bounds_fragment_size():
    threshold = 12
    device = lazy_device(auto_barrier_threshold=threshold)
    device.runtime.capture_traces = True
    x = Tensor(np.ones(4, np.float32), device)
    y = x
    for _ in range(60):
        y = y + 0.5
    y.numpy()
    for text, _args in device.runtime.captured_traces:
        op_lines = [
            ln
            for ln in text.splitlines()
            if " add(" in ln or " multiply(" in ln
        ]
        assert len(op_lines) <= threshold


def test_auto_cut_matches_uncut_numerics():
    def program(device):
        x = Tensor(np.linspace(0, 1, 16).astype(np.float32), device)
        y = x
        for i in range(40):
            y = (y * 1.1).tanh() + x * 0.01
        return y.numpy()

    uncut = program(lazy_device())
    cut = program(lazy_device(auto_barrier_threshold=7))
    np.testing.assert_allclose(uncut, cut, rtol=1e-5, atol=1e-6)


def test_auto_cut_keeps_cache_effective_across_iterations():
    device = lazy_device(auto_barrier_threshold=8)
    w = Tensor(np.ones(4, np.float32), device)

    def iteration():
        nonlocal w
        x = Tensor(np.full(4, 0.5, np.float32), device)
        y = x
        for _ in range(20):
            y = y * w + 0.1
        w = w - y * 0.001
        from repro.tensor import LazyTensorBarrier

        LazyTensorBarrier(device)

    iteration()
    compiles_after_first = STATS.compiles
    for _ in range(4):
        iteration()
    # Cut points are deterministic by op count, so later iterations reuse
    # the first iteration's compiled fragments.
    assert STATS.compiles <= compiles_after_first + 1
    assert STATS.cache_hits > 0


def test_disabled_by_default():
    device = lazy_device()
    x = Tensor(np.ones(4, np.float32), device)
    y = x
    for _ in range(100):
        y = y + 1.0
    assert device.runtime.auto_cuts == 0
    assert STATS.compiles == 0  # still fully lazy until observed


def test_threshold_is_reconfigurable_after_construction():
    device = lazy_device()
    assert device.runtime.auto_barrier_threshold is None
    device.runtime.auto_barrier_threshold = 10
    x = Tensor(np.ones(8, np.float32), device)
    y = x
    for _ in range(25):
        y = y * 1.01
    assert device.runtime.auto_cuts >= 2  # newly set threshold fires
    device.runtime.auto_barrier_threshold = None  # and can be disabled again
    assert device.runtime.auto_barrier_threshold is None


def test_threshold_rejects_invalid_values():
    import pytest

    device = lazy_device()
    for bad in (0, -3, 1.5, True, "8"):
        with pytest.raises(ValueError):
            device.runtime.auto_barrier_threshold = bad
    with pytest.raises(ValueError):
        lazy_device(auto_barrier_threshold=0)


def test_trace_stats_expose_auto_cuts():
    device = lazy_device(auto_barrier_threshold=8)
    x = Tensor(np.ones(4, np.float32), device)
    y = x
    for _ in range(30):
        y = y + 0.5
    y.numpy()
    stats = device.trace_stats()
    assert stats["auto_cuts"] == device.runtime.auto_cuts >= 1
    assert stats["auto_barrier_threshold"] == 8
    assert stats["ops_traced"] >= 30
    assert stats["compiles_triggered"] >= 1
    assert stats["materializations"] >= 1


def test_trace_stats_reset():
    device = lazy_device(auto_barrier_threshold=6)
    x = Tensor(np.ones(4, np.float32), device)
    y = x
    for _ in range(20):
        y = y * 1.1
    y.numpy()
    assert device.trace_stats()["auto_cuts"] >= 1
    device.runtime.reset()
    stats = device.trace_stats()
    assert stats["auto_cuts"] == 0
    assert stats["ops_traced"] == 0
    assert stats["ops_since_cut"] == 0


def test_eager_device_has_no_trace_stats():
    from repro.tensor import eager_device

    assert eager_device().trace_stats() == {}
