"""Tensor API basics on all three backends, checked against NumPy."""

import numpy as np
import pytest

from repro.errors import DeviceError, ShapeError
from repro.tensor import (
    Tensor,
    eager_device,
    lazy_device,
    naive_device,
    using_device,
)

DEVICES = {
    "naive": naive_device,
    "eager": eager_device,
    "lazy": lazy_device,
}


@pytest.fixture(params=sorted(DEVICES))
def device(request):
    return DEVICES[request.param]()


def t(data, device):
    return Tensor(data, device)


def test_creation_and_numpy(device):
    x = t([[1.0, 2.0], [3.0, 4.0]], device)
    assert x.shape == (2, 2)
    np.testing.assert_allclose(x.numpy(), [[1, 2], [3, 4]])


def test_constructors(device):
    np.testing.assert_allclose(Tensor.zeros((2, 3), device).numpy(), np.zeros((2, 3)))
    np.testing.assert_allclose(Tensor.ones((4,), device).numpy(), np.ones(4))
    np.testing.assert_allclose(Tensor.full((2,), 7.0, device).numpy(), [7, 7])
    r = Tensor.randn((3, 3), device, seed=0)
    assert r.shape == (3, 3)
    a = Tensor.arange(5, device)
    np.testing.assert_allclose(a.numpy(), [0, 1, 2, 3, 4])


def test_arithmetic(device):
    x = t([1.0, 2.0, 3.0], device)
    y = t([10.0, 20.0, 30.0], device)
    np.testing.assert_allclose((x + y).numpy(), [11, 22, 33])
    np.testing.assert_allclose((y - x).numpy(), [9, 18, 27])
    np.testing.assert_allclose((x * y).numpy(), [10, 40, 90])
    np.testing.assert_allclose((y / x).numpy(), [10, 10, 10])
    np.testing.assert_allclose((-x).numpy(), [-1, -2, -3])
    np.testing.assert_allclose((x**2.0).numpy(), [1, 4, 9])


def test_scalar_mixing(device):
    x = t([1.0, 2.0], device)
    np.testing.assert_allclose((x + 1.0).numpy(), [2, 3])
    np.testing.assert_allclose((1.0 + x).numpy(), [2, 3])
    np.testing.assert_allclose((2.0 * x).numpy(), [2, 4])
    np.testing.assert_allclose((1.0 - x).numpy(), [0, -1])
    np.testing.assert_allclose((2.0 / x).numpy(), [2, 1])


def test_broadcasting(device):
    m = t([[1.0, 2.0], [3.0, 4.0]], device)
    v = t([10.0, 20.0], device)
    np.testing.assert_allclose((m + v).numpy(), [[11, 22], [13, 24]])


def test_unary_math(device):
    x = t([0.5, 1.0, 2.0], device)
    np.testing.assert_allclose(x.exp().numpy(), np.exp([0.5, 1, 2]), rtol=1e-5)
    np.testing.assert_allclose(x.log().numpy(), np.log([0.5, 1, 2]), rtol=1e-5)
    np.testing.assert_allclose(x.tanh().numpy(), np.tanh([0.5, 1, 2]), rtol=1e-5)
    np.testing.assert_allclose(x.sqrt().numpy(), np.sqrt([0.5, 1, 2]), rtol=1e-5)
    y = t([-1.0, 0.0, 2.0], device)
    np.testing.assert_allclose(y.relu().numpy(), [0, 0, 2])
    np.testing.assert_allclose(y.abs().numpy(), [1, 0, 2])
    np.testing.assert_allclose(
        y.sigmoid().numpy(), 1 / (1 + np.exp([1.0, 0.0, -2.0])), rtol=1e-5
    )


def test_matmul(device):
    a = t([[1.0, 2.0], [3.0, 4.0]], device)
    b = t([[5.0, 6.0], [7.0, 8.0]], device)
    np.testing.assert_allclose((a @ b).numpy(), [[19, 22], [43, 50]])


def test_transpose_property(device):
    a = t([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]], device)
    np.testing.assert_allclose(a.T.numpy(), [[1, 4], [2, 5], [3, 6]])


def test_reductions(device):
    x = t([[1.0, 2.0], [3.0, 4.0]], device)
    assert float(x.sum()) == 10.0
    assert float(x.mean()) == 2.5
    assert float(x.max()) == 4.0
    np.testing.assert_allclose(x.sum(axes=0).numpy(), [4, 6])
    np.testing.assert_allclose(x.sum(axes=1).numpy(), [3, 7])
    np.testing.assert_allclose(x.mean(axes=1, keepdims=True).numpy(), [[1.5], [3.5]])


def test_reshape_transpose(device):
    x = t([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]], device)
    np.testing.assert_allclose(
        x.reshaped((3, 2)).numpy(), [[1, 2], [3, 4], [5, 6]]
    )
    np.testing.assert_allclose(
        x.reshaped((-1,)).numpy(), [1, 2, 3, 4, 5, 6]
    )
    np.testing.assert_allclose(
        x.transposed((1, 0)).numpy(), [[1, 4], [2, 5], [3, 6]]
    )


def test_comparisons_and_select(device):
    x = t([-1.0, 0.0, 1.0], device)
    mask = x > 0.0
    np.testing.assert_allclose(mask.select(x, -x).numpy(), [1, 0, 1])
    np.testing.assert_allclose((x >= 0.0).select(1.0, 0.0).numpy(), [0, 1, 1])


def test_sum_to_match(device):
    x = t(np.ones((3, 4), np.float32), device)
    reduced = x.sum_to_match((4,))
    np.testing.assert_allclose(reduced.numpy(), [3, 3, 3, 3])
    same = x.sum_to_match((3, 4))
    np.testing.assert_allclose(same.numpy(), np.ones((3, 4)))
    x2 = t(np.ones((3, 1), np.float32), device)
    kept = (x + 0.0).sum_to_match((3, 1)) if device.kind != "naive" else x2
    assert kept.shape[-1] == 1 or kept.shape == (3, 1)


def test_item_and_bool(device):
    s = t(3.5, device)
    assert s.item() == 3.5
    assert float(s) == 3.5
    assert bool(t(1.0, device)) is True
    assert bool(t(0.0, device)) is False
    with pytest.raises(ShapeError):
        t([1.0, 2.0], device).item()


def test_move_conformance(device):
    from repro.core import ZERO, move

    x = t([1.0, 2.0], device)
    moved = move(x, t([0.5, 0.5], device))
    np.testing.assert_allclose(moved.numpy(), [1.5, 2.5])
    np.testing.assert_allclose(x.numpy(), [1, 2])
    x.move_(t([1.0, 1.0], device))
    np.testing.assert_allclose(x.numpy(), [2, 3])
    x.move_(ZERO)
    np.testing.assert_allclose(x.numpy(), [2, 3])


def test_value_semantics_of_move(device):
    x = t([1.0, 2.0], device)
    y = x + 0.0
    x.move_(t([10.0, 10.0], device))
    np.testing.assert_allclose(y.numpy(), [1, 2])  # y unaffected


def test_mixed_device_rejected():
    a = Tensor([1.0], eager_device())
    b = Tensor([1.0], eager_device())
    with pytest.raises(DeviceError):
        a + b


def test_default_device_scoping():
    dev = naive_device()
    with using_device(dev):
        x = Tensor([1.0, 2.0])
        assert x.device is dev
    y = Tensor([1.0])
    assert y.device is not dev


def test_backends_agree_on_composite_program():
    """The same program yields identical numerics on all three backends."""

    def program(device):
        x = Tensor([[0.1, -0.2, 0.3], [0.5, 0.4, -0.6]], device)
        w = Tensor([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], device)
        b = Tensor([0.1, -0.1], device)
        h = (x @ w + b).relu()
        z = (h * 2.0 - h.mean()).tanh()
        return z.sum().item()

    results = {name: program(factory()) for name, factory in DEVICES.items()}
    assert results["naive"] == pytest.approx(results["eager"], rel=1e-5)
    assert results["lazy"] == pytest.approx(results["eager"], rel=1e-5)
