"""Shared-state inventory: the scan, the registry, the runtime surface."""

import ast

from repro.analysis.concurrency.inventory import (
    GuardRegistry,
    RUNTIME_TARGET,
    build_inventory,
    scan_tree,
)


def _scan(source: str, registry: GuardRegistry | None = None):
    return scan_tree(
        "fake.mod", "<fake>", ast.parse(source), registry or GuardRegistry()
    )


# ---------------------------------------------------------------------------
# Scanner mechanics
# ---------------------------------------------------------------------------


def test_module_level_mutables_are_candidates():
    fields, _locks, _diags = _scan(
        "CACHE = {}\nEVENTS = []\nSEEN = set()\nPAIRS = [(1, 2)]\n"
    )
    assert {f.qualname for f in fields} == {
        "fake.mod.CACHE", "fake.mod.EVENTS", "fake.mod.SEEN", "fake.mod.PAIRS",
    }
    assert all(f.kind == "module-global" for f in fields)
    assert all(f.status == "unregistered" for f in fields)


def test_immutable_and_meta_values_are_not_candidates():
    fields, _locks, _diags = _scan(
        "X = 3\nNAME = 'x'\nDIMS = (2, 3)\n"
        "VAR = ContextVar('v')\nT = TypeVar('T')\nFROZEN = frozenset({1})\n"
    )
    assert fields == []


def test_instance_attrs_in_init_are_candidates():
    fields, _locks, _diags = _scan(
        "class C:\n"
        "    def __init__(self):\n"
        "        self.items = []\n"
        "        self.count = 0\n"  # immutable scalar: not a candidate
        "    def other(self):\n"
        "        self.late = []\n"  # not in __init__: out of scope
    )
    assert [f.qualname for f in fields] == ["fake.mod.C.items"]
    assert fields[0].kind == "instance-attr"


def test_named_lock_definitions_resolve():
    _fields, locks, diags = _scan(
        "_LOCK = named_rlock('my.lock')\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = named_rlock('c.lock')\n"
    )
    assert diags == []
    table = {d.key: d.name for d in locks}
    assert table[("global", "fake.mod", "_LOCK")] == "my.lock"
    assert table[("attr", "fake.mod", "C", "_lock")] == "c.lock"


def test_anonymous_lock_is_an_error():
    _fields, locks, diags = _scan("_LOCK = threading.Lock()\n")
    assert len(locks) == 1 and locks[0].name is None
    assert len(diags) == 1 and diags[0].is_error
    assert "anonymous lock" in diags[0].message
    assert "named_rlock" in diags[0].message


def test_registry_classification():
    registry = GuardRegistry(
        guarded_fields={"fake.mod.CACHE": "lock.a"},
        guarded_classes={"fake.mod.Stats": "lock.b"},
        exempt_fields={"fake.mod.TABLE": "import-time constant"},
    )
    fields, _locks, _diags = _scan(
        "CACHE = {}\nTABLE = {}\nROGUE = {}\n"
        "class Stats:\n"
        "    def __init__(self):\n"
        "        self.values = []\n",
        registry,
    )
    by_name = {f.qualname: f for f in fields}
    assert by_name["fake.mod.CACHE"].status == "guarded"
    assert by_name["fake.mod.CACHE"].guard == "lock.a"
    assert by_name["fake.mod.TABLE"].status == "exempt"
    assert by_name["fake.mod.TABLE"].reason == "import-time constant"
    # Class-level guard covers instance attrs.
    assert by_name["fake.mod.Stats.values"].status == "guarded"
    assert by_name["fake.mod.Stats.values"].guard == "lock.b"
    assert by_name["fake.mod.ROGUE"].status == "unregistered"


# ---------------------------------------------------------------------------
# The real runtime surface
# ---------------------------------------------------------------------------


def test_runtime_inventory_fully_accounted():
    report = build_inventory(RUNTIME_TARGET)
    assert report.unregistered == [], [f.qualname for f in report.unregistered]
    assert not any(d.is_error for d in report.diagnostics)
    # The surface is real: dozens of shared fields across the engine.
    assert len(report.fields) >= 40


def test_runtime_lock_table_covers_the_seven_lock_classes():
    report = build_inventory(RUNTIME_TARGET)
    names = {d.name for d in report.locks}
    assert names == {
        "runtime.memory",
        "hlo.compiler.cache",
        "hlo.async_compiler",
        "core.plan_cache",
        "hlo.codegen.cache",
        "runtime.parallel.shm",
        "runtime.parallel.pool",
    }


def test_runtime_caches_are_guarded_by_their_locks():
    report = build_inventory(RUNTIME_TARGET)
    guards = {f.qualname: f.guard for f in report.guarded}
    assert guards["repro.hlo.compiler._CACHE"] == "hlo.compiler.cache"
    assert guards["repro.hlo.compiler._INFLIGHT"] == "hlo.compiler.cache"
    assert guards["repro.core.synthesis._VJP_PLANS"] == "core.plan_cache"
    assert guards["repro.runtime.memory._ACTIVE"] == "runtime.memory"
    assert (
        guards["repro.hlo.compiler.AsyncCompiler._ready"] == "hlo.async_compiler"
    )


def test_exemptions_carry_documented_reasons():
    report = build_inventory(RUNTIME_TARGET)
    assert report.exempt, "expected exempt fields"
    for f in report.exempt:
        assert f.reason, f"{f.qualname} exempt without a reason"


def test_render_mentions_every_field():
    report = build_inventory(RUNTIME_TARGET)
    text = report.render()
    assert "repro.hlo.compiler._CACHE" in text
    assert "guarded_by hlo.compiler.cache" in text
    assert "exempt:" in text
