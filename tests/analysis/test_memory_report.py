"""End-to-end memory planning over the seeded corpus: verdicts, the
static-vs-dynamic peak cross-check, the CLI, the printer annotations, and
the memory_plan experiment table."""

import pytest

from repro.analysis.__main__ import main
from repro.analysis.memory import (
    CORPUS,
    analyze_memory_model,
    buffer_annotations,
    get_program,
)
from repro.hlo.printer import print_module


def test_corpus_covers_every_verdict():
    expects = {p.expect for p in CORPUS}
    assert expects == {"clean", "over-budget", "unsafe-in-place", "tuple-aliasing"}
    assert len(CORPUS) == 9
    assert sum(p.straight_line for p in CORPUS) == 7


def test_mlp_chain_reuse_is_exact_with_pool_of_two():
    report = analyze_memory_model("mlp_chain_reuse")
    assert report.verdicts() == {"clean"}
    assert report.cross_check_ok
    [check] = report.checks
    # Three 512 B activations, two pool buffers (ping-pong through the
    # chain): certified == observed because the trace is straight-line.
    assert check.liveness.straight_line
    assert check.exact
    assert check.certificate.certified_peak_bytes == 1024
    assert check.observed_peak_bytes == 1024
    assert check.certificate.naive_bytes == 3072
    assert check.certificate.planned_pool_bytes == 1024
    assert check.certificate.reuse_factor == pytest.approx(3.0)
    assert check.plan.buffers_reused > 0


def test_reshape_pipeline_bound_is_sound_not_exact():
    report = analyze_memory_model("reshape_pipeline")
    assert report.verdicts() == {"clean"}
    assert report.cross_check_ok
    [check] = report.checks
    # NumPy reshapes this layout as a view, so the dynamic peak is below
    # the certified both-ways bound — sound, and declared non-exact.
    assert not check.liveness.straight_line
    assert check.sound
    assert check.certificate.certified_peak_bytes == 192
    assert check.observed_peak_bytes == 128


def test_over_budget_program_gets_fixits_and_remat():
    report = analyze_memory_model("held_activation_over_budget")
    assert report.verdicts() == {"over-budget"}
    assert report.cross_check_ok  # the *bound* still holds; budget failed
    [check] = report.checks
    assert check.certificate.certified_peak_bytes == 65536
    assert check.exact
    errors = [d for d in check.diagnostics if d.is_error]
    assert len(errors) == 1
    assert "exceeds the 40000 B budget" in errors[0].message
    assert errors[0].location.filename.endswith("models.py")
    assert errors[0].location.line > 0
    fixits = [d for d in check.diagnostics if d.severity == "warning"]
    assert 1 <= len(fixits) <= 3
    assert all(d.message.startswith("fix-it:") for d in fixits)
    assert check.remat, "carried values at the peak must be reported"


def test_corrupted_plans_are_caught_with_located_errors():
    for name, verdict, needle in (
        ("unsafe_inplace_plan", "unsafe-in-place", "non-elementwise op"),
        ("tuple_alias_plan", "tuple-aliasing", "output tuple still aliases"),
    ):
        report = analyze_memory_model(name)
        assert report.verdicts() == {verdict}, name
        assert report.cross_check_ok, name
        errors = [d for d in report.diagnostics() if d.is_error]
        assert errors, name
        assert any(needle in d.message for d in errors), name
        assert all(d.location.line > 0 for d in errors), name


def test_get_program_unknown_name():
    with pytest.raises(KeyError, match="unknown memory program"):
        get_program("nonesuch")


def test_cli_memory_single_program(capsys):
    assert main(["--memory", "sgd_fused_update"]) == 0
    out = capsys.readouterr().out
    assert "memory plan report: sgd_fused_update" in out
    assert "cross-check OK" in out
    assert "expected verdict: clean (as predicted)" in out
    assert "1 program(s) certified, 0 failure(s)" in out


def test_cli_memory_all_quiet(capsys):
    assert main(["--memory", "all", "-q"]) == 0
    out = capsys.readouterr().out
    assert "9 program(s) certified, 0 failure(s)" in out
    assert "hold against the dynamic tracker" in out


def test_cli_memory_unknown_program():
    with pytest.raises(SystemExit, match="unknown memory program"):
        main(["--memory", "nonesuch"])


def _traced_module():
    """Lower one small traced program to an optimized HLO module."""
    import numpy as np

    from repro.analysis.tracing.capture import capture_step_traces
    from repro.hlo.passes import optimize
    from repro.tensor import LazyTensorBarrier, Tensor, lazy_device
    from repro.tensor.lazy_backend import _lower_to_hlo

    device = lazy_device()
    x = Tensor(np.ones((4, 4), np.float32), device)
    w = Tensor(np.ones((4, 4), np.float32), device)

    def step_fn(step):
        y = (x @ w).relu()  # noqa: F841
        LazyTensorBarrier(device)

    capture = capture_step_traces(step_fn, steps=1, device=device)
    module, _ = _lower_to_hlo(capture.fragments[0].fragment.to_trace_nodes())
    optimize(module)
    return module


def test_printer_buffer_annotations_opt_in():
    module = _traced_module()
    plain = print_module(module)
    assert plain == print_module(module, annotate_buffers=False)
    assert "{buf=" not in plain and "{resident}" not in plain

    annotated = print_module(module, annotate_buffers=True)
    assert "{resident}" in annotated
    assert "{buf=0, live=[" in annotated
    # Stripping the annotations recovers the plain text exactly.
    stripped = "\n".join(line.split("  {")[0] for line in annotated.splitlines())
    assert stripped + "\n" == plain


def test_buffer_annotations_cover_every_instruction():
    module = _traced_module()
    notes = buffer_annotations(module)
    assert set(notes) == {inst.id for inst in module.schedule()}
    assert all(note.startswith("{") and note.endswith("}") for note in notes.values())


def test_memory_plan_experiment_table():
    from repro.experiments import run_memory_plan

    result = run_memory_plan()
    assert result.ok
    assert len(result.rows) == len(CORPUS)
    assert {row.relation for row in result.rows} <= {"==", ">="}
    rendered = result.render()
    assert "every certified bound holds" in rendered
    assert "✗" not in rendered
