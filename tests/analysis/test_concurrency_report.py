"""End-to-end concurrency reports and the ``--concurrency`` CLI."""

import pytest

from repro.analysis.__main__ import main
from repro.analysis.concurrency.models import CORPUS_MODELS
from repro.analysis.concurrency.report import analyze_corpus, analyze_runtime


@pytest.fixture(scope="module")
def runtime():
    # Static-only here; the live witness run is covered by the dedicated
    # lock-witness tests and the CLI default path.
    return analyze_runtime(run_witness=False)


@pytest.fixture(scope="module")
def corpus():
    return analyze_corpus(run_witness=True)


# ---------------------------------------------------------------------------
# The real engine comes back clean
# ---------------------------------------------------------------------------


def test_runtime_is_clean(runtime):
    assert runtime.verdicts() == ("clean",)
    assert runtime.cross_check_ok
    assert runtime.ok
    assert not any(d.is_error for d in runtime.diagnostics()), [
        d.message for d in runtime.diagnostics()
    ]


def test_runtime_report_is_substantive(runtime):
    # Clean because it was checked, not because nothing was checked.
    assert len(runtime.inventory.fields) >= 40
    assert len([a for a in runtime.lockset.accesses if a.required]) >= 50
    assert len(runtime.determinism.findings) == 4
    text = runtime.render()
    assert "verdicts: clean (cross_check_ok=True)" in text


# ---------------------------------------------------------------------------
# The seeded corpus: every hazard caught, every clean model silent
# ---------------------------------------------------------------------------


def test_corpus_every_model_matches(corpus):
    assert corpus.ok, corpus.render()
    assert len(corpus.results) == len(CORPUS_MODELS) == 9


def test_corpus_covers_every_hazard_class(corpus):
    by_expect = {}
    for result in corpus.results:
        by_expect.setdefault(result.model.expect, []).append(result)
    assert len(by_expect["race"]) >= 3
    assert len(by_expect["deadlock"]) >= 1
    assert len(by_expect["order-sensitive-merge"]) >= 1
    assert len(by_expect["clean"]) >= 2


def test_corpus_hazards_have_located_error_diagnostics(corpus):
    for result in corpus.results:
        if result.model.expect == "clean":
            continue
        errors = [d for d in result.diagnostics if d.is_error]
        assert errors, result.model.name
        assert all(d.location.line > 0 for d in errors), result.model.name


def test_corpus_clean_models_have_no_errors(corpus):
    for result in corpus.results:
        if result.model.expect != "clean":
            continue
        assert result.verdicts == ("clean",), result.model.name
        assert not any(d.is_error for d in result.diagnostics), result.model.name


def test_inverted_pair_witness_recorded_both_edges(corpus):
    inverted = next(
        r for r in corpus.results if r.model.name == "deadlock_inverted_pair"
    )
    assert ("corpus.lock_a", "corpus.lock_b") in inverted.dynamic_edges
    assert ("corpus.lock_b", "corpus.lock_a") in inverted.dynamic_edges
    # The statically predicted cycle and the dynamic witness agree.
    assert inverted.cross_check_ok
    assert "deadlock" in inverted.verdicts


def test_consistent_pair_witness_matches_static(corpus):
    consistent = next(
        r for r in corpus.results if r.model.name == "clean_consistent_pair"
    )
    assert consistent.dynamic_edges == {("corpus.lock_a", "corpus.lock_b")}
    assert consistent.cross_check_ok
    assert consistent.verdicts == ("clean",)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_concurrency_runtime(capsys):
    assert main(["--concurrency", "runtime", "--no-witness"]) == 0
    out = capsys.readouterr().out
    assert "concurrency analysis: 0 failure(s)" in out


def test_cli_concurrency_all_quiet(capsys):
    assert main(["--concurrency", "all", "--no-witness", "-q"]) == 0
    out = capsys.readouterr().out
    # Quiet mode suppresses the per-target reports, keeps the summary.
    assert "locksets, lock order, and merges all verified" in out
    assert "== concurrency analysis" not in out


def test_cli_concurrency_single_model(capsys):
    assert main(["--concurrency", "race_unlocked_counter"]) == 0
    out = capsys.readouterr().out
    assert "race_unlocked_counter: expected race, got race" in out
    assert "requires `corpus.lock_a`" in out


def test_cli_concurrency_unknown_target():
    with pytest.raises(SystemExit, match="unknown concurrency target"):
        main(["--concurrency", "nonesuch"])
