"""The interval domain: soundness conventions, poison, dtype rounding."""

import math

import numpy as np
import pytest

from repro.analysis.precision.intervals import Interval
from repro.hlo.dtypes import finfo


def test_make_widens_outward():
    iv = Interval.make(1.0, 2.0)
    assert iv.lo < 1.0 < 2.0 < iv.hi
    assert iv.contains(1.0) and iv.contains(2.0)
    # Unordered endpoints are normalized, not rejected.
    assert Interval.make(2.0, 1.0).contains(1.5)


def test_nan_endpoints_poison():
    assert Interval.make(math.nan, 1.0).poisoned
    assert Interval(0.0, math.nan).poisoned
    top = Interval.top()
    assert top.contains(math.nan) and top.contains(math.inf)
    assert not Interval.make(0.0, 1.0).contains(math.nan)


def test_of_array():
    iv = Interval.of_array(np.array([[-3.0, 2.0], [0.5, 1.0]]))
    assert iv.contains(-3.0) and iv.contains(2.0)
    assert not iv.contains(2.5)
    assert Interval.of_array(np.array([1.0, math.inf])).poisoned
    assert Interval.of_array(np.array([])).contains(0.0)


def test_min_max_abs():
    assert Interval(-3.0, 2.0).max_abs == 3.0
    assert Interval(-3.0, 2.0).min_abs == 0.0  # straddles zero
    assert Interval(1.0, 2.0).min_abs == 1.0
    assert Interval(-2.0, -0.5).min_abs == 0.5


def test_arithmetic_soundness_on_samples():
    a = Interval.make(-2.0, 3.0)
    b = Interval.make(0.5, 4.0)
    xs = [-2.0, -1.0, 0.0, 1.5, 3.0]
    ys = [0.5, 1.0, 2.0, 4.0]
    for x in xs:
        for y in ys:
            assert a.add(b).contains(x + y)
            assert a.sub(b).contains(x - y)
            assert a.mul(b).contains(x * y)
            assert a.div(b).contains(x / y)
    assert a.neg().contains(2.0) and a.neg().contains(-3.0)
    assert a.abs().contains(0.0) and a.abs().contains(3.0)
    assert a.maximum(b).contains(max(-1.0, 2.0))


def test_division_by_zero_straddling_interval_is_top():
    assert Interval.make(1.0, 2.0).div(Interval.make(-1.0, 1.0)).poisoned
    assert not Interval.make(1.0, 2.0).div(Interval.make(0.5, 1.0)).poisoned


def test_mul_zero_times_unbounded_endpoint():
    # 0 * inf is NaN in IEEE, but exact math over the closed interval
    # contributes 0 — the product must stay sound, not poison.
    z = Interval(0.0, 1.0)
    unbounded = Interval(0.0, math.inf)
    assert z.mul(unbounded).contains(0.0)


def test_poison_propagates():
    top = Interval.top()
    assert top.add(Interval.point(1.0)).poisoned
    assert Interval.point(1.0).mul(top).poisoned
    assert top.neg().poisoned and top.abs().poisoned
    assert top.monotone(math.exp).poisoned


def test_monotone_and_hull():
    e = Interval.make(0.0, 1.0).monotone(math.exp)
    assert e.contains(1.0) and e.contains(math.e)
    h = Interval.hull(Interval.point(-1.0), Interval.point(5.0))
    assert h.contains(0.0) and h.contains(5.0)
    assert Interval.hull(Interval.point(0.0), Interval.top()).poisoned


def test_contains_interval():
    outer = Interval(0.0, 10.0)
    assert outer.contains_interval(Interval(1.0, 2.0))
    assert not outer.contains_interval(Interval(1.0, 11.0))
    assert Interval.top().contains_interval(outer)
    assert not outer.contains_interval(Interval.top())


def test_round_into_widens_one_ulp():
    iv = Interval(1.0, 2.0).round_into("f16")
    eps = finfo("f16").eps
    assert iv.lo <= 1.0 - eps * 0.5 and iv.hi >= 2.0 + eps
    assert not iv.poisoned


def test_round_into_saturates_past_dtype_max():
    over = Interval(0.0, 70000.0).round_into("f16")
    assert over.hi == math.inf
    assert not over.poisoned  # inf endpoint is saturation, not NaN
    assert over.contains(math.inf) is True or over.hi == math.inf
    under = Interval(-1e39, 0.0).round_into("f32")
    assert under.lo == -math.inf


def test_widen_absolute():
    iv = Interval(0.5, 1.0).widen_absolute(0.25)
    assert iv.contains(0.25) and iv.contains(1.25)
    assert Interval(0.0, 1.0).widen_absolute(math.inf).poisoned


def test_str_forms():
    assert str(Interval.top()) == "[poisoned]"
    assert str(Interval(1.0, 2.0)) == "[1, 2]"


@pytest.mark.parametrize("dtype", ["f16", "bf16", "f32"])
def test_round_into_covers_actual_rounding(dtype):
    from repro.hlo.dtypes import cast_array

    rng = np.random.default_rng(7)
    values = rng.uniform(-100.0, 100.0, size=64)
    iv = Interval.of_array(values).round_into(dtype)
    rounded = cast_array(values.astype(np.float32), dtype)
    for v in np.asarray(rounded, np.float64):
        assert iv.contains(float(v))
