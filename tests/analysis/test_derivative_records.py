"""Record typing: captures must inhabit tangent spaces, rules must fit arity."""

import pytest

from repro.analysis.derivatives.models import _bad_arity, _bad_bool_ct
from repro.analysis.derivatives.records import (
    check_record_typing,
    probe_rule_record,
    tangent_space_of,
    verify_plan_records,
)
from repro.core.synthesis import vjp_plan
from repro.errors import DifferentiabilityError, SourceLocation
from repro.sil import ir, lower_function


class TestTangentSpaces:
    def test_scalar_types(self):
        assert tangent_space_of(ir.FLOAT) == "Float"
        assert tangent_space_of(ir.INT) == "Float"
        assert tangent_space_of(ir.BOOL) is None
        assert tangent_space_of(ir.STRING) is None

    def test_any_is_unknown_but_allowed(self):
        assert tangent_space_of(ir.ANY) is not None


class TestStaticRecordTyping:
    def test_float_function_records_are_well_typed(self):
        def f(x):
            return x * x + 2.0 * x

        typing = check_record_typing(lower_function(f), (0,))
        assert typing.ok
        assert typing.checked_entries > 0
        assert typing.diagnostics() == []

    def test_raise_if_ill_typed_is_noop_when_clean(self):
        def f(x):
            return x + 1.0

        check_record_typing(lower_function(f), (0,)).raise_if_ill_typed()


class TestProbedRules:
    def test_wrong_component_count_located(self):
        loc = SourceLocation("model.py", 7, 2)
        diags = probe_rule_record("bad_arity_hazard", _bad_arity.vjp, 2, loc)
        assert len(diags) == 1
        assert diags[0].is_error
        assert "1 cotangent component(s) for 2 argument(s)" in diags[0].message
        assert diags[0].location is loc

    def test_bool_cotangent_located(self):
        diags = probe_rule_record("bad_bool_ct_hazard", _bad_bool_ct.vjp, 1, None)
        assert any("bool" in d.message for d in diags)
        assert all(d.is_error for d in diags)

    def test_unrunnable_rule_is_skipped(self):
        def vjp(x):
            raise RuntimeError("tensor-only")

        assert probe_rule_record("opq", vjp, 1, None) == []

    def test_correct_rule_is_clean(self):
        diags = probe_rule_record(
            "ok", lambda x: (2.0 * x, lambda ct: (2.0 * ct,)), 1, None
        )
        assert diags == []


class TestPlanRecords:
    def test_verify_plan_records_over_clean_plan(self):
        def f(x):
            return 3.0 * x * x

        plan = vjp_plan(lower_function(f), (0,))
        typing = verify_plan_records(plan)
        assert typing.ok

    def test_ill_typed_plan_raises_differentiability_error(self):
        def f(x):
            return _bad_bool_ct(x) + x

        plan = vjp_plan(lower_function(f), (0,))
        typing = verify_plan_records(plan)
        assert not typing.ok
        with pytest.raises(DifferentiabilityError):
            typing.raise_if_ill_typed()
