"""Pullback linearity: the affine abstract domain + the numeric cross-check."""

import pytest

from repro.analysis.derivatives.abstract import (
    AbstractBranchError,
    AbstractCoercionError,
    AffineValue,
    classify,
    worst_kind,
)
from repro.analysis.derivatives.linearity import (
    check_primitive_linearity,
    check_pullback_linearity,
    default_samples,
)
from repro.sil.primitives import Primitive, get_primitive


class TestAffineDomain:
    def test_linear_arithmetic_tracks_coefficients(self):
        ct = AffineValue.symbol("ct")
        v = 2.0 * ct + ct / 4.0 - ct * 0.25
        assert not v.nonlinear
        assert v.coefficient("ct") == pytest.approx(2.0)
        assert v.const == 0.0

    def test_symbol_times_symbol_poisons(self):
        ct = AffineValue.symbol("ct")
        assert (ct * ct).nonlinear
        assert (1.0 / ct).nonlinear
        assert (ct ** 2).nonlinear
        assert abs(ct).nonlinear

    def test_branch_on_abstract_value_escapes(self):
        ct = AffineValue.symbol("ct")
        with pytest.raises(AbstractBranchError):
            bool(ct)
        with pytest.raises(AbstractBranchError):
            ct > 0.0

    def test_coercion_to_float_escapes(self):
        with pytest.raises(AbstractCoercionError):
            float(AffineValue.symbol("ct"))

    def test_classify_kinds(self):
        ct = AffineValue.symbol("ct")
        assert classify(3.0 * ct)[0] == "linear"
        assert classify(ct + 1.0)[0] == "affine"
        assert classify(ct * ct)[0] == "nonlinear"
        assert classify(None)[0] == "zero"
        assert classify(True)[0] == "ill-typed"

    def test_worst_kind_ordering(self):
        assert worst_kind(["zero", "linear"]) == "linear"
        assert worst_kind(["linear", "nonlinear", "affine"]) == "nonlinear"
        assert worst_kind(["linear", "ill-typed"]) == "ill-typed"


class TestCheckPullbackLinearity:
    def test_correct_scale_rule_is_proven_linear(self):
        result = check_pullback_linearity(
            "scale", lambda x: (2.0 * x, lambda ct: (2.0 * ct,)), 1
        )
        assert result.verdict == "linear"
        assert result.is_linear
        assert result.coefficients == (2.0,)
        assert result.probe.linear
        assert result.cross_check_ok
        assert result.diagnostics() == []

    def test_nonlinear_pullback_caught_and_probe_agrees(self):
        result = check_pullback_linearity(
            "bad", lambda x: (x * x, lambda ct: (ct * ct,)), 1
        )
        assert result.verdict == "nonlinear"
        assert not result.is_linear
        # The numeric probe must fail the linear-map laws too.
        assert not result.probe.linear
        assert result.cross_check_ok
        errors = [d for d in result.diagnostics() if d.is_error]
        assert len(errors) == 1
        assert "not a linear map" in errors[0].message

    def test_affine_offset_fails_zero_preservation(self):
        result = check_pullback_linearity(
            "offset", lambda x: (x, lambda ct: (ct + 1.0,)), 1
        )
        assert result.verdict == "affine"
        assert result.probe.ran and not result.probe.zero_preserved
        assert result.cross_check_ok

    def test_branch_on_cotangent_is_nonlinear(self):
        def vjp(x):
            return abs(x), lambda ct: ((ct,) if ct > 0.0 else (-ct,))

        result = check_pullback_linearity("absish", vjp, 1)
        assert result.verdict == "nonlinear"
        assert "control flow" in result.reason
        # |ct| fails additivity at the mixed-sign probe points.
        assert result.cross_check_ok

    def test_unprobeable_forward_goes_opaque(self):
        def vjp(x):
            raise RuntimeError("needs a tensor")

        result = check_pullback_linearity("tensorish", vjp, 1)
        assert result.verdict == "opaque"
        assert result.cross_check_ok

    def test_recompute_watch_reports_primal_rework(self):
        prim = Primitive("relint_helper", lambda x: x * 3.0)

        def vjp(x):
            return x * 3.0, lambda ct: (ct * (prim(x) / x),)

        result = check_pullback_linearity("reworks", vjp, 1, watch_recompute=True)
        assert "relint_helper" in result.recomputed_primitives
        warnings = [d for d in result.diagnostics() if not d.is_error]
        assert any("re-runs primal work" in d.message for d in warnings)

    def test_registered_mul_primitive_is_linear(self):
        result = check_primitive_linearity(get_primitive("mul"))
        assert result.verdict == "linear"
        assert result.cross_check_ok

    def test_default_samples_deterministic(self):
        assert default_samples(3) == default_samples(3)
        assert len(default_samples(5)) == 5
