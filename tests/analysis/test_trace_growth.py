"""The unrolling/barrier analyzer: growth bounds and cut-point auditing."""

import numpy as np

from repro.analysis.tracing import analyze_step_program, capture_step_traces
from repro.analysis.tracing.growth import _grows_without_bound
from repro.analysis.tracing.models import PROGRAMS
from repro.analysis.tracing.report import analyze_trace_program
from repro.tensor import LazyTensorBarrier, Tensor, lazy_device


def test_unbounded_growth_is_an_error_with_barrier_fix_it():
    report = analyze_trace_program(PROGRAMS["unrolled_no_barrier"])
    growth = report.growth
    assert not growth.bounded
    [diag] = [d for d in growth.diagnostics if d.is_error]
    assert "unbounded trace growth" in diag.message
    assert "LazyTensorBarrier(device)" in diag.message
    assert growth.barrier_suggestion
    # Pending work really does rise every step.
    assert growth.per_step_pending == sorted(growth.per_step_pending)
    assert growth.per_step_pending[-1] > growth.per_step_pending[0]


def test_auto_cut_reliance_is_a_warning_not_an_error():
    report = analyze_trace_program(PROGRAMS["auto_cut_reliance"])
    growth = report.growth
    assert growth.bounded
    assert growth.auto_cut_only
    assert growth.ok  # warnings don't fail the analysis outright
    [diag] = growth.diagnostics
    assert diag.severity == "warning"
    assert "_auto_cut" in diag.message
    assert "threshold=6" in diag.message
    assert report.capture.dynamic_auto_cuts > 0


def test_threshold_set_but_not_yet_fired_counts_as_reliance():
    """Growth bounded only by a threshold that hasn't fired is still
    auto-cut reliance, not proven-bounded."""
    device = lazy_device(auto_barrier_threshold=500)
    state = {"w": Tensor(np.ones(4, np.float32), device)}

    def step_fn(step):
        state["w"] = state["w"] + 1.0  # never cut within the capture

    report = analyze_step_program(step_fn, 4, device, name="latent_threshold")
    assert report.growth.bounded
    assert report.growth.auto_cut_only
    assert report.verdicts() == {"auto-cut-reliance"}


def test_clean_barrier_loops_are_bounded_with_program_placed_cuts():
    report = analyze_trace_program(PROGRAMS["sgd_scalar_clean"])
    growth = report.growth
    assert growth.bounded
    assert not growth.auto_cut_only
    assert growth.cut_reasons == {"barrier"}
    assert not growth.diagnostics
    assert all(p == 0 for p in growth.per_step_pending)


def test_observation_counts_as_a_program_placed_cut():
    report = analyze_trace_program(PROGRAMS["observe_each_step_clean"])
    assert report.growth.cut_reasons == {"observe"}
    assert not report.growth.diagnostics


def test_max_fragment_ops_reflects_the_largest_cut():
    report = analyze_trace_program(PROGRAMS["affine_train_clean"])
    assert report.growth.max_fragment_ops >= 4  # matmul+add+relu+sum+updates


def test_growth_predicate():
    assert _grows_without_bound([2, 4, 6, 8])
    assert _grows_without_bound([2, 2, 4, 4, 6])  # plateaus still grow
    assert not _grows_without_bound([3, 3, 3, 3])
    assert not _grows_without_bound([5, 0, 5, 0])  # cut each step
    assert not _grows_without_bound([7])


def test_capture_reports_cut_reasons_and_threshold():
    device = lazy_device(auto_barrier_threshold=64)
    state = {"w": Tensor(np.ones(2, np.float32), device)}

    def step_fn(step):
        state["w"] = state["w"] * 2.0
        LazyTensorBarrier(device)

    capture = capture_step_traces(step_fn, 3, device)
    assert capture.auto_barrier_threshold == 64
    assert capture.cut_reasons == {"barrier"}
    assert len(capture.fragments) == 3
    assert capture.fragments_of_step(1)[0].reason == "barrier"


def test_growth_render_lists_measurements():
    report = analyze_trace_program(PROGRAMS["unrolled_no_barrier"])
    text = report.growth.render()
    assert "per-step ops pending" in text
    assert "growth bounded:          False" in text
    assert "suggestion:" in text
