"""The ownership layer: borrow checking, copy inference, pullback costs.

Every static verdict asserted here is cross-checked against the dynamic
mutable-value-semantics runtime where one exists:

* "error" programs from the seeded violation suite must actually trap with
  :class:`BorrowError` when interpreted;
* "warning" programs must run clean on disjoint inputs and trap on
  overlapping ones (exactly what "dynamic check required" means);
* copy-materialization labels must agree with the deep/logical copy counts
  the COW instrumentation observes.
"""

import pytest

from repro.analysis.ownership import (
    analyze_aliases,
    analyze_ownership,
    analyze_pullback_cost,
    check_ownership,
    models,
)
from repro.errors import BorrowError, VerificationError
from repro.sil import ir
from repro.sil.frontend import lower_function
from repro.sil.interp import call_function
from repro.valsem import ValueArray, copy_counting
from repro.valsem.inout import borrow_item


# ---------------------------------------------------------------------------
# Borrow checker: seeded violations and the clean corpus.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "pyfunc,expected",
    models.VIOLATION_SUITE,
    ids=[fn.__name__ for fn, _ in models.VIOLATION_SUITE],
)
def test_violation_suite_verdicts(pyfunc, expected):
    report = analyze_ownership(lower_function(pyfunc))
    severities = {"error" if d.is_error else "warning" for d in report.diagnostics}
    assert expected in severities, report.render()


@pytest.mark.parametrize(
    "pyfunc", models.CLEAN_SUITE, ids=[fn.__name__ for fn in models.CLEAN_SUITE]
)
def test_clean_suite_zero_false_positives(pyfunc):
    report = analyze_ownership(lower_function(pyfunc))
    assert report.ok
    assert report.diagnostics == [], report.render()


def test_check_ownership_raises_on_certain_violation():
    func = lower_function(models.double_borrow_same_item)
    with pytest.raises(VerificationError, match="exclusivity violation"):
        check_ownership(func)


def test_check_ownership_returns_warnings_without_raising():
    func = lower_function(models.aliased_writes_may_conflict)
    diagnostics = check_ownership(func)  # warning-only: must not raise
    assert any(not d.is_error for d in diagnostics)


# ---------------------------------------------------------------------------
# Exclusivity corner cases.
# ---------------------------------------------------------------------------


def nested_distinct_keys(xs):
    with borrow_item(xs, 0) as a:
        with borrow_item(xs, 1) as b:
            b.set(1.0)
            a.set(2.0)
    return xs[0]


def borrow_across_join_conflict(xs, flag):
    with borrow_item(xs, 0) as ref:
        if flag:
            v = 1.0
        else:
            v = 2.0
        ref.set(v)
        xs[0] = v  # the borrow is still open after the cond_br join
    return xs[0]


def borrow_across_join_clean(xs, flag):
    with borrow_item(xs, 0) as ref:
        if flag:
            v = 1.0
        else:
            v = 2.0
        ref.set(v)
        xs[1] = v  # provably disjoint constant key
    return xs[0]


def test_nested_borrows_of_distinct_keys_are_clean():
    report = analyze_ownership(lower_function(nested_distinct_keys))
    assert report.diagnostics == [], report.render()
    # And the runtime agrees: no trap.
    xs = [0.0, 0.0]
    assert call_function(lower_function(nested_distinct_keys), [xs]) == 2.0
    assert xs == [2.0, 1.0]


def test_borrow_survives_cond_br_join():
    report = analyze_ownership(lower_function(borrow_across_join_conflict))
    # The access opened before the branch is still held at the join, so the
    # write to the same location must be flagged...
    assert report.diagnostics, report.render()
    # ...and the runtime traps on both paths.
    for flag in (True, False):
        with pytest.raises(BorrowError):
            call_function(
                lower_function(borrow_across_join_conflict), [[0.0, 0.0], flag]
            )


def test_disjoint_write_across_join_is_clean():
    report = analyze_ownership(lower_function(borrow_across_join_clean))
    assert report.diagnostics == [], report.render()
    xs = [0.0, 0.0]
    assert call_function(lower_function(borrow_across_join_clean), [xs, True]) == 1.0
    assert xs == [1.0, 1.0]


# ---------------------------------------------------------------------------
# Static verdicts vs the dynamic exclusivity check.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "pyfunc,args",
    [
        (models.double_borrow_same_item, lambda: [[1.0, 2.0], 0]),
        (models.aug_assign_under_borrow, lambda: [[1.0, 2.0], 1]),
        (models.write_under_attr_borrow, lambda: [models.TinyModel()]),
    ],
    ids=["double_borrow", "aug_assign", "attr_write"],
)
def test_error_verdicts_trap_at_runtime(pyfunc, args):
    func = lower_function(pyfunc)
    severities = {
        "error" if d.is_error else "warning"
        for d in analyze_ownership(func).diagnostics
    }
    assert "error" in severities
    with pytest.raises(BorrowError):
        call_function(func, args())


def test_warning_verdict_means_dynamic_check_decides():
    func = lower_function(models.aliased_writes_may_conflict)
    # Disjoint indices: the dynamic check passes.
    xs = [1.0, 2.0, 3.0]
    assert call_function(func, [xs, 0, 2]) == 1.0
    # Overlapping indices: the dynamic check traps.
    with pytest.raises(BorrowError):
        call_function(func, [[1.0, 2.0], 1, 1])


# ---------------------------------------------------------------------------
# Copy-materialization inference vs COW instrumentation.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,pyfunc", sorted(models.OPTIMIZER_MODELS.items())
)
def test_optimizer_updates_proven_copy_free(name, pyfunc):
    report = analyze_ownership(lower_function(pyfunc))
    copies = report.copies
    assert copies.mutation_sites > 0
    assert copies.in_place == copies.mutation_sites
    assert copies.must_copy == 0 and copies.may_copy == 0
    assert copies.predicted_deep_copies() == (0, 0)


def test_sgd_update_zero_copies_static_and_dynamic():
    """Benchmark-style Section 4.3 claim: a parameter update loop touches
    every parameter without materializing a single copy — predicted by the
    copy inference AND confirmed by the COW runtime."""
    func = lower_function(models.sgd_update)
    report = analyze_ownership(func)
    assert report.copies.predicted_deep_copies() == (0, 0)

    params = ValueArray([1.0, 2.0, 3.0])
    grads = [0.5, 0.5, 0.5]
    with copy_counting() as stats:
        call_function(func, [params, grads, 1.0])
    assert stats.deep_copies == 0
    assert stats.logical_copies == 0
    assert params.to_list() == [0.5, 1.5, 2.5]


def test_copy_then_write_labels_match_runtime():
    func = lower_function(models.copy_then_write)
    copies = analyze_ownership(func).copies
    assert copies.mutation_sites == 2
    assert copies.must_copy == 1  # first write after the logical copy
    assert copies.in_place == 1  # second write: uniqueness restored
    assert copies.logical_copy_sites == 1
    assert copies.predicted_deep_copies() == (1, 1)

    xs = ValueArray([0.0, 0.0, 0.0])
    with copy_counting() as stats:
        ys = call_function(func, [xs])
    assert (stats.logical_copies, stats.deep_copies) == (1, 1)
    assert xs.to_list() == [0.0, 0.0, 0.0]
    assert ys.to_list() == [1.0, 2.0, 0.0]


# ---------------------------------------------------------------------------
# Alias analysis.
# ---------------------------------------------------------------------------


def test_subscript_projection_aliases_its_base():
    func = lower_function(models.array_subscript)
    info = analyze_aliases(func)
    values_param = func.entry.args[0]
    gets = [
        inst
        for inst in func.instructions()
        if isinstance(inst, ir.ApplyInst)
        and getattr(getattr(inst.callee, "target", None), "name", None) == "index_get"
    ]
    assert len(gets) == 2
    for inst in gets:
        assert info.may_alias(inst.result, values_param)


def test_value_copy_result_is_logically_fresh():
    func = lower_function(models.copy_isolates_ok)
    info = analyze_aliases(func)
    xs_param = func.entry.args[0]
    copies = [
        inst
        for inst in func.instructions()
        if isinstance(inst, ir.ApplyInst)
        and getattr(getattr(inst.callee, "target", None), "name", None) == "value_copy"
    ]
    assert len(copies) == 1
    # Exclusivity keys on the owner, and a COW copy is a distinct owner.
    assert not info.may_alias(copies[0].result, xs_param)


# ---------------------------------------------------------------------------
# Pullback cost analyzer (Appendix B).
# ---------------------------------------------------------------------------


def test_array_subscript_pullback_cost_by_style():
    func = lower_function(models.array_subscript)
    mvs = analyze_pullback_cost(func, wrt=(0,), style="mvs")
    functional = analyze_pullback_cost(func, wrt=(0,), style="functional")
    assert mvs.overall == "O(1)"
    assert functional.overall == "O(n)"
    # Both styles classify the same active sites; only the cost differs.
    assert mvs.active_sites == functional.active_sites > 0


def test_unknown_style_rejected():
    func = lower_function(models.array_subscript)
    with pytest.raises(ValueError, match="style"):
        analyze_pullback_cost(func, style="imperative")


def test_vjp_plan_exposes_pullback_cost():
    from repro.core.synthesis import vjp_plan

    func = lower_function(models.array_subscript)
    plan = vjp_plan(func, (0,))
    assert plan.pullback_cost().overall == "O(1)"
    assert plan.pullback_cost("functional").overall == "O(n)"


# ---------------------------------------------------------------------------
# Rendering and the CLI.
# ---------------------------------------------------------------------------


def test_render_includes_annotations_and_summary():
    report = analyze_ownership(lower_function(models.sgd_update))
    rendered = report.render()
    assert "begin_access" in rendered
    assert "// in-place" in rendered
    assert "pullback O(" in rendered
    assert "mutation site(s)" in rendered


def test_cli_ownership_clean_function(capsys):
    from repro.analysis.__main__ import main

    assert main(["--ownership", "sgd_update"]) == 0
    out = capsys.readouterr().out
    assert "begin_access" in out and "in-place" in out


def test_cli_ownership_violation_exits_nonzero(capsys):
    from repro.analysis.__main__ import main

    assert main(["--ownership", "double_borrow_same_item"]) == 1
    out = capsys.readouterr().out
    assert "BorrowError" in out


def test_cli_ownership_style_flag(capsys):
    from repro.analysis.__main__ import main

    assert main(["--ownership", "array_subscript", "--style", "functional"]) == 0
    assert "O(n)" in capsys.readouterr().out


def test_cli_ownership_unknown_name():
    from repro.analysis.__main__ import main

    with pytest.raises(SystemExit, match="bundled names"):
        main(["--ownership", "no_such_function_here"])
