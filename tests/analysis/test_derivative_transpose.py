"""JVP/VJP transpose consistency: ⟨Jv, w⟩ = ⟨v, Jᵀw⟩, statically and probed."""

from repro.analysis.derivatives.models import _bad_scale
from repro.analysis.derivatives.transpose import (
    check_primitive_transpose,
    check_transpose,
)
from repro.sil.primitives import PRIMITIVES, Primitive, get_primitive


def _good_scale():
    return Primitive(
        "good_scale_t",
        lambda x: 3.0 * x,
        jvp=lambda primals, tangents: (3.0 * primals[0], 3.0 * tangents[0]),
        vjp=lambda x: (3.0 * x, lambda ct: (3.0 * ct,)),
    )


def test_consistent_pair_is_proven():
    check = check_primitive_transpose(_good_scale())
    assert check.verdict == "consistent"
    assert check.forward_coefficients == (3.0,)
    assert check.reverse_coefficients == (3.0,)
    assert check.probe_consistent is True
    assert check.cross_check_ok
    assert check.diagnostics() == []


def test_wrong_transpose_caught_even_though_both_rules_are_linear():
    check = check_primitive_transpose(_bad_scale)
    assert check.verdict == "inconsistent"
    # The seeded inner-product probe independently rejects the pair.
    assert check.probe_consistent is False
    assert check.cross_check_ok
    errors = [d for d in check.diagnostics() if d.is_error]
    assert len(errors) == 1
    assert "not the transpose of its JVP" in errors[0].message
    assert "J=3" in errors[0].message and "Jᵀ=2" in errors[0].message


def test_nonlinear_pullback_has_no_transpose():
    check = check_transpose(
        "nl",
        lambda primals, tangents: (primals[0] ** 2, 2.0 * primals[0] * tangents[0]),
        lambda x: (x * x, lambda ct: (ct * ct,)),
        1,
    )
    assert check.verdict == "inconsistent"
    assert "not linear" in check.reason


def test_missing_cotangent_component_is_inconsistent():
    check = check_transpose(
        "short",
        lambda primals, tangents: (
            primals[0] + primals[1],
            tangents[0] + tangents[1],
        ),
        lambda x, y: (x + y, lambda ct: (ct,)),
        2,
    )
    assert check.verdict == "inconsistent"
    assert "2 argument(s)" in check.reason
    assert check.probe_consistent is False
    assert check.cross_check_ok


def test_primitive_without_both_rules_returns_none():
    vjp_only = Primitive("vjp_only_t", lambda x: x, vjp=lambda x: (x, lambda ct: (ct,)))
    assert check_primitive_transpose(vjp_only) is None


def test_opaque_forward_makes_no_claim():
    def jvp(primals, tangents):
        raise RuntimeError("tensor-only rule")

    check = check_transpose("opq", jvp, lambda x: (x, lambda ct: (ct,)), 1)
    assert check.verdict == "opaque"
    assert check.cross_check_ok
    assert check.diagnostics() == []


def test_every_registered_pair_is_consistent_or_opaque():
    for name, prim in sorted(PRIMITIVES.items()):
        check = check_primitive_transpose(prim)
        if check is None:
            continue
        assert check.verdict in ("consistent", "opaque"), (
            f"{name}: {check.verdict} ({check.reason})"
        )
        assert check.cross_check_ok, name


def test_nondiff_positions_are_exempt():
    # index_get's argument 1 (the index) is non-differentiable: the pair
    # must not be judged on its zero column.
    import repro.core  # noqa: F401  (registration side effects)

    prim = get_primitive("index_get")
    assert prim.nondiff_args == (1,)
    check = check_primitive_transpose(prim)
    assert check is not None
    assert check.verdict in ("consistent", "opaque")
    assert check.cross_check_ok
