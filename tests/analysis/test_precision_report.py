"""End-to-end precision analysis over the seeded corpus: verdicts, the
certified-contains-observed oracle cross-check, the CLI (--precision,
--list, --json), the selfcheck sweep, and the precision_audit table."""

import json

import numpy as np
import pytest

from repro.analysis.__main__ import SUBSYSTEMS, main
from repro.analysis.precision import (
    CORPUS,
    analyze_precision_model,
    get_program,
)
from repro.analysis.precision.report import accuracy_tolerance
from repro.errors import HloError
from repro.hlo.dtypes import finfo

_REPORTS = {}


def _report(name):
    if name not in _REPORTS:
        _REPORTS[name] = analyze_precision_model(name)
    return _REPORTS[name]


def test_corpus_covers_every_verdict_and_policy():
    expects = {p.expect for p in CORPUS}
    assert expects == {
        "clean",
        "overflow",
        "underflow",
        "accum-drift",
        "unsafe-cast",
    }
    assert {p.policy for p in CORPUS} == {"f16", "bf16"}
    assert len(CORPUS) == 12
    assert sum(p.expect == "clean" for p in CORPUS) == 7


@pytest.mark.parametrize("program", CORPUS, ids=lambda p: p.name)
def test_corpus_program_verdict_and_cross_check(program):
    report = _report(program.name)
    assert report.verdict_matches, (
        f"{program.name}: expected {program.expect}, got "
        f"{sorted(report.verdicts())}"
    )
    assert report.cross_check_ok
    assert report.checks  # at least one unique trace was audited
    for check in report.checks:
        assert check.contained, check.containment_failures
        assert check.manifestation_agrees
        assert check.planned_ok
        # The planned lowering re-checks clean no matter the verdict.
        assert not any(d.is_error for d in check.planned_diagnostics)


@pytest.mark.parametrize(
    "program", [p for p in CORPUS if p.expect != "clean"], ids=lambda p: p.name
)
def test_hazards_have_located_diagnostics_that_manifest(program):
    report = _report(program.name)
    errors = [d for d in report.diagnostics() if d.is_error]
    assert errors
    assert all(d.location.line > 0 for d in errors)
    assert all(d.location.filename.endswith("models.py") for d in errors)
    assert all("fix-it" in d.message for d in errors)
    for check in report.checks:
        if program.expect in ("overflow", "unsafe-cast"):
            assert check.naive_error.introduced_nonfinite
        else:
            assert check.naive_error.max_scaled > accuracy_tolerance(
                program.policy
            )


@pytest.mark.parametrize(
    "program", [p for p in CORPUS if p.expect == "clean"], ids=lambda p: p.name
)
def test_clean_programs_have_zero_false_positives(program):
    report = _report(program.name)
    assert report.verdicts() == {"clean"}
    assert not any(d.is_error for d in report.diagnostics())
    tol = accuracy_tolerance(program.policy)
    for check in report.checks:
        assert not check.naive_error.introduced_nonfinite
        assert check.naive_error.max_scaled <= tol
        assert check.planned_error.max_scaled <= tol


def test_narrowing_shrinks_a_certified_peak():
    report = _report("activation_halving_f16")
    assert report.bytes_saved > 0
    [check] = report.checks
    # The 256x256 f16 intermediate halves against its f32 original.
    assert check.planned_peak_bytes < check.f32_peak_bytes


def test_accuracy_tolerance_scales_with_policy():
    assert accuracy_tolerance("f16") == 16.0 * finfo("f16").eps
    assert accuracy_tolerance("bf16") > accuracy_tolerance("f16")


def test_get_program_unknown_name():
    with pytest.raises(KeyError, match="unknown precision program"):
        get_program("nonesuch")


def test_report_to_json_is_serializable():
    payload = _report("wide_range_unsafe_cast").to_json()
    text = json.dumps(payload)
    back = json.loads(text)
    assert back["program"] == "wide_range_unsafe_cast"
    assert back["verdict_matches"] is True
    assert back["cross_check_ok"] is True
    assert set(back["verdicts"]) == {"overflow", "unsafe-cast"}
    [trace] = back["traces"]
    assert trace["diagnostics"]
    assert isinstance(trace["f32_peak_bytes"], int)


# -- the dynamic oracle ------------------------------------------------------


def test_oracle_output_arity_mismatch_raises():
    from repro.analysis.precision.oracle import OracleRun, output_errors

    a = OracleRun("a", outputs=[np.zeros(3)])
    b = OracleRun("b", outputs=[])
    with pytest.raises(HloError, match="arity"):
        output_errors(a, b, "f16")


def test_oracle_flags_introduced_nonfinite():
    from repro.analysis.precision.oracle import OracleRun, output_errors

    ref = OracleRun("ref", outputs=[np.array([1.0, 2.0])])
    bad = OracleRun("obs", outputs=[np.array([1.0, np.inf])])
    err = output_errors(bad, ref, "f16")
    assert err.introduced_nonfinite
    ok = output_errors(ref, ref, "f16")
    assert not ok.introduced_nonfinite
    assert ok.max_scaled == 0.0 and ok.max_ulp == 0.0


def test_oracle_observed_stats_exclude_nan_from_minmax():
    from repro.analysis.precision.oracle import _stats_of

    stats = _stats_of(np.array([1.0, np.nan, 3.0]))
    assert stats.has_nan
    assert stats.lo == 1.0 and stats.hi == 3.0
    assert not stats.finite
    scalar = _stats_of(np.float64(2.5))
    assert scalar.lo == scalar.hi == 2.5


# -- the CLI -----------------------------------------------------------------


def test_cli_precision_single_program(capsys):
    assert main(["--precision", "large_sum_drift_f16"]) == 0
    out = capsys.readouterr().out
    assert "precision report: large_sum_drift_f16" in out
    assert "cross-check OK" in out
    assert "needs-f32-accum" in out
    assert "expected verdict: accum-drift (as predicted)" in out
    assert "1 program(s) audited, 0 failure(s)" in out


def test_cli_precision_all_quiet(capsys):
    assert main(["--precision", "all", "-q"]) == 0
    out = capsys.readouterr().out
    assert "12 program(s) audited, 0 failure(s)" in out
    assert "contain every observed value" in out


def test_cli_precision_json(capsys):
    assert main(["--precision", "exp_overflow_f16", "--json"]) == 0
    [payload] = json.loads(capsys.readouterr().out)
    assert payload["program"] == "exp_overflow_f16"
    assert payload["verdicts"] == ["overflow"]
    assert payload["verdict_matches"] and payload["cross_check_ok"]


def test_cli_precision_unknown_program():
    with pytest.raises(SystemExit, match="unknown precision program"):
        main(["--precision", "nonesuch"])


def test_cli_list_prints_dispatch_table(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for subsystem in SUBSYSTEMS:
        assert subsystem.flag in out
        assert f"sweep {subsystem.sweep}" in out
    assert "activation_halving_f16" in out  # precision corpus is listed
    assert "mlp_chain_reuse" in out  # memory corpus is listed


def test_cli_list_json(capsys):
    assert main(["--list", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["flag"] for r in rows] == [s.flag for s in SUBSYSTEMS]
    precision = next(r for r in rows if r["flag"] == "--precision")
    assert precision["sweep"] == 9
    assert "softmax_unstabilized" in precision["programs"]
    lint = next(r for r in rows if r["flag"] == "--lint")
    assert lint["programs"] == []


def test_cli_json_rejects_lint(capsys):
    # Every subcommand except --lint speaks JSON now.
    with pytest.raises(SystemExit):
        main(["--lint", "repro.analysis.lintdemo:mixed_bag", "--json"])
    assert "--json is not supported with --lint" in capsys.readouterr().err


def test_subsystem_sweeps_are_unique_and_ordered():
    sweeps = [s.sweep for s in SUBSYSTEMS]
    assert len(set(sweeps)) == len(sweeps)
    assert max(sweeps) == 10  # equivalence is the tenth sweep


# -- the selfcheck sweep and the experiment table ----------------------------


def test_selfcheck_precision_sweep_counters():
    from repro.analysis.selfcheck import SelfCheckReport, _check_precision

    report = SelfCheckReport()
    _check_precision(report)
    assert report.failures == []
    assert report.precision_programs_checked == len(CORPUS)
    assert report.precision_hazards_caught == 5
    assert report.intervals_contained == len(CORPUS)
    assert report.autocast_plans_verified == len(CORPUS)
    assert report.narrow_peak_bytes_saved > 0
    payload = report.to_json()
    assert payload["ok"] is True
    assert payload["narrow_peak_bytes_saved"] == report.narrow_peak_bytes_saved


def test_precision_audit_experiment_table():
    from repro.experiments import run_precision_audit

    result = run_precision_audit()
    assert result.ok
    assert len(result.rows) == len(CORPUS)
    assert result.total_bytes_saved > 0
    rendered = result.render()
    assert "Precision audit" in rendered
    assert "✗" not in rendered
    assert "activation_halving_f16" in rendered
