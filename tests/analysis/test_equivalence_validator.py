"""The translation validator: the term normal form (hash-consing,
commutative sorting), certification of real emissions, and rejection with
located diagnostics of every seeded-miscompile class."""

import numpy as np
import pytest

from repro.analysis.equivalence.miscompiles import MISCOMPILES
from repro.analysis.equivalence.normalform import TERM, TermTable
from repro.analysis.equivalence.validator import (
    function_terms,
    module_terms,
    validate_translation,
)
from repro.hlo import HloBuilder, Shape, emit_module, optimize


def _affine_module(fuse=True):
    """(x @ w) + broadcast(b) then relu — one fusable elementwise region."""
    b = HloBuilder("affine")
    x = b.parameter(Shape((4, 6)))
    w = b.parameter(Shape((6, 3)))
    bias = b.parameter(Shape((3,)))
    y = b.binary("add", b.dot(x, w), b.broadcast(bias, (4, 3)))
    module = b.build(b.unary("relu", y))
    return optimize(module, fuse=True) if fuse else module


def _sub_chain_module():
    b = HloBuilder("subchain")
    x = b.parameter(Shape((8,)))
    y = b.parameter(Shape((8,)))
    d = b.binary("subtract", x, y)
    return b.build(b.binary("subtract", d, b.broadcast(b.constant(0.5), (8,))))


# -- the normal form ---------------------------------------------------------


def test_hash_consing_interns_structural_duplicates_once():
    table = TermTable()
    a = table.kernel("relu", [(TERM, table.param(0))])
    b = table.kernel("relu", [(TERM, table.param(0))])
    assert a == b
    assert len(table) == 2  # param + relu, interned once each


def test_commutative_operands_sort_to_one_term():
    table = TermTable()
    p0, p1 = table.param(0), table.param(1)
    assert table.kernel("add", [(TERM, p0), (TERM, p1)]) == table.kernel(
        "add", [(TERM, p1), (TERM, p0)]
    )
    # ... but operand order of subtract is semantic.
    assert table.kernel("sub", [(TERM, p0), (TERM, p1)]) != table.kernel(
        "sub", [(TERM, p1), (TERM, p0)]
    )


def test_constants_key_on_exact_bytes():
    table = TermTable()
    f32 = table.const(np.float32(1.0))
    f64 = table.const(np.float64(1.0))
    again = table.const(np.float32(1.0))
    assert f32 == again
    assert f32 != f64  # same value, different storage → different term


def test_module_and_function_sides_share_the_algebra():
    module = _affine_module()
    generated = emit_module(module)
    table = TermTable()
    root, expected = module_terms(module, table)
    execd = function_terms(
        generated.source, generated.consts, 3, table, generated.filename
    )
    assert not execd.errors
    assert execd.ret_term == root
    assert len(expected) >= 1


# -- certification -----------------------------------------------------------


@pytest.mark.parametrize("fuse", [False, True], ids=["unfused", "fused"])
def test_real_emission_certifies(fuse):
    module = _affine_module(fuse)
    generated = emit_module(module)
    result = validate_translation(module, generated.source, generated.consts)
    assert result.certified
    assert not result.errors
    assert result.checked_values >= 1
    assert result.term_count >= 3


def test_operand_swap_on_noncommutative_op_is_rejected():
    module = _sub_chain_module()
    generated = emit_module(module)
    assert "K['sub'](" in generated.source
    # Swap the outer subtract's operands: bits change, proof must fail.
    lines = generated.source.splitlines()
    ret = [i for i, ln in enumerate(lines) if "return" in ln][0]
    last_assign = lines[ret - 1]
    name, _, expr = last_assign.partition(" = ")
    inner = expr[len("K['sub'](") : -1]
    a, _, b = inner.partition(", ")
    lines[ret - 1] = f"{name} = K['sub']({b}, {a})"
    result = validate_translation(module, "\n".join(lines), generated.consts)
    assert not result.certified
    assert result.divergent_value is not None
    assert any(d.location.line >= 1 for d in result.errors)


def test_commutative_swap_still_certifies():
    b = HloBuilder("addswap")
    x = b.parameter(Shape((4,)))
    y = b.parameter(Shape((4,)))
    module = b.build(b.binary("add", x, y))
    generated = emit_module(module)
    swapped = generated.source.replace(
        "K['add'](p0, p1)", "K['add'](p1, p0)"
    )
    assert swapped != generated.source
    assert validate_translation(module, swapped, generated.consts).certified


def test_dropped_value_is_located():
    module = _sub_chain_module()
    generated = emit_module(module)
    lines = generated.source.splitlines()
    # Delete the first kernel assignment: count mismatch, first unmatched
    # value named in the diagnostic.
    assign = [i for i, ln in enumerate(lines) if "K['sub']" in ln][0]
    result = validate_translation(
        module, "\n".join(lines[:assign] + lines[assign + 1 :]), generated.consts
    )
    assert not result.certified
    assert result.errors


def test_foreign_constructs_are_rejected_not_executed():
    module = _sub_chain_module()
    bad = "def step(p0, p1):\n    import os\n    return p0\n"
    result = validate_translation(module, bad, ())
    assert not result.certified
    assert result.errors


# -- the seeded miscompile corpus -------------------------------------------


def _narrowed_reduce_module():
    """A module whose emission contains convert + f32-accum material."""
    from repro.analysis.precision.casts import apply_plan, naive_assignment

    b = HloBuilder("narrow")
    x = b.parameter(Shape((4, 8)))
    w = b.parameter(Shape((8, 8)))
    module = b.build(b.unary("relu", b.dot(x, w)))
    return optimize(apply_plan(module, naive_assignment(module, "f16")), fuse=True)


_TARGETS = {
    "wrong-broadcast": _affine_module,
    "stale-reuse": None,  # needs a planned-reuse emission (chain below)
    "dropped-convert": _narrowed_reduce_module,
    "reordered-op": _sub_chain_module,
    "accum-elision": _narrowed_reduce_module,
}


def _reuse_chain_module():
    b = HloBuilder("reuse")
    x = b.parameter(Shape((8, 8)))
    w = b.parameter(Shape((8, 8)))
    h = x
    for _ in range(3):
        h = b.unary("relu", b.dot(h, w))
    return b.build(h)


@pytest.mark.parametrize("bug", MISCOMPILES, ids=lambda m: m.name)
def test_each_miscompile_is_caught_with_a_location(bug):
    build = _TARGETS.get(bug.verdict) or _reuse_chain_module
    module = build()
    generated = emit_module(module)
    # Sanity: the untransformed emission certifies (no false positive).
    clean = validate_translation(module, generated.source, generated.consts)
    assert clean.certified, bug.name
    transformed = bug.transform(generated.source)
    assert transformed is not None, f"{bug.name} found no target to corrupt"
    result = validate_translation(module, transformed, generated.consts)
    assert not result.certified, bug.name
    assert any(d.location.line >= 1 for d in result.errors), bug.name


def test_miscompile_transforms_return_none_when_inapplicable():
    trivial = "def step(p0):\n    return p0\n"
    for bug in MISCOMPILES:
        assert bug.transform(trivial) is None, bug.name
