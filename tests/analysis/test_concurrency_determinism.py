"""Merge-determinism: static classification, numeric probes, cross-check."""

import pytest

from repro.analysis.concurrency.determinism import (
    PROBE_VALUES,
    MergeSpec,
    ProbeResult,
    RUNTIME_MERGES,
    classify_merge,
    verify_merges,
)

MODELS = "repro.analysis.concurrency.models"


# ---------------------------------------------------------------------------
# Static classifier on the corpus merges
# ---------------------------------------------------------------------------


def test_completion_order_merge_is_order_sensitive():
    verdict, sites, location = classify_merge(MODELS, "completion_order_merge")
    assert verdict == "order-sensitive"
    site = next(s for s in sites if s.verdict == "order-sensitive")
    assert site.op == "+="
    assert site.iteration == "completion-ordered"
    assert site.location.line > 0
    assert location.filename.endswith("models.py")


def test_replica_order_merge_is_replica_ordered():
    verdict, sites, _ = classify_merge(MODELS, "replica_order_merge")
    assert verdict == "replica-ordered"
    assert all(s.iteration == "index-ordered" for s in sites)


def test_unknown_merge_function_raises():
    with pytest.raises(ValueError, match="not found"):
        classify_merge(MODELS, "no_such_merge")


# ---------------------------------------------------------------------------
# The real runtime merges
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def runtime_report():
    return verify_merges(RUNTIME_MERGES)


def test_runtime_merges_all_verified(runtime_report):
    assert len(runtime_report.findings) == 4
    assert all(f.ok for f in runtime_report.findings), [
        (f.qualname, f.verdict, f.expect) for f in runtime_report.findings
    ]
    assert runtime_report.order_sensitive == []
    assert not any(d.is_error for d in runtime_report.diagnostics)


def test_runtime_probes_ran_and_agree(runtime_report):
    assert runtime_report.cross_check_ok
    for finding in runtime_report.findings:
        assert finding.probe is not None, finding.qualname
        assert finding.probe_consistent is True, finding.qualname
        # Float-sum merges must actually be order-sensitive numerically —
        # the probe proves the static "replica-ordered" verdict is load-
        # bearing, not vacuous.
        if finding.expect == "replica-ordered":
            assert finding.probe.order_sensitive
        assert finding.probe.deterministic


def test_gradient_average_is_pinned_to_replica_order(runtime_report):
    by_name = {f.qualname: f for f in runtime_report.findings}
    avg = by_name["repro.runtime.parallel.trainer:_average_leaves"]
    assert avg.verdict == "replica-ordered"
    pod = by_name["repro.runtime.cluster:PodSimulator.step_time_multi"]
    assert pod.verdict == "order-insensitive"
    shm = by_name["repro.runtime.parallel.shm:GradientExchange.reduce_mean"]
    assert shm.verdict == "replica-ordered"


# ---------------------------------------------------------------------------
# Probe cross-check discipline
# ---------------------------------------------------------------------------


def test_probe_values_expose_f32_nonassociativity():
    import numpy as np

    ltr = np.float32(0.0)
    for v in PROBE_VALUES:
        ltr = np.float32(ltr + np.float32(v))
    paired = np.float32(np.float32(PROBE_VALUES[0]) + np.float32(PROBE_VALUES[2]))
    paired = np.float32(paired + np.float32(PROBE_VALUES[1]))
    paired = np.float32(paired + np.float32(PROBE_VALUES[3]))
    assert ltr != paired


def test_contradicting_probe_fails_cross_check():
    # Statically order-sensitive, but the probe claims deterministic:
    # the disagreement itself is an error.
    spec = MergeSpec(
        f"{MODELS}:completion_order_merge",
        expect="order-sensitive",
        probe=lambda: ProbeResult(deterministic=True, order_sensitive=False),
    )
    report = verify_merges([spec])
    assert not report.cross_check_ok
    diag = next(d for d in report.diagnostics if "contradicts" in d.message)
    assert diag.is_error


def test_expect_mismatch_is_diagnosed():
    spec = MergeSpec(f"{MODELS}:replica_order_merge", expect="order-insensitive")
    report = verify_merges([spec])
    finding = report.findings[0]
    assert not finding.ok
    assert any(
        "registry expects order-insensitive" in d.message
        for d in report.diagnostics
    )


def test_order_sensitive_diagnostic_is_located():
    spec = MergeSpec(f"{MODELS}:completion_order_merge", expect="order-sensitive")
    report = verify_merges([spec])
    diag = next(
        d for d in report.diagnostics if "completion order" in d.message
    )
    assert diag.is_error
    assert diag.location.filename.endswith("models.py")
    assert diag.location.line > 0
