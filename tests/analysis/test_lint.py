"""The differentiability linter: batched diagnostics with locations."""

import pytest

from repro.core.lint import check_differentiability, lint_function
from repro.errors import DifferentiabilityError, SourceLocation
from repro.sil import ir
from repro.sil.primitives import Primitive, get_primitive

# A primitive with no registered derivative (deliberately NOT in the global
# registry, so nothing else in the suite can see it).
OPAQUE = Primitive("opaque_test", lambda x: float(hash(x)))


def _double_opaque_function():
    """f(x) = opaque(x) + opaque(x), each apply with its own location."""
    func = ir.Function("uses_opaque", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    a = entry.append(
        ir.ApplyInst(
            ir.FunctionRef(OPAQUE), [x], loc=SourceLocation("model.py", 10, 4)
        )
    )
    b = entry.append(
        ir.ApplyInst(
            ir.FunctionRef(OPAQUE), [x], loc=SourceLocation("model.py", 11, 8)
        )
    )
    s = entry.append(
        ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [a.result, b.result])
    )
    entry.append(ir.ReturnInst(s.result))
    return func


def test_linter_batches_multiple_errors_with_locations():
    with pytest.raises(DifferentiabilityError) as exc_info:
        check_differentiability(_double_opaque_function(), (0,))
    errors = [d for d in exc_info.value.diagnostics if d.is_error]
    assert len(errors) == 2
    message = str(exc_info.value)
    assert "no registered derivative" in message
    assert "'opaque_test'" in message
    assert "model.py:10:4" in message
    assert "model.py:11:8" in message


def test_inactive_application_of_nondiff_primitive_allowed():
    # opaque applied to a constant: nothing active flows through it.
    func = ir.Function("opaque_on_const", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    c = entry.append(ir.ConstInst(7.0))
    o = entry.append(ir.ApplyInst(ir.FunctionRef(OPAQUE), [c.result]))
    s = entry.append(
        ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x, o.result])
    )
    entry.append(ir.ReturnInst(s.result))
    assert not any(d.is_error for d in lint_function(func, (0,)))


def test_unused_wrt_parameter_warned():
    func = ir.Function("ignores_y", ["x", "y"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    entry.add_arg(ir.FLOAT, "y")
    m = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("mul")), [x, x]))
    entry.append(ir.ReturnInst(m.result))
    warnings = check_differentiability(func, (0, 1))
    assert any(
        "'y'" in d.message and "never contributes" in d.message for d in warnings
    )


def test_dropped_active_value_warned():
    func = ir.Function("drops_square", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("mul")), [x, x]))
    entry.append(ir.ReturnInst(x))
    warnings = check_differentiability(func, (0,))
    assert any("dropped before the return" in d.message for d in warnings)


def test_constant_result_warned():
    func = ir.Function("constant_result", ["x"])
    entry = func.new_block("entry")
    entry.add_arg(ir.FLOAT, "x")
    c = entry.append(ir.ConstInst(4.0))
    entry.append(ir.ReturnInst(c.result))
    warnings = check_differentiability(func, (0,))
    assert any("does not depend" in d.message for d in warnings)


def test_diagnostic_str_format_is_stable():
    with pytest.raises(DifferentiabilityError) as exc_info:
        check_differentiability(_double_opaque_function(), (0,))
    d = next(d for d in exc_info.value.diagnostics if d.is_error)
    assert str(d).startswith("error: ")
    assert str(d).endswith("(at model.py:10:4)")


# ---------------------------------------------------------------------------
# Custom-derivative contract checks.
# ---------------------------------------------------------------------------


def _apply_site(prim, n_args=1, loc=None):
    """A one-apply function calling ``prim`` on fresh float parameters."""
    func = ir.Function("contract_site", [f"a{i}" for i in range(n_args)])
    entry = func.new_block("entry")
    args = [entry.add_arg(ir.FLOAT, f"a{i}") for i in range(n_args)]
    a = entry.append(
        ir.ApplyInst(
            ir.FunctionRef(prim),
            args,
            loc=loc or SourceLocation("model.py", 3, 1),
        )
    )
    entry.append(ir.ReturnInst(a.result))
    return func


def test_vjp_arity_mismatch_is_a_contract_violation():
    bad = Primitive(
        "contract_bad_vjp",
        lambda x: x * 2.0,
        vjp=lambda x, y: (x * 2.0, lambda ct: (2.0 * ct,)),  # primal takes 1
    )
    diagnostics = lint_function(_apply_site(bad), (0,))
    errors = [d for d in diagnostics if d.is_error]
    assert any(
        "contract violation" in d.message and "accepts 2" in d.message
        for d in errors
    )
    assert all(d.location.line > 0 for d in errors)


def test_jvp_must_take_primals_and_tangents():
    bad = Primitive(
        "contract_bad_jvp",
        lambda x: x * 2.0,
        jvp=lambda primals, tangents, extra: (0.0, 0.0),
    )
    diagnostics = lint_function(_apply_site(bad), (0,))
    assert any(
        "must accept exactly (primals, tangents)" in d.message
        for d in diagnostics
        if d.is_error
    )


def test_probe_catches_wrong_pullback_tuple_length():
    bad = Primitive(
        "contract_short_pullback",
        lambda x, y: x + y,
        vjp=lambda x, y: (x + y, lambda ct: (ct,)),  # one ct for two args
    )
    func = _apply_site(bad, n_args=2)
    # Off by default: the pre-synthesis lint must not execute rule code.
    assert not any(
        d.is_error for d in lint_function(func, (0, 1))
    )
    probed = lint_function(func, (0, 1), probe_custom_rules=True)
    assert any(
        "ill-typed" in d.message and d.is_error for d in probed
    )


def test_correct_rules_produce_no_contract_diagnostics():
    good = Primitive(
        "contract_good",
        lambda x: x * 2.0,
        jvp=lambda primals, tangents: (primals[0] * 2.0, tangents[0] * 2.0),
        vjp=lambda x: (x * 2.0, lambda ct: (2.0 * ct,)),
    )
    diagnostics = lint_function(
        _apply_site(good), (0,), probe_custom_rules=True
    )
    assert not any("contract" in d.message for d in diagnostics)


def test_registered_function_vjp_arity_checked():
    from repro.core.registry import derivative
    from repro.sil import lower_function

    def lint_scaled(x):
        return x * 5.0

    @derivative(of=lint_scaled)
    def lint_scaled_vjp(x, extra):  # the primal takes one argument
        return x * 5.0, lambda ct: (5.0 * ct,)

    def caller(x):
        return lint_scaled(x)

    diagnostics = lint_function(lower_function(caller), (0,))
    assert any(
        "contract violation" in d.message and "lint_scaled_vjp" in d.message
        for d in diagnostics
        if d.is_error
    )
