"""The differentiability linter: batched diagnostics with locations."""

import pytest

from repro.core.lint import check_differentiability, lint_function
from repro.errors import DifferentiabilityError, SourceLocation
from repro.sil import ir
from repro.sil.primitives import Primitive, get_primitive

# A primitive with no registered derivative (deliberately NOT in the global
# registry, so nothing else in the suite can see it).
OPAQUE = Primitive("opaque_test", lambda x: float(hash(x)))


def _double_opaque_function():
    """f(x) = opaque(x) + opaque(x), each apply with its own location."""
    func = ir.Function("uses_opaque", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    a = entry.append(
        ir.ApplyInst(
            ir.FunctionRef(OPAQUE), [x], loc=SourceLocation("model.py", 10, 4)
        )
    )
    b = entry.append(
        ir.ApplyInst(
            ir.FunctionRef(OPAQUE), [x], loc=SourceLocation("model.py", 11, 8)
        )
    )
    s = entry.append(
        ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [a.result, b.result])
    )
    entry.append(ir.ReturnInst(s.result))
    return func


def test_linter_batches_multiple_errors_with_locations():
    with pytest.raises(DifferentiabilityError) as exc_info:
        check_differentiability(_double_opaque_function(), (0,))
    errors = [d for d in exc_info.value.diagnostics if d.is_error]
    assert len(errors) == 2
    message = str(exc_info.value)
    assert "no registered derivative" in message
    assert "'opaque_test'" in message
    assert "model.py:10:4" in message
    assert "model.py:11:8" in message


def test_inactive_application_of_nondiff_primitive_allowed():
    # opaque applied to a constant: nothing active flows through it.
    func = ir.Function("opaque_on_const", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    c = entry.append(ir.ConstInst(7.0))
    o = entry.append(ir.ApplyInst(ir.FunctionRef(OPAQUE), [c.result]))
    s = entry.append(
        ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x, o.result])
    )
    entry.append(ir.ReturnInst(s.result))
    assert not any(d.is_error for d in lint_function(func, (0,)))


def test_unused_wrt_parameter_warned():
    func = ir.Function("ignores_y", ["x", "y"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    entry.add_arg(ir.FLOAT, "y")
    m = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("mul")), [x, x]))
    entry.append(ir.ReturnInst(m.result))
    warnings = check_differentiability(func, (0, 1))
    assert any(
        "'y'" in d.message and "never contributes" in d.message for d in warnings
    )


def test_dropped_active_value_warned():
    func = ir.Function("drops_square", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("mul")), [x, x]))
    entry.append(ir.ReturnInst(x))
    warnings = check_differentiability(func, (0,))
    assert any("dropped before the return" in d.message for d in warnings)


def test_constant_result_warned():
    func = ir.Function("constant_result", ["x"])
    entry = func.new_block("entry")
    entry.add_arg(ir.FLOAT, "x")
    c = entry.append(ir.ConstInst(4.0))
    entry.append(ir.ReturnInst(c.result))
    warnings = check_differentiability(func, (0,))
    assert any("does not depend" in d.message for d in warnings)


def test_diagnostic_str_format_is_stable():
    with pytest.raises(DifferentiabilityError) as exc_info:
        check_differentiability(_double_opaque_function(), (0,))
    d = next(d for d in exc_info.value.diagnostics if d.is_error)
    assert str(d).startswith("error: ")
    assert str(d).endswith("(at model.py:10:4)")
