"""The derivative report: corpus verdicts, pruning measurements, and the CLI."""

import pytest

from repro.analysis.__main__ import main
from repro.analysis.derivatives.models import CLEAN_MODELS, HAZARD_MODELS, MODELS
from repro.analysis.derivatives.report import (
    analyze_derivative_model,
    verify_derivatives,
)


class TestCorpusVerdicts:
    @pytest.mark.parametrize("model", CLEAN_MODELS, ids=lambda m: m.name)
    def test_clean_models_verify_with_zero_errors(self, model):
        report = analyze_derivative_model(model)
        assert report.verdicts() == {"clean"}
        assert report.cross_check_ok
        assert report.fd_match is True
        assert not any(d.is_error for d in report.diagnostics())

    @pytest.mark.parametrize("model", HAZARD_MODELS, ids=lambda m: m.name)
    def test_hazards_caught_with_expected_verdict(self, model):
        report = analyze_derivative_model(model)
        assert model.expect in report.verdicts()
        assert report.cross_check_ok
        # Every hazard comes with at least one located diagnostic.
        assert any(d.location.line > 0 for d in report.diagnostics())

    def test_each_hazard_maps_to_exactly_one_verdict_class(self):
        for model in HAZARD_MODELS:
            report = analyze_derivative_model(model)
            assert report.verdicts() == {model.expect}, model.name


class TestBadDerivativesDisagreeWithFD:
    def test_wrong_transpose_gradient_differs_from_fd(self):
        report = analyze_derivative_model(MODELS["bad_scale"])
        assert report.fd_match is False

    def test_nonlinear_pullback_gradient_differs_from_fd(self):
        report = analyze_derivative_model(MODELS["bad_square"])
        assert report.fd_match is False


class TestPruningMeasurement:
    def test_dead_capture_measured_savings(self):
        report = analyze_derivative_model(MODELS["dead_capture"])
        assert report.pruning is not None
        assert report.pruning.entries_saved == 1
        assert report.pruning.gradients_identical

    def test_loop_dead_capture_saves_per_iteration(self):
        report = analyze_derivative_model(MODELS["loop_dead_capture"])
        # 2 dead sites × 3 iterations = 6 record entries never materialized.
        assert report.pruning.entries_saved == 6
        assert report.pruning.gradients_identical

    def test_clean_models_prune_nothing(self):
        for model in CLEAN_MODELS:
            report = analyze_derivative_model(model)
            assert report.pruning is not None, model.name
            assert report.pruning.entries_saved == 0, model.name


class TestRenderAndAnnotation:
    def test_render_mentions_every_section(self):
        text = analyze_derivative_model(MODELS["dead_capture"]).render()
        assert "rules checked" in text
        assert "transpose pairs" in text
        assert "capture liveness" in text
        assert "prune_captures" in text

    def test_annotated_sil_marks_dead_captures_and_activity(self):
        report = analyze_derivative_model(MODELS["dead_capture"])
        sil = report.annotated_sil()
        assert sil is not None
        assert "[dead capture]" in sil
        assert "[active]" in sil

    def test_verify_plain_callable(self):
        def cubic(x):
            return x * x * x

        report = verify_derivatives(cubic, args=(1.1,))
        assert report.verdicts() == {"clean"}
        assert report.cross_check_ok


class TestCLI:
    def test_single_model(self, capsys):
        assert main(["--derivatives", "bad_scale"]) == 0
        out = capsys.readouterr().out
        assert "wrong-transpose" in out
        assert "not the transpose of its JVP" in out
        assert "expected verdict: wrong-transpose (as predicted)" in out
        assert "sil @bad_scale_model" in out

    def test_all_models_quiet(self, capsys):
        assert main(["--derivatives", "all", "-q"]) == 0
        out = capsys.readouterr().out
        assert f"{len(MODELS)} function(s) verified, 0 failure(s)" in out

    def test_module_function_spec(self, capsys):
        spec = "repro.analysis.derivatives.models:polynomial"
        assert main(["--derivatives", spec]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_model_lists_names(self):
        with pytest.raises(SystemExit, match="unknown derivative model"):
            main(["--derivatives", "nonesuch"])

    def test_lint_flag(self, capsys):
        spec = "repro.analysis.derivatives.models:polynomial"
        assert main(["--lint", spec]) == 0
        assert "0 error(s)" in capsys.readouterr().out
