"""Capture liveness: the backward cotangent-flow analysis and its pruning set."""

import math

from repro.analysis.derivatives.liveness import (
    analyze_capture_liveness,
    cotangent_live_values,
    prunable_instruction_ids,
)
from repro.analysis.derivatives.models import dead_capture, loop_dead_capture
from repro.sil import ir, lower_function


def test_all_live_when_every_pullback_flows():
    def f(x):
        return x * x + 2.0 * x

    func = lower_function(f)
    report = analyze_capture_liveness(func, (0,))
    assert report.ok
    assert report.dead == []
    assert report.recorded_entries > 0
    assert report.live_entries == report.recorded_entries
    assert report.diagnostics() == []


def test_discrete_chain_kills_cotangent_flow():
    func = lower_function(dead_capture)
    report = analyze_capture_liveness(func, (0,))
    assert not report.ok
    assert len(report.dead) == 1
    dead = report.dead[0]
    # The dead capture is exp(x): varied, but its cotangent dies at int().
    assert dead.hint == "y"
    assert "prune_captures=True" in dead.fix_it()
    diags = report.diagnostics()
    assert len(diags) == 1
    assert not diags[0].is_error  # a dead capture is waste, not wrongness
    assert "dead pullback capture" in diags[0].message


def test_loop_body_dead_captures_found():
    func = lower_function(loop_dead_capture)
    report = analyze_capture_liveness(func, (0,))
    # exp(total) and the int(.)%7 intermediate are dead; k itself is NOT —
    # the mul pullback consumes k's cotangent slot, so its capture is live.
    assert len(report.dead) == 2
    assert "y" in {d.hint for d in report.dead}


def test_live_set_contains_wrt_chain():
    def f(x):
        y = math.sin(x)
        return y * 2.0

    func = lower_function(f)
    live = cotangent_live_values(func)
    # The returned value and the sin result both carry cotangent.
    ret = func.blocks[0].terminator
    assert isinstance(ret, ir.ReturnInst)
    assert ret.operands[0].id in live


def test_prunable_ids_match_dead_captures():
    func = lower_function(dead_capture)
    report = analyze_capture_liveness(func, (0,))
    prunable = prunable_instruction_ids(func, (0,))
    assert len(prunable) == len(report.dead)
    dead_value_ids = {d.value_id for d in report.dead}
    by_result = {
        inst.result.id: id(inst)
        for inst in func.instructions()
        if inst.results
    }
    assert {by_result[v] for v in dead_value_ids} == prunable


def test_conservative_on_unknown_rules():
    # A function whose applies all have flowing pullbacks must prune nothing.
    def f(x):
        return math.exp(x) * x

    assert prunable_instruction_ids(lower_function(f), (0,)) == set()
