"""Printer -> parser -> printer golden round-trips over every module the
analysis corpora can produce — tracing, memory, precision, and equivalence
programs, including narrowed (f16/bf16) lowerings with explicit converts
and f32 accumulator attributes, and buffer-annotated printing.  The
equivalence corpus additionally pins codegen determinism: one canonical
key, one emitted source."""

import numpy as np
import pytest

from repro.analysis.precision import CORPUS as PRECISION_CORPUS
from repro.analysis.precision.casts import (
    apply_plan,
    naive_assignment,
    plan_casts,
)
from repro.analysis.precision.intervals import Interval
from repro.analysis.precision.ranges import analyze_ranges
from repro.analysis.equivalence.models import CORPUS as EQUIVALENCE_CORPUS
from repro.analysis.memory.models import CORPUS as MEMORY_CORPUS
from repro.analysis.tracing.models import PROGRAMS as TRACE_PROGRAMS
from repro.hlo import parse_module, print_module, verify_module


def _lowered_modules(program):
    """Every unique HLO module a corpus program's capture lowers to."""
    from repro.analysis.tracing.canonical import canonicalize
    from repro.analysis.tracing.capture import capture_step_traces
    from repro.tensor.lazy_backend import _lower_to_hlo

    device, step_fn = program.build()
    capture = capture_step_traces(
        step_fn,
        steps=min(program.steps, 2),
        device=device,
        keep_source_data=True,
    )
    modules = []
    seen = set()
    for record in capture.fragments:
        key = canonicalize(record.fragment.roots).digest
        if key in seen:
            continue
        seen.add(key)
        modules.append(_lower_to_hlo(record.fragment.to_trace_nodes()))
    return modules


def _assert_round_trip(module):
    text = print_module(module)
    reparsed = parse_module(text)
    assert print_module(reparsed) == text
    verify_module(reparsed)


@pytest.mark.parametrize(
    "program", list(TRACE_PROGRAMS.values()), ids=lambda p: p.name
)
def test_trace_corpus_round_trips(program):
    # Programs without explicit barriers (unrolled_no_barrier,
    # auto_cut_reliance) may capture no fragments in two steps — the
    # round-trip claim is over every module that *was* lowered.
    for module, _params in _lowered_modules(program):
        _assert_round_trip(module)


@pytest.mark.parametrize("program", MEMORY_CORPUS, ids=lambda p: p.name)
def test_memory_corpus_round_trips(program):
    for module, _params in _lowered_modules(program):
        _assert_round_trip(module)


@pytest.mark.parametrize("program", PRECISION_CORPUS, ids=lambda p: p.name)
def test_precision_corpus_round_trips_original_and_narrowed(program):
    for module, param_nodes in _lowered_modules(program):
        _assert_round_trip(module)
        args = [np.asarray(p.data, np.float32) for p in param_nodes]
        intervals = {i: Interval.of_array(a) for i, a in enumerate(args)}
        # The naive and planned lowerings exercise the new dtype syntax:
        # f16/bf16 shapes, convert instructions, accum="f32" attributes.
        naive = apply_plan(module, naive_assignment(module, program.policy))
        planned = apply_plan(
            module,
            plan_casts(module, program.policy, analyze_ranges(module, intervals)),
        )
        for narrowed in (naive, planned):
            text = print_module(narrowed)
            assert program.policy in text  # dtype syntax is exercised
            _assert_round_trip(narrowed)


@pytest.mark.parametrize(
    "program",
    [MEMORY_CORPUS[0], PRECISION_CORPUS[0]],
    ids=lambda p: p.name,
)
def test_annotated_printing_round_trips(program):
    for module, _params in _lowered_modules(program):
        plain = print_module(module)
        annotated = print_module(module, annotate_buffers=True)
        assert "{buf=" in annotated or "{resident}" in annotated
        # The annotations are comments to the parser: reparsing the
        # annotated text recovers the same module as the plain text.
        assert print_module(parse_module(annotated)) == plain


@pytest.mark.parametrize(
    "program",
    [p for p in EQUIVALENCE_CORPUS if p.expect == "clean"],
    ids=lambda p: p.name,
)
def test_equivalence_corpus_round_trips_and_emits_deterministically(program):
    """The codegen'd corpus: every lowered module round-trips through the
    printer, and emission is a pure function of the canonical trace key —
    two independent builds of the same program produce byte-identical
    step-function source."""
    from repro.hlo import emit_module, optimize

    def emissions():
        out = []
        for module, _params in _lowered_modules(program):
            _assert_round_trip(module)
            generated = emit_module(optimize(module, fuse=True), key="k")
            # Emitted names are positional (p{n}/b{buf}/v{pos}), so the
            # source carries no builder counters at all.
            out.append((generated.source, generated.launches))
        return out

    first, second = emissions(), emissions()
    assert first and first == second
