"""Lockset race analysis: runtime cleanliness and corpus ground truth."""

import pytest

from repro.analysis.concurrency.inventory import RUNTIME_TARGET
from repro.analysis.concurrency.lockset import analyze_locksets
from repro.analysis.concurrency.models import CORPUS_TARGET

MODELS = "repro.analysis.concurrency.models"


@pytest.fixture(scope="module")
def runtime():
    return analyze_locksets(RUNTIME_TARGET)


@pytest.fixture(scope="module")
def corpus():
    return analyze_locksets(CORPUS_TARGET)


# ---------------------------------------------------------------------------
# Real runtime: zero unguarded accesses, contracts verified
# ---------------------------------------------------------------------------


def test_runtime_has_no_unguarded_accesses(runtime):
    assert runtime.violations == [], [
        f"{a.kind} {a.field} in {a.function}" for a in runtime.violations
    ]
    assert not any(d.is_error for d in runtime.diagnostics), [
        d.message for d in runtime.diagnostics
    ]


def test_runtime_proves_a_real_access_surface(runtime):
    guarded = [a for a in runtime.accesses if a.required is not None]
    assert len(guarded) >= 50
    # Both caches' fields are actually exercised by the analysis.
    touched = {a.field for a in guarded}
    assert "repro.hlo.compiler._CACHE" in touched
    assert "repro.core.synthesis._VJP_PLANS" in touched
    assert "repro.runtime.memory._ACTIVE" in touched


def test_entry_lockset_fixpoint_proves_private_helpers(runtime):
    # _note_dependency is only called from plan builds, which REQUIRE the
    # plan-cache lock — the fixpoint derives its entry lockset.
    entry = runtime.entry_locksets["repro.core.synthesis._note_dependency"]
    assert "core.plan_cache" in entry
    # build() carries an explicit REQUIRES contract.
    entry = runtime.entry_locksets["repro.core.synthesis.VJPPlan.build"]
    assert "core.plan_cache" in entry
    # Public entry points start lock-free.
    assert runtime.entry_locksets["repro.core.synthesis.vjp_plan"] == frozenset()


def test_requires_contracts_hold_at_every_call_site(runtime):
    assert not any(
        "REQUIRES" in d.message for d in runtime.diagnostics
    ), [d.message for d in runtime.diagnostics]


# ---------------------------------------------------------------------------
# Corpus: every seeded race located, clean functions silent
# ---------------------------------------------------------------------------


def _violations_in(corpus, function):
    return [a for a in corpus.violations if a.function == f"{MODELS}.{function}"]


def test_guarded_increment_is_clean(corpus):
    clean = [
        a for a in corpus.accesses
        if a.function == f"{MODELS}.guarded_increment"
    ]
    assert clean and all(a.ok for a in clean)
    assert all("corpus.lock_a" in a.lockset for a in clean)


def test_unlocked_increment_is_a_race(corpus):
    violations = _violations_in(corpus, "unlocked_increment")
    assert violations
    write = next(a for a in violations if a.kind == "write")
    assert write.field == f"{MODELS}._COUNTER"
    assert write.required == "corpus.lock_a"
    assert write.lockset == frozenset()
    assert write.location.line > 0


def test_check_then_act_write_escapes_the_lock(corpus):
    violations = _violations_in(corpus, "check_then_act")
    # Exactly the escaped write — the locked read and locked lookup are ok.
    assert [a.kind for a in violations] == ["write"]
    assert violations[0].field == f"{MODELS}._CACHE"


def test_dirty_read_is_flagged(corpus):
    violations = _violations_in(corpus, "dirty_read_latest")
    assert violations and all(a.kind == "read" for a in violations)


def test_stats_reset_misses_class_guard(corpus):
    assert _violations_in(corpus, "RaceyStats.record") == []
    violations = _violations_in(corpus, "RaceyStats.reset")
    fields = {a.field for a in violations}
    assert f"{MODELS}.RaceyStats.records" in fields
    assert f"{MODELS}.RaceyStats.total" in fields
    assert all(a.required == "corpus.stats" for a in violations)


def test_init_writes_are_exempt(corpus):
    assert _violations_in(corpus, "RaceyStats.__init__") == []


def test_diagnostics_carry_access_path_and_missing_lock(corpus):
    diag = next(
        d for d in corpus.diagnostics
        if "unlocked_increment" in d.message
    )
    assert "access path" in diag.message
    assert "`corpus.lock_a`" in diag.message
    assert diag.location.filename.endswith("models.py")
    assert diag.location.line > 0


# ---------------------------------------------------------------------------
# Static lock-order material
# ---------------------------------------------------------------------------


def test_nested_acquisitions_become_static_edges(corpus):
    edges = corpus.edge_set()
    assert ("corpus.lock_a", "corpus.lock_b") in edges  # consistent + forward
    assert ("corpus.lock_b", "corpus.lock_a") in edges  # inverted backward


def test_runtime_static_graph_is_empty(runtime):
    # The engine never nests its seven lock classes statically — the
    # strongest possible deadlock-freedom evidence.  In particular the
    # two process-backend locks (runtime.parallel.shm, .pool) introduce
    # no lock-order edges.
    assert runtime.edge_set() == frozenset()
