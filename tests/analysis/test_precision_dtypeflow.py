"""The dtype-flow checker: one located diagnostic per hazard origin."""

from repro.analysis.precision.dtypeflow import (
    VERDICT_PREFIXES,
    check_dtype_flow,
    verdict_of,
)
from repro.analysis.precision.intervals import Interval
from repro.analysis.precision.ranges import analyze_ranges
from repro.errors import Diagnostic, SourceLocation
from repro.hlo import HloBuilder
from repro.hlo.ir import F16, F32, Shape


def _check(module, params):
    ranges = analyze_ranges(module, params)
    return check_dtype_flow(
        module, ranges, SourceLocation("test.py", 1)
    ), ranges


def test_clean_module_has_no_diagnostics():
    b = HloBuilder("clean")
    x = b.parameter(Shape((8,), F16))
    module = b.build(b.binary("add", b.unary("tanh", x), x))
    diags, _ = _check(module, {0: Interval.make(-2.0, 2.0)})
    assert diags == []


def test_overflow_to_inf_reported_at_origins_only():
    b = HloBuilder("overflow")
    x = b.parameter(Shape((4,), F16))
    e = b.unary("exponential", x)
    d = b.binary("divide", e, e)  # inf/inf: exact poisons here
    module = b.build(b.binary("add", d, d))
    diags, _ = _check(module, {0: Interval.make(0.0, 12.0)})
    overflow = [d for d in diags if verdict_of(d) == "overflow"]
    assert overflow and all(d.is_error for d in overflow)
    assert any("%exponential" in d.message for d in overflow)
    assert all("fix-it" in d.message for d in overflow)
    # The divide consumes a saturated-but-usable [.., inf] bound and its
    # own exact image poisons (inf/inf is NaN): it is an origin too.
    assert any("%divide" in d.message for d in diags)
    # But everything downstream of the *poisoned* divide is suppressed:
    # one root cause, one diagnostic.
    assert not any("%add" in d.message for d in diags)


def test_unsafe_cast_diagnostic():
    b = HloBuilder("cast")
    x = b.parameter(Shape((4,), F32))
    big = b.binary("multiply", x, x)  # up to 1e10, fine in f32
    module = b.build(b.convert(big, F16))  # but far beyond f16's 65504
    diags, _ = _check(module, {0: Interval.make(0.0, 1e5)})
    casts = [d for d in diags if verdict_of(d) == "unsafe-cast"]
    assert len(casts) == 1
    assert "f32->f16" in casts[0].message
    assert casts[0].location.filename == "test.py"


def test_widening_convert_is_never_unsafe():
    b = HloBuilder("widen")
    x = b.parameter(Shape((4,), F16))
    module = b.build(b.convert(x, F32))
    diags, _ = _check(module, {0: Interval.make(0.0, 60000.0)})
    assert diags == []


def test_underflow_to_zero_with_loss_scale_fixit():
    b = HloBuilder("underflow")
    a = b.parameter(Shape((4,), F16), number=0)
    g = b.parameter(Shape((4,), F16), number=1)
    module = b.build(b.binary("multiply", a, g))
    diags, _ = _check(
        module,
        {0: Interval.make(1e-3, 2e-3), 1: Interval.make(1e-5, 2e-5)},
    )
    under = [d for d in diags if verdict_of(d) == "underflow"]
    assert len(under) == 1
    assert "loss scaling" in under[0].message
    assert "2**" in under[0].message


def test_zero_containing_interval_is_not_underflow():
    # Zero-initialized values have certified intervals a few ULPs around
    # exact zero — they must not be mistaken for vanishing gradients.
    b = HloBuilder("zeros")
    x = b.parameter(Shape((4,), F16))
    module = b.build(b.binary("multiply", x, x))
    diags, _ = _check(module, {0: Interval.point(0.0)})
    assert diags == []


def test_needs_f32_accum_diagnostic():
    b = HloBuilder("drift")
    x = b.parameter(Shape((4096,), F16))
    module = b.build(b.reduce(x, "sum", axes=(0,)))
    diags, _ = _check(module, {0: Interval.make(0.9, 1.1)})
    drift = [d for d in diags if verdict_of(d) == "accum-drift"]
    assert len(drift) == 1
    assert "4096 elements" in drift[0].message
    assert 'accum="f32"' in drift[0].message


def test_f32_accum_attribute_silences_drift():
    b = HloBuilder("accum_ok")
    x = b.parameter(Shape((4096,), F16))
    module = b.build(b.reduce(x, "sum", axes=(0,), accum="f32"))
    diags, _ = _check(module, {0: Interval.make(0.9, 1.1)})
    assert diags == []


def test_small_narrow_reduce_is_fine():
    b = HloBuilder("small")
    x = b.parameter(Shape((512,), F16))  # below 1/eps = 1024
    module = b.build(b.reduce(x, "sum", axes=(0,)))
    diags, _ = _check(module, {0: Interval.make(0.0, 1.0)})
    assert [d for d in diags if verdict_of(d) == "accum-drift"] == []


def test_verdict_prefix_table_is_total():
    labels = {label for _, label in VERDICT_PREFIXES}
    assert labels == {"overflow", "unsafe-cast", "underflow", "accum-drift"}
    loc = SourceLocation("x.py", 1)
    for prefix, label in VERDICT_PREFIXES:
        assert verdict_of(Diagnostic("error", f"{prefix}: details", loc)) == label
    assert verdict_of(Diagnostic("error", "unrelated message", loc)) is None
