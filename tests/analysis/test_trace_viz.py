"""Trace visualisation annotations: cache keys, cut points, and
volatile-constant highlights driven by the static analyzer."""

import numpy as np

from repro.analysis.tracing import analyze_trace_program, cache_key
from repro.analysis.tracing.models import PROGRAMS
from repro.tensor import Tensor, lazy_device
from repro.viz import stability_timeline, trace_to_dot, trace_to_text


def _simple_roots():
    device = lazy_device()
    w = Tensor(np.ones(4, np.float32), device)
    out = w - w * 0.1
    return [out._impl]


def test_unannotated_rendering_is_unchanged():
    roots = _simple_roots()
    text = trace_to_text(roots)
    assert "cache key" not in text
    assert "cut point" not in text
    dot = trace_to_dot(roots)
    assert "label=\"cache key" not in dot
    assert "peripheries" not in dot


def test_annotated_text_carries_key_and_cut_points():
    roots = _simple_roots()
    text = trace_to_text(roots, annotate=True)
    assert text.startswith(f"# cache key {cache_key(roots)}")
    assert "cut point (materialized here)" in text
    # Exactly the root is marked as the cut point.
    assert text.count("cut point") == 1


def test_annotated_dot_marks_key_and_roots():
    roots = _simple_roots()
    dot = trace_to_dot(roots, annotate=True)
    assert f'label="cache key {cache_key(roots)}"' in dot
    assert "peripheries=2" in dot


def test_volatile_positions_highlight_the_constant():
    report = analyze_trace_program(PROGRAMS["lr_schedule_storm"])
    positions = [v.position for v in report.stability.volatile_constants]
    assert positions
    fragment = report.capture.fragments[1].fragment
    text = trace_to_text(fragment.roots, volatile_positions=positions)
    [marked] = [ln for ln in text.splitlines() if "step-volatile" in ln]
    assert "constant" in marked
    dot = trace_to_dot(fragment.roots, volatile_positions=positions)
    assert "#ffb3b3" in dot


def test_stability_timeline_shows_cuts_and_cache_outcomes():
    report = analyze_trace_program(PROGRAMS["sgd_scalar_clean"])
    timeline = stability_timeline(report.stability)
    lines = timeline.splitlines()
    assert lines[0].startswith("step 0:") and "(compile)" in lines[0]
    assert all("(cache hit)" in ln for ln in lines[1:])
    assert all("cut by barrier" in ln for ln in lines)


def test_stability_timeline_flags_storms():
    report = analyze_trace_program(PROGRAMS["lr_schedule_storm"])
    timeline = stability_timeline(report.stability)
    assert "step-volatile" in timeline
    assert "(cache hit)" not in timeline  # every step recompiles
