"""Per-pass invariant attribution: a seeded bug names the offending pass."""

import pytest

from repro.analysis import attribution
from repro.errors import HloError, VerificationError
from repro.hlo.ir import HloComputation, HloInstruction, HloModule, Shape
from repro.sil import ir
from repro.sil.passes import pipeline
from repro.sil.primitives import get_primitive


def _add_function():
    func = ir.Function("adder", ["x", "y"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    y = entry.add_arg(ir.FLOAT, "y")
    add = entry.append(ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x, y]))
    entry.append(ir.ReturnInst(add.result))
    return func


def _evil_sil_pass(func):
    # Duplicate the first instruction: a double definition.
    func.entry.instructions.insert(0, func.entry.instructions[0])
    return True


def test_sil_verify_each_names_offending_pass(monkeypatch):
    monkeypatch.setattr(pipeline, "_PASSES", (("evil", _evil_sil_pass),))
    with pytest.raises(VerificationError) as exc_info:
        pipeline.run_default_pipeline(
            _add_function(), inline=False, verify_each=True
        )
    exc = exc_info.value
    assert exc.offending_pass == "evil"
    message = str(exc)
    assert "pass 'evil' broke invariants of '@adder'" in message or (
        "pass 'evil' broke invariants" in message
    )
    assert "--- IR before evil ---" in message
    assert "--- IR after evil ---" in message
    assert "defined twice" in message


def test_sil_seeded_bug_not_caught_without_verify_each(monkeypatch):
    monkeypatch.setattr(pipeline, "_PASSES", (("evil", _evil_sil_pass),))
    # Without per-pass verification the final whole-pipeline verify still
    # fails, but nothing names the pass.
    with pytest.raises(VerificationError) as exc_info:
        pipeline.run_default_pipeline(
            _add_function(), inline=False, verify_each=False
        )
    assert exc_info.value.offending_pass is None


def test_sil_malformed_input_attributed_to_frontend():
    func = ir.Function("broken", ["x"])
    entry = func.new_block("entry")
    x = entry.add_arg(ir.FLOAT, "x")
    late = ir.ConstInst(1.0)
    early = ir.ApplyInst(ir.FunctionRef(get_primitive("add")), [x, late.result])
    entry.append(early)
    entry.append(late)
    entry.append(ir.ReturnInst(early.result))
    with pytest.raises(
        VerificationError, match="frontend/lowering bug, not a pass bug"
    ):
        pipeline.run_default_pipeline(func)
    # The failure is not attributed to any pass.
    try:
        pipeline.run_default_pipeline(func)
    except VerificationError as exc:
        assert exc.offending_pass is None


def _small_module():
    comp = HloComputation("entry")
    p0 = comp.add(
        HloInstruction("parameter", [], Shape((2,)), parameter_number=0)
    )
    p1 = comp.add(
        HloInstruction("parameter", [], Shape((2,)), parameter_number=1)
    )
    add = comp.add(HloInstruction("add", [p0, p1], Shape((2,))))
    comp.set_root(add)
    return HloModule("m", comp)


def _evil_hlo_pass(module):
    # Corrupt the recorded root shape: re-inference will disagree.
    module.entry.root.shape = Shape((99,))
    return True


def test_hlo_verify_each_names_offending_pass(monkeypatch):
    import repro.hlo.passes as hlo_passes
    from repro.hlo.passes import optimize

    monkeypatch.setattr(hlo_passes, "cse", _evil_hlo_pass)
    with pytest.raises(HloError) as exc_info:
        optimize(_small_module(), fuse=False, verify_each=True)
    exc = exc_info.value
    assert exc.offending_pass == "cse"
    message = str(exc)
    assert "pass 'cse' broke invariants" in message
    assert "--- IR before cse ---" in message
    assert "--- IR after cse ---" in message
    assert "does not match inferred shape" in message


def test_hlo_malformed_input_attributed_to_builder():
    from repro.hlo.passes import optimize

    module = _small_module()
    module.entry.root.shape = Shape((99,))  # malformed before any pass runs
    with pytest.raises(HloError) as exc_info:
        optimize(module, verify_each=True)
    assert "already malformed before optimization" in str(exc_info.value)
    assert exc_info.value.offending_pass is None


def test_global_verify_each_flag_drives_pipelines(monkeypatch):
    monkeypatch.setattr(pipeline, "_PASSES", (("evil", _evil_sil_pass),))
    assert not attribution.verify_each_enabled()
    with attribution.verify_each():
        assert attribution.verify_each_enabled()
        # An explicit per-call argument still wins over the global flag.
        assert attribution.verify_each_enabled(False) is False
        with pytest.raises(VerificationError) as exc_info:
            pipeline.run_default_pipeline(_add_function(), inline=False)
        assert exc_info.value.offending_pass == "evil"
    assert not attribution.verify_each_enabled()


def test_clean_pipelines_pass_under_verify_each():
    from repro.hlo.passes import optimize

    func = pipeline.run_default_pipeline(_add_function(), verify_each=True)
    assert func.name == "adder"
    optimize(_small_module(), verify_each=True)
