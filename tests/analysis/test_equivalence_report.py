"""The sweep-10 report layer: the clean corpus certifies with zero
diagnostics and a passing dynamic cross-check; the miscompile corpus is
caught with verdict-labelled, located diagnostics; rendering and the
verdict mapping follow the other analysis reports."""

import numpy as np
import pytest

from repro.analysis.equivalence import (
    CORPUS,
    analyze_equivalence_model,
)
from repro.analysis.equivalence.report import _bit_identical

CLEAN = [p for p in CORPUS if p.expect == "clean"]
MISCOMPILED = [p for p in CORPUS if p.expect != "clean"]


def test_corpus_covers_every_miscompile_class():
    assert {p.expect for p in MISCOMPILED} == {
        "wrong-broadcast",
        "stale-reuse",
        "dropped-convert",
        "reordered-op",
        "accum-elision",
    }
    assert len(CLEAN) >= 5


@pytest.mark.parametrize("program", CLEAN, ids=lambda p: p.name)
def test_clean_program_certifies_with_zero_false_positives(program):
    report = analyze_equivalence_model(program.name)
    assert report.verdicts() == {"clean"}
    assert report.cross_check_ok
    assert report.certified_fraction == 1.0
    assert not [d for d in report.diagnostics() if d.is_error]
    for check in report.checks:
        assert check.result.certified
        assert check.bit_identical is True  # interpreted ≡ codegen'd, bitwise
        assert check.result.checked_values >= 1


@pytest.mark.parametrize("program", MISCOMPILED, ids=lambda p: p.name)
def test_miscompiled_program_is_caught_and_located(program):
    report = analyze_equivalence_model(program.name)
    assert report.verdicts() == {program.expect}
    assert report.cross_check_ok
    caught = [
        c for c in report.checks if not c.result.certified and c.located
    ]
    assert caught, "no rejected check carries a source location"
    for check in report.checks:
        # The untransformed emission still certifies (baseline)...
        assert check.baseline is not None and check.baseline.certified
        # ...and the corrupted variant is stopped statically: it never runs.
        assert check.bit_identical is None
    labels = [d.message for c in caught for d in c.diagnostics if d.is_error]
    assert any(m.startswith(program.expect) for m in labels)


def test_report_renders_one_line_per_trace():
    report = analyze_equivalence_model(CLEAN[0].name)
    text = report.render()
    assert CLEAN[0].name in text
    assert len(report.checks) >= 1


def test_unknown_model_name_raises():
    with pytest.raises(KeyError):
        analyze_equivalence_model("no_such_program")


def test_bit_identical_requires_exact_dtype_shape_and_bytes():
    a = np.arange(4, dtype=np.float32)
    assert _bit_identical(a, a.copy())
    assert not _bit_identical(a, a.astype(np.float64))
    assert not _bit_identical(a, a.reshape(2, 2))
    assert not _bit_identical(a, a + 0.5)
    assert _bit_identical((a, a), (a.copy(), a.copy()))
    assert not _bit_identical((a, a), (a,))
