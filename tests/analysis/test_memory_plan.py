"""Buffer assignment, in-place donation, the independent plan validator,
peak certification, and remat fix-its — on hand-built HLO modules."""

import pytest

from repro.analysis.memory import analyze_liveness, certify, plan_buffers, validate_plan
from repro.analysis.memory.bufferplan import force_donation, force_shared_buffer
from repro.analysis.memory.remat import budget_diagnostics, remat_candidates
from repro.errors import SourceLocation
from repro.hlo.ir import HloComputation, HloInstruction, HloModule, Shape

LOC = SourceLocation("test_memory_plan.py", 1)


def _module(name, build):
    comp = HloComputation("entry")
    comp.set_root(build(comp))
    return HloModule(name, comp)


def _param(comp, number, dims):
    return comp.add(
        HloInstruction("parameter", [], Shape(dims), parameter_number=number)
    )


def _relu_chain_module():
    def build(comp):
        p = _param(comp, 0, (4, 4))
        a = comp.add(HloInstruction("add", [p, p], Shape((4, 4))))
        b = comp.add(HloInstruction("relu", [a], Shape((4, 4))))
        return comp.add(HloInstruction("relu", [b], Shape((4, 4))))

    return _module("relu_chain", build)


def _dot_chain_module():
    def build(comp):
        x = _param(comp, 0, (4, 4))
        w1 = _param(comp, 1, (4, 4))
        w2 = _param(comp, 2, (4, 4))
        w3 = _param(comp, 3, (4, 4))
        h1 = comp.add(HloInstruction("dot", [x, w1], Shape((4, 4))))
        h2 = comp.add(HloInstruction("dot", [h1, w2], Shape((4, 4))))
        return comp.add(HloInstruction("dot", [h2, w3], Shape((4, 4))))

    return _module("dot_chain", build)


def _held_activation_module():
    """h1 carried across two dots to a final elementwise combine."""

    def build(comp):
        x = _param(comp, 0, (4, 4))
        w1 = _param(comp, 1, (4, 4))
        w2 = _param(comp, 2, (4, 4))
        w3 = _param(comp, 3, (4, 4))
        h1 = comp.add(HloInstruction("dot", [x, w1], Shape((4, 4))))
        h2 = comp.add(HloInstruction("dot", [h1, w2], Shape((4, 4))))
        h3 = comp.add(HloInstruction("dot", [h2, w3], Shape((4, 4))))
        return comp.add(HloInstruction("multiply", [h1, h3], Shape((4, 4))))

    return _module("held", build)


def test_elementwise_chain_donates_in_place():
    live = analyze_liveness(_relu_chain_module())
    plan = plan_buffers(live)
    # Each consumer writes over its dying same-size operand: one buffer
    # serves all three planned values.
    assert len(plan.buffer_sizes) == 1
    assert plan.pool_bytes == 64
    assert plan.buffers_reused == 2
    assert len(plan.donations) == 2
    assert validate_plan(live, plan, LOC) == []
    cert = certify(live, plan)
    assert cert.reuse_factor == pytest.approx(192 / 64)


def test_dot_chain_reuses_freed_buffer_without_donation():
    live = analyze_liveness(_dot_chain_module())
    plan = plan_buffers(live)
    # dot is not donatable, but h1 dies before h3 is defined, so h3
    # takes h1's pool slot from the free list.
    assert plan.donations == {}
    assert len(plan.buffer_sizes) == 2
    assert plan.pool_bytes == 128
    assert plan.buffers_reused == 1
    assert validate_plan(live, plan, LOC) == []
    h1 = min(live.planned_values, key=lambda v: v.position).inst_id
    h3 = max(live.planned_values, key=lambda v: v.position).inst_id
    assert plan.buffer_of(h1) == plan.buffer_of(h3)


def test_validator_rejects_donation_into_dot():
    live = analyze_liveness(_dot_chain_module())
    plan = plan_buffers(live)
    planned = sorted(live.planned_values, key=lambda v: v.position)
    h1, h2 = planned[0], planned[1]
    force_donation(plan, h2.inst_id, h1.inst_id)
    diags = validate_plan(live, plan, LOC)
    messages = [d.message for d in diags if d.is_error]
    assert any(m.startswith("unsafe in-place") for m in messages)
    assert any("non-elementwise op" in m and "(dot)" in m for m in messages)
    assert all(d.location.line > 0 for d in diags)


def test_validator_rejects_donation_from_live_donor():
    live = analyze_liveness(_held_activation_module())
    plan = plan_buffers(live)
    planned = sorted(live.planned_values, key=lambda v: v.position)
    h1, h2 = planned[0], planned[1]
    # h1 is still read by the final multiply — donating it into h2 is a
    # use-after-overwrite even though h2 is h1's consumer.
    force_donation(plan, h2.inst_id, h1.inst_id)
    messages = [d.message for d in validate_plan(live, plan, LOC)]
    assert any("stays live until position" in m for m in messages)


def test_validator_rejects_plain_overlapping_reuse():
    live = analyze_liveness(_held_activation_module())
    plan = plan_buffers(live)
    planned = sorted(live.planned_values, key=lambda v: v.position)
    h1, h2 = planned[0], planned[1]
    # h1 and h2 are simultaneously live; forcing them into one buffer is
    # the plain (non-tuple, non-donation) reuse bug.
    force_shared_buffer(plan, h1.inst_id, h2.inst_id)
    messages = [d.message for d in validate_plan(live, plan, LOC) if d.is_error]
    assert any(m.startswith("unsafe buffer reuse") for m in messages)


def test_validator_classifies_tuple_aliasing_separately():
    def build(comp):
        p0 = _param(comp, 0, (4, 4))
        p1 = _param(comp, 1, (4, 4))
        u = comp.add(HloInstruction("dot", [p0, p1], Shape((4, 4))))
        w = comp.add(HloInstruction("relu", [u], Shape((4, 4))))
        v = comp.add(HloInstruction("dot", [w, p1], Shape((4, 4))))
        return comp.add(HloInstruction("tuple", [u, v], Shape((4, 4))))

    live = analyze_liveness(_module("tuple_out", build))
    plan = plan_buffers(live)
    u_id = next(
        v.inst_id
        for v in live.planned_values
        if v.opcode == "dot" and v.position == 2
    )
    v_id = next(
        v.inst_id
        for v in live.planned_values
        if v.opcode == "dot" and v.position != 2
    )
    force_shared_buffer(plan, u_id, v_id)
    messages = [d.message for d in validate_plan(live, plan, LOC) if d.is_error]
    assert any(m.startswith("tuple-aliasing") for m in messages)
    assert any("output tuple still aliases" in m for m in messages)


def test_certificate_timeline_and_peak():
    live = analyze_liveness(_held_activation_module())
    cert = certify(live, plan_buffers(live))
    # Positions: 4 params, then h1(4) h2(5) h3(6) multiply(7): h1 is
    # carried, so three 64 B values coexist at h3 and beyond.
    assert cert.certified_peak_bytes == 192
    assert cert.naive_bytes == 256
    assert cert.exact
    assert max(cert.timeline) == cert.timeline[cert.peak_position]
    assert cert.resident_bytes == 256  # four 4x4 f32 params


def test_remat_suggests_spilling_the_carried_dot():
    live = analyze_liveness(_held_activation_module())
    cert = certify(live, plan_buffers(live))
    candidates = remat_candidates(live, cert)
    assert [c.opcode for c in candidates] == ["dot"]
    assert candidates[0].kind == "spill"  # dot is too expensive to recompute

    diags, cands = budget_diagnostics(live, cert, budget_bytes=150, location=LOC)
    assert cands == candidates
    errors = [d for d in diags if d.is_error]
    assert len(errors) == 1
    assert errors[0].message.startswith("over budget")
    assert "exceeds the 150 B budget by 42 B" in errors[0].message
    fixits = [d for d in diags if not d.is_error]
    assert len(fixits) == 1
    assert "spill %" in fixits[0].message

    # Under budget: silence.
    assert budget_diagnostics(live, cert, budget_bytes=192, location=LOC) == ([], [])
    assert budget_diagnostics(live, cert, budget_bytes=None, location=LOC) == ([], [])
