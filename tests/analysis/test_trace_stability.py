"""The retrace-storm detector and the static-vs-dynamic cross-check over
the seeded corpus — every prediction exact, zero false positives."""

import numpy as np
import pytest

from repro.analysis.tracing import analyze_step_program, analyze_trace_program
from repro.analysis.tracing.models import CLEAN_PROGRAMS, HAZARD_PROGRAMS, PROGRAMS
from repro.tensor import LazyTensorBarrier, Tensor, lazy_device


@pytest.mark.parametrize("program", CLEAN_PROGRAMS, ids=lambda p: p.name)
def test_clean_corpus_zero_false_positives(program):
    report = analyze_trace_program(program)
    assert report.verdicts() == {"clean"}
    assert not any(d.is_error for d in report.diagnostics), [
        str(d) for d in report.diagnostics
    ]
    assert report.cross_check_ok
    assert report.stability.stable


@pytest.mark.parametrize("program", HAZARD_PROGRAMS, ids=lambda p: p.name)
def test_seeded_hazards_all_caught(program):
    report = analyze_trace_program(program)
    assert report.verdicts() == {program.expect}


@pytest.mark.parametrize("program", list(PROGRAMS.values()), ids=lambda p: p.name)
def test_static_cache_predictions_match_runtime_exactly(program):
    report = analyze_trace_program(program)
    assert report.predicted_compiles == report.dynamic_compiles
    assert report.predicted_cache_hits == report.dynamic_cache_hits
    assert (
        report.stability.predicted_unique_keys
        == report.capture.dynamic_new_cache_entries
    )
    assert report.cross_check_ok


def test_retrace_storm_fix_it_names_the_constant_and_its_values():
    report = analyze_trace_program(PROGRAMS["lr_schedule_storm"])
    [volatile] = report.stability.volatile_constants
    fix = volatile.fix_it()
    assert "promote" in fix and "trace input" in fix
    # The per-step schedule values 0.1/(1+step) for the stability window.
    assert "0.05" in fix
    assert len(volatile.values) >= 4
    assert len(set(volatile.values)) == len(volatile.values)  # all distinct


def test_storm_predicts_zero_hits_and_compile_per_step():
    report = analyze_trace_program(PROGRAMS["step_counter_storm"])
    assert report.predicted_cache_hits == 0
    assert report.predicted_compiles == PROGRAMS["step_counter_storm"].steps


def test_clean_loop_predicts_steps_2_to_n_all_hits():
    program = PROGRAMS["sgd_scalar_clean"]
    report = analyze_trace_program(program)
    assert report.predicted_compiles == 1
    assert report.predicted_cache_hits == program.steps - 1
    # Every fragment after the first is a predicted (and actual) hit.
    hits = [f.predicted_hit for f in report.stability.fragments]
    assert hits == [False] + [True] * (program.steps - 1)


def test_first_step_warmup_is_tolerated_with_a_note():
    """A real train_step loop materializes setup work (one-hot labels)
    into its first fragment; the detector must not flag the warm-up."""
    report = analyze_trace_program(PROGRAMS["mlp_train_clean"])
    assert report.verdicts() == {"clean"}
    notes = [d for d in report.stability.diagnostics if d.severity == "note"]
    assert notes and "first step" in notes[0].message
    assert report.stability.stable


def test_structural_instability_locates_the_divergence():
    report = analyze_trace_program(PROGRAMS["shape_drift"])
    assert report.stability.structurally_unstable_slots
    [diag] = [d for d in report.stability.diagnostics if d.is_error]
    assert "structure varies" in diag.message
    assert "diverge" in diag.message


def test_volatile_detection_ignores_step_stable_constants():
    """Constants that are identical every step are not storms."""
    device = lazy_device()
    state = {"w": Tensor(np.ones(4, np.float32), device)}

    def step_fn(step):
        state["w"] = state["w"] * 0.5 + 0.25  # two stable literals
        LazyTensorBarrier(device)

    report = analyze_step_program(step_fn, 5, device, name="stable_consts")
    assert report.verdicts() == {"clean"}
    assert not report.stability.volatile_constants
    assert report.cross_check_ok


def test_mixed_stable_and_volatile_constants_attributed_precisely():
    device = lazy_device()
    state = {"w": Tensor(np.ones(4, np.float32), device)}

    def step_fn(step):
        # 0.5 is step-stable; the step counter is volatile.
        state["w"] = state["w"] * 0.5 + float(step)
        LazyTensorBarrier(device)

    report = analyze_step_program(step_fn, 5, device, name="mixed_consts")
    assert report.verdicts() == {"volatile-constant"}
    positions = {v.position for v in report.stability.volatile_constants}
    assert len(positions) == 1  # only the counter site, not 0.5's site
    values = report.stability.volatile_constants[0].values
    assert values == tuple(float(s) for s in range(1, 5))


def test_report_render_mentions_the_cross_check():
    report = analyze_trace_program(PROGRAMS["affine_train_clean"])
    text = report.render()
    assert "static prediction vs dynamic runtime: MATCH" in text
    assert "verdicts:" in text and "clean" in text


def test_capture_requires_a_lazy_device():
    from repro.tensor import eager_device

    with pytest.raises(ValueError, match="lazy device"):
        analyze_step_program(lambda step: None, 2, eager_device())
