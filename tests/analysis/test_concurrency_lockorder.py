"""Lock-order graph: cycles, leaves, and the static/dynamic cross-check."""

from repro.analysis.concurrency.lockorder import (
    build_lock_order,
    check_static_covers_dynamic,
)
from repro.analysis.concurrency.lockset import LocksetReport, StaticEdge
from repro.errors import SourceLocation


def _report(edges):
    report = LocksetReport(target="test")
    report.static_edges = [
        StaticEdge(a, b, "test.fn", SourceLocation("<test>", i + 1, 0))
        for i, (a, b) in enumerate(edges)
    ]
    return report


def test_acyclic_graph_is_clean():
    order = build_lock_order(_report([("a", "b"), ("b", "c"), ("a", "c")]))
    assert order.acyclic
    assert order.cross_check_ok
    assert not any(d.is_error for d in order.diagnostics)


def test_two_lock_cycle_is_a_potential_deadlock():
    order = build_lock_order(_report([("a", "b"), ("b", "a")]))
    assert not order.acyclic
    assert order.cycles == [("a", "b")]
    diag = next(d for d in order.diagnostics if "deadlock" in d.message)
    assert "a -> b -> a" in diag.message
    # The diagnostic names the code location of each static edge.
    assert "<test>:1" in diag.message
    assert "<test>:2" in diag.message


def test_three_lock_cycle_detected():
    order = build_lock_order(_report([("a", "b"), ("b", "c"), ("c", "a")]))
    assert order.cycles == [("a", "b", "c")]


def test_dynamic_edge_matching_static_is_predicted():
    order = build_lock_order(
        _report([("a", "b")]), dynamic_edges=frozenset({("a", "b")})
    )
    assert order.cross_check_ok
    assert order.unpredicted_dynamic == []


def test_unpredicted_dynamic_edge_fails_cross_check():
    order = build_lock_order(
        _report([("a", "b")]), dynamic_edges=frozenset({("b", "c")})
    )
    assert not order.cross_check_ok
    assert order.unpredicted_dynamic == [("b", "c")]
    diag = next(d for d in order.diagnostics if "never predicted" in d.message)
    assert "b -> c" in diag.message


def test_dynamic_edge_into_leaf_is_exempt():
    # Finalizers can acquire runtime.memory under any lock: that dynamic
    # edge needs no static prediction.
    order = build_lock_order(
        _report([]),
        dynamic_edges=frozenset({("core.plan_cache", "runtime.memory")}),
    )
    assert order.cross_check_ok


def test_leaf_with_outgoing_edge_is_an_error():
    # The leaf exemption is only sound if leaves are sinks.
    order = build_lock_order(_report([("runtime.memory", "x")]))
    diag = next(d for d in order.diagnostics if "leaf lock" in d.message)
    assert "runtime.memory" in diag.message


def test_dynamic_cycle_still_detected_through_leaf_exemption():
    # Even exempt-from-prediction edges participate in cycle detection.
    order = build_lock_order(
        _report([("x", "runtime.memory")]),
        dynamic_edges=frozenset({("runtime.memory", "x")}),
    )
    assert not order.acyclic


def test_check_static_covers_dynamic_helper():
    static = frozenset({("a", "b")})
    ok, missing = check_static_covers_dynamic(static, frozenset({("a", "b")}))
    assert ok and missing == []
    ok, missing = check_static_covers_dynamic(static, frozenset({("b", "a")}))
    assert not ok and missing == [("b", "a")]
    ok, _ = check_static_covers_dynamic(
        static, frozenset({("a", "runtime.memory")})
    )
    assert ok


def test_render_shows_edge_provenance():
    order = build_lock_order(
        _report([("a", "b")]), dynamic_edges=frozenset({("a", "b")})
    )
    text = order.render()
    assert "a -> b  [static+dynamic]" in text
