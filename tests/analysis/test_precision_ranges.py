"""Range propagation over HLO schedules: exact vs certified intervals,
narrow-accumulator error bounds, and poison attribution."""

import math

import numpy as np

from repro.analysis.precision.intervals import Interval
from repro.analysis.precision.ranges import (
    accumulation_error_bound,
    accumulation_relative_bound,
    analyze_ranges,
    reduced_element_count,
)
from repro.hlo import HloBuilder
from repro.hlo.ir import F16, F32, Shape


def test_parameter_and_elementwise_ranges():
    b = HloBuilder("affine")
    x = b.parameter(Shape((4,), F32), number=0)
    w = b.parameter(Shape((4,), F32), number=1)
    y = b.binary("add", b.binary("multiply", x, w), x)
    module = b.build(y)
    info = analyze_ranges(
        module,
        {0: Interval.make(-1.0, 1.0), 1: Interval.make(0.0, 2.0)},
    )
    exact = info.exact[y.id]
    # x*w ∈ [-2, 2], plus x ∈ [-1, 1] -> [-3, 3].
    assert exact.contains(-3.0) and exact.contains(3.0)
    assert not exact.contains(3.5)
    # Certified = exact rounded into f32: barely wider, same coverage.
    assert info.intervals[y.id].contains_interval(exact)


def test_missing_parameter_interval_is_top():
    b = HloBuilder("unknown")
    x = b.parameter(Shape((4,), F32))
    module = b.build(b.unary("negate", x))
    info = analyze_ranges(module, {})
    assert info.exact[x.id].poisoned


def test_exp_overflow_saturates_certified_interval():
    b = HloBuilder("overflow")
    x = b.parameter(Shape((4,), F16))
    e = b.unary("exponential", x)  # f16: exp(12) = 162k > 65504
    y = b.binary("add", e, e)
    module = b.build(y)
    info = analyze_ranges(module, {0: Interval.make(0.0, 12.0)})
    # The exp's exact image is finite (the hazard is *attributed* here)...
    assert not info.exact[e.id].poisoned
    assert info.exact[e.id].max_abs > 65504.0
    # ...but its certified f16 interval saturates to +inf — still sound
    # (it covers the hardware's inf), and still a usable bound, so the
    # consumer is *not* written off as poisoned.
    assert info.intervals[e.id].hi == math.inf
    assert not info.intervals[e.id].poisoned
    assert e.id not in info.poisoned_inputs
    assert y.id not in info.poisoned_inputs
    assert info.exact[y.id].hi == math.inf


def test_true_poison_suppresses_downstream():
    b = HloBuilder("poisoned")
    x = b.parameter(Shape((4,), F16))
    d = b.binary("divide", x, x)  # divisor straddles zero: TOP
    y = b.binary("add", d, d)
    module = b.build(y)
    info = analyze_ranges(module, {0: Interval.make(-1.0, 1.0)})
    assert info.intervals[d.id].poisoned
    assert d.id not in info.poisoned_inputs  # reported at its origin
    assert y.id in info.poisoned_inputs  # suppressed downstream


def test_certified_reduce_keeps_sign_for_same_sign_summands():
    b = HloBuilder("normalizer")
    x = b.parameter(Shape((64,), F16))
    s = b.reduce(x, "sum", axes=(0,))
    module = b.build(s)
    info = analyze_ranges(module, {0: Interval.make(1.0, 2.0)})
    cert = info.intervals[s.id]
    # All-positive summands can't cancel: the narrow-accumulator error is
    # *relative*, so a modest sum stays certified strictly positive —
    # this is what keeps softmax normalizer divisions away from zero.
    assert cert.lo > 0.0
    assert cert.contains(64.0) and cert.contains(128.0)
    # The bound is real: it is wider than the exact interval.
    assert cert.lo < info.exact[s.id].lo


def test_certified_reduce_covers_flatlined_serial_sum():
    from repro.hlo.compiler import evaluate_instruction

    b = HloBuilder("flatline")
    x = b.parameter(Shape((4096,), F16))
    s = b.reduce(x, "sum", axes=(0,))
    module = b.build(s)
    info = analyze_ranges(module, {0: Interval.make(1.0, 1.0)})
    cert = info.intervals[s.id]
    [reduce] = [i for i in module.schedule() if i.opcode == "reduce"]
    drifted = float(evaluate_instruction(reduce, [np.ones(4096, np.float16)]))
    # The serial f16 sum flatlines at 2048 — far from the exact 4096 —
    # and the certified interval must still cover it.
    assert drifted == 2048.0
    assert cert.contains(drifted) and cert.contains(4096.0)


def test_certified_reduce_mixed_sign_uses_absolute_bound():
    b = HloBuilder("cancelling")
    x = b.parameter(Shape((2048,), F16))
    s = b.reduce(x, "sum", axes=(0,))
    module = b.build(s)
    info = analyze_ranges(module, {0: Interval.make(-1.0, 1.0)})
    cert = info.intervals[s.id]
    assert cert.contains(0.0)
    assert cert.lo < -2048.0 * 0.0  # widened below the exact lo
    assert cert.contains_interval(Interval(-2048.0, 2048.0))


def test_f32_accum_attribute_suppresses_drift_bound():
    def certified_width(accum):
        b = HloBuilder("w")
        x = b.parameter(Shape((2048,), F16))
        s = b.reduce(x, "sum", axes=(0,), accum=accum)
        info = analyze_ranges(b.build(s), {0: Interval.make(1.0, 2.0)})
        cert = info.intervals[s.id]
        return cert.hi - cert.lo

    assert certified_width("f32") < certified_width(None)


def test_accumulation_bounds():
    assert accumulation_relative_bound("f16", 0) == 0.0
    assert accumulation_relative_bound("f16", 1024) < accumulation_relative_bound(
        "f16", 8192
    )
    assert accumulation_error_bound("f16", 100, math.inf) == math.inf
    assert accumulation_error_bound("f16", 100, 10.0) == (
        accumulation_relative_bound("f16", 100) * 10.0
    )


def test_reduced_element_count():
    b = HloBuilder("counts")
    x = b.parameter(Shape((8, 16), F32))
    all_axes = b.reduce(x, "sum", axes=None)
    module = b.build(all_axes)
    [reduce] = [i for i in module.schedule() if i.opcode == "reduce"]
    assert reduced_element_count(reduce) == 128

    b = HloBuilder("one_axis")
    x = b.parameter(Shape((8, 16), F32))
    module = b.build(b.reduce(x, "sum", axes=(1,), keepdims=True))
    [reduce] = [i for i in module.schedule() if i.opcode == "reduce"]
    assert reduced_element_count(reduce) == 16


def test_dot_contraction_scales_by_inner_dim():
    b = HloBuilder("dot")
    a = b.parameter(Shape((2, 64), F32), number=0)
    w = b.parameter(Shape((64, 3), F32), number=1)
    d = b.dot(a, w)
    info = analyze_ranges(
        b.build(d),
        {0: Interval.make(-1.0, 1.0), 1: Interval.make(-1.0, 1.0)},
    )
    exact = info.exact[d.id]
    assert exact.contains(64.0) and exact.contains(-64.0)
    assert not exact.contains(100.0)


def test_oracle_containment_on_executed_module():
    """The certified intervals must cover a real narrowed execution."""
    from repro.analysis.precision.oracle import run_observed

    b = HloBuilder("end_to_end")
    x = b.parameter(Shape((8,), F16))
    y = b.binary("multiply", b.unary("tanh", x), x)
    module = b.build(y)
    rng = np.random.default_rng(3)
    arg = rng.uniform(-2.0, 2.0, size=8).astype(np.float16)
    info = analyze_ranges(module, {0: Interval.of_array(arg)})
    run = run_observed(module, [arg])
    for inst in module.schedule():
        stats = run.observed.get(inst.id)
        if stats is None:
            continue
        cert = info.intervals[inst.id]
        assert cert.contains(stats.lo) and cert.contains(stats.hi), inst.name
