"""Liveness analysis over hand-built HLO modules: value categories,
alias-extended storage intervals, timelines, and the straight-line
(exactness) predicate."""

from repro.analysis.memory import analyze_liveness
from repro.analysis.memory.liveness import ALIAS, COMPUTE, MAY_ALIAS, RESIDENT
from repro.hlo.ir import PRED, HloComputation, HloInstruction, HloModule, Shape


def _module(name, build):
    comp = HloComputation("entry")
    root = build(comp)
    comp.set_root(root)
    return HloModule(name, comp)


def _param(comp, number, dims, dtype="f32"):
    return comp.add(
        HloInstruction(
            "parameter", [], Shape(dims, dtype), parameter_number=number
        )
    )


def test_chain_categories_intervals_and_timeline():
    def build(comp):
        p0 = _param(comp, 0, (4, 4))
        p1 = _param(comp, 1, (4, 4))
        d = comp.add(HloInstruction("dot", [p0, p1], Shape((4, 4))))
        return comp.add(HloInstruction("relu", [d], Shape((4, 4))))

    live = analyze_liveness(_module("chain", build))
    by_op = {v.opcode: v for v in live.values.values()}
    assert by_op["parameter"].category == RESIDENT
    assert by_op["dot"].category == COMPUTE
    assert by_op["relu"].category == COMPUTE
    # Two 4x4 f32 params are resident; two planned values of 64 B each.
    assert live.resident_bytes == 128
    assert live.naive_bytes == 128
    # dot defined at position 2, last used by relu at 3; relu is the root
    # so its storage survives to the end.
    assert live.intervals[by_op["dot"].inst_id] == (2, 3)
    assert live.intervals[by_op["relu"].inst_id] == (3, 3)
    # Timeline: nothing live over the params, dot's buffer, dot+relu at
    # the relu (operand and result coexist), then the materialization
    # entry (dot is freed only after the store, so both count).
    assert live.timeline() == [0, 0, 64, 128, 128]
    assert live.straight_line
    assert live.output_conversion_bytes == 0


def test_broadcast_alias_extends_storage_interval():
    def build(comp):
        q = _param(comp, 0, (4, 4))
        p = _param(comp, 1, (4,))
        x = comp.add(HloInstruction("add", [p, p], Shape((4,))))
        b = comp.add(
            HloInstruction("broadcast", [x], Shape((4, 4)))
        )
        return comp.add(HloInstruction("add", [q, b], Shape((4, 4))))

    live = analyze_liveness(_module("bcast", build))
    x_info = next(v for v in live.values.values() if v.position == 2)
    b_info = next(v for v in live.values.values() if v.opcode == "broadcast")
    assert x_info.category == COMPUTE
    assert b_info.category == ALIAS
    assert b_info.nbytes == 0
    assert b_info.storage_roots == (x_info.inst_id,)
    # x is directly read for the last time by the broadcast (position 3),
    # but the broadcast's *view* of x is read by the final add (position
    # 4): the true storage interval must cover the view's use.
    assert live.direct_intervals[x_info.inst_id] == (2, 3)
    assert live.intervals[x_info.inst_id] == (2, 4)


def test_tuple_root_pins_element_storage_to_end():
    def build(comp):
        p0 = _param(comp, 0, (4, 4))
        p1 = _param(comp, 1, (4, 4))
        u = comp.add(HloInstruction("dot", [p0, p1], Shape((4, 4))))
        w = comp.add(HloInstruction("relu", [u], Shape((4, 4))))
        return comp.add(HloInstruction("tuple", [u, w], Shape((4, 4))))

    live = analyze_liveness(_module("diamond", build))
    u_id = next(v.inst_id for v in live.values.values() if v.opcode == "dot")
    tup = next(v for v in live.values.values() if v.opcode == "tuple")
    last = len(live.schedule) - 1
    assert tup.category == ALIAS
    # The tuple aliases *both* operands' storage...
    assert set(tup.storage_roots) == set(live.intervals)
    # ...so the early element stays live through the whole schedule.
    assert live.intervals[u_id] == (2, last)
    assert live.straight_line


def test_reshape_is_may_alias_and_breaks_exactness():
    def build(comp):
        p0 = _param(comp, 0, (4, 4))
        p1 = _param(comp, 1, (2, 4))
        x = comp.add(HloInstruction("add", [p0, p0], Shape((4, 4))))
        r = comp.add(HloInstruction("reshape", [x], Shape((8, 2))))
        return comp.add(HloInstruction("dot", [r, p1], Shape((8, 4))))

    live = analyze_liveness(_module("reshape", build))
    r_info = next(v for v in live.values.values() if v.opcode == "reshape")
    x_info = next(v for v in live.values.values() if v.opcode == "add")
    assert r_info.category == MAY_ALIAS
    # Sound both ways: the reshape reserves its own (possible-copy) bytes
    # AND extends the operand's storage (possible-view case).
    assert r_info.nbytes == 64
    assert r_info.planned
    assert set(r_info.storage_roots) == {r_info.inst_id, x_info.inst_id}
    # The dot reads the reshape (a possible view of x) at the last
    # position, so x's storage must live through it.
    assert live.intervals[x_info.inst_id][1] == len(live.schedule) - 1
    assert not live.straight_line


def test_pred_output_costs_a_conversion_copy():
    def build(comp):
        p0 = _param(comp, 0, (8,))
        p1 = _param(comp, 1, (8,))
        return comp.add(
            HloInstruction(
                "compare", [p0, p1], Shape((8,), PRED), attrs={"direction": "GT"}
            )
        )

    live = analyze_liveness(_module("pred", build))
    cmp_info = next(v for v in live.values.values() if v.opcode == "compare")
    # Predicate buffers are byte masks (1 B/elem)...
    assert cmp_info.nbytes == 8
    # ...but materialization converts the root to f32 while the mask is
    # still live, and predicates break exactness.
    assert live.output_conversion_bytes == 32
    assert not live.straight_line
    assert live.timeline()[-1] == 8 + 32


def test_scalar_reduction_breaks_exactness():
    def build(comp):
        p0 = _param(comp, 0, (8,))
        return comp.add(
            HloInstruction("reduce", [p0], Shape(()), attrs={"kind": "sum"})
        )

    live = analyze_liveness(_module("scalar", build))
    # Full reductions return untracked NumPy scalars at run time, so the
    # static model is an upper bound, not an equality.
    assert not live.straight_line
    assert live.naive_bytes == 4
