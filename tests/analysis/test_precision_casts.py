"""The autocast planner: naive vs AMP-style assignments and the verified
module rewrite."""

import numpy as np
import pytest

from repro.analysis.precision.casts import (
    WIDE_OPS,
    apply_plan,
    naive_assignment,
    plan_casts,
)
from repro.analysis.precision.intervals import Interval
from repro.analysis.precision.ranges import analyze_ranges
from repro.errors import HloError
from repro.hlo import HloBuilder
from repro.hlo.ir import BF16, F16, F32, Shape
from repro.hlo.passes import optimize


def _mlp_module():
    b = HloBuilder("mlp")
    x = b.parameter(Shape((2, 8), F32), number=0)
    w = b.parameter(Shape((8, 4), F32), number=1)
    h = b.unary("relu", b.dot(x, w))
    e = b.unary("exponential", h)
    s = b.reduce(e, "sum", axes=(1,), keepdims=True)
    return b.build(b.binary("divide", e, b.broadcast(s, (2, 4))))


def _params():
    return {0: Interval.make(-1.0, 1.0), 1: Interval.make(-0.2, 0.2)}


def test_naive_assignment_narrows_every_compute_op():
    module = _mlp_module()
    plan = naive_assignment(module, F16)
    assert plan.policy == F16
    narrowed_ops = {
        inst.opcode for inst in module.schedule() if inst.id in plan.compute
    }
    # Transcendentals and divides go narrow too — that is the point.
    assert "exponential" in narrowed_ops and "divide" in narrowed_ops
    skipped = {
        inst.opcode
        for inst in module.schedule()
        if inst.id not in plan.compute
    }
    assert skipped <= {"parameter", "constant", "tuple"}
    assert plan.narrowed_count == len(plan.compute)
    assert not plan.reverted and not plan.accum_f32


def test_policy_must_be_narrow():
    module = _mlp_module()
    with pytest.raises(HloError, match="precision policy"):
        naive_assignment(module, F32)
    with pytest.raises(HloError, match="precision policy"):
        plan_casts(module, "f64", analyze_ranges(module, _params()))


def test_plan_casts_keeps_wide_ops_wide():
    module = _mlp_module()
    plan = plan_casts(module, F16, analyze_ranges(module, _params()))
    by_id = {inst.id: inst for inst in module.schedule()}
    for inst_id, why in plan.reverted.items():
        if by_id[inst_id].opcode in WIDE_OPS:
            assert why == "wide-op"
    reverted_ops = {by_id[i].opcode for i in plan.reverted}
    assert "exponential" in reverted_ops and "divide" in reverted_ops
    # dot/relu are range-tolerant here: they narrow.
    narrowed_ops = {by_id[i].opcode for i in plan.compute}
    assert "dot" in narrowed_ops and "relu" in narrowed_ops
    assert "kept wide" in plan.summary()


def test_plan_casts_reverts_range_overflow():
    b = HloBuilder("big")
    x = b.parameter(Shape((4,), F32))
    big = b.binary("multiply", x, x)  # up to 1e10 >> f16 max
    module = b.build(big)
    plan = plan_casts(
        module, F16, analyze_ranges(module, {0: Interval.make(0.0, 1e5)})
    )
    assert plan.reverted[big.id] == "range-overflow"
    assert big.id not in plan.compute


def test_plan_casts_reverts_range_underflow():
    b = HloBuilder("tiny")
    x = b.parameter(Shape((4,), F32))
    tiny = b.binary("multiply", x, x)  # at most 4e-16 << f16 subnormals
    module = b.build(tiny)
    plan = plan_casts(
        module, F16, analyze_ranges(module, {0: Interval.make(1e-8, 2e-8)})
    )
    assert plan.reverted[tiny.id] == "range-underflow"


def test_plan_casts_reverts_unknown_ranges():
    b = HloBuilder("unknown")
    x = b.parameter(Shape((4,), F32))
    y = b.unary("negate", x)
    module = b.build(y)
    plan = plan_casts(module, F16, analyze_ranges(module, {}))  # params TOP
    assert plan.reverted[y.id] == "range-unknown"


def test_plan_casts_assigns_f32_accumulators():
    b = HloBuilder("reduce")
    x = b.parameter(Shape((8, 512), F32))
    s = b.reduce(x, "sum", axes=(1,))
    module = b.build(s)
    plan = plan_casts(
        module, F16, analyze_ranges(module, {0: Interval.make(0.0, 1.0)})
    )
    assert s.id in plan.compute
    assert s.id in plan.accum_f32


def test_apply_plan_rewrites_and_verifies():
    module = _mlp_module()
    plan = plan_casts(module, F16, analyze_ranges(module, _params()))
    rewritten = apply_plan(module, plan)  # verify_module runs inside
    # The rewritten module is a drop-in replacement: same parameter
    # shapes, same root dtype.
    assert rewritten.entry.root.shape.dtype == module.entry.root.shape.dtype
    params = [i for i in rewritten.schedule() if i.opcode == "parameter"]
    assert all(p.shape.dtype == F32 for p in params)
    # Narrowing happened, and only through explicit converts.
    assert any(i.shape.dtype == F16 for i in rewritten.schedule())
    converts = [i for i in rewritten.schedule() if i.opcode == "convert"]
    assert converts
    # Reverted wide ops' narrow operands convert *up* to f32.
    for inst in rewritten.schedule():
        if inst.opcode in ("parameter", "constant", "convert", "tuple"):
            continue
        for op in inst.operands:
            if op.shape.dtype != inst.shape.dtype:
                assert inst.shape.dtype == "pred"


def test_apply_plan_sets_accum_attr():
    b = HloBuilder("reduce")
    x = b.parameter(Shape((8, 512), F32))
    module = b.build(b.reduce(x, "sum", axes=(1,)))
    plan = plan_casts(
        module, F16, analyze_ranges(module, {0: Interval.make(0.0, 1.0)})
    )
    rewritten = apply_plan(module, plan)
    [reduce] = [i for i in rewritten.schedule() if i.opcode == "reduce"]
    assert reduce.shape.dtype == F16
    assert reduce.attrs["accum"] == "f32"


def test_apply_plan_preserves_semantics_on_benign_input():
    module = _mlp_module()
    plan = plan_casts(module, F16, analyze_ranges(module, _params()))
    rewritten = apply_plan(module, plan)
    from repro.hlo.compiler import Executable

    rng = np.random.default_rng(11)
    args = [
        rng.uniform(-1.0, 1.0, (2, 8)).astype(np.float32),
        rng.uniform(-0.2, 0.2, (8, 4)).astype(np.float32),
    ]
    ref = Executable(module).run(args)
    out = Executable(rewritten).run(args)
    assert out.dtype == ref.dtype
    assert np.allclose(out, ref, rtol=2e-2, atol=2e-3)


def test_apply_plan_rejects_fused_modules():
    module = _mlp_module()
    plan = naive_assignment(module, BF16)
    optimize(module, fuse=True)
    with pytest.raises(HloError, match="unfused"):
        apply_plan(module, plan)
