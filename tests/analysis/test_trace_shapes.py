"""Pre-lowering shape/dtype inference over TraceNode DAGs: malformed
traces are rejected with located diagnostics before HLO ever sees them."""

import numpy as np
import pytest

from repro.analysis.tracing import check_trace, infer_trace_shapes
from repro.analysis.tracing.models import (
    MALFORMED_TRACES,
    wellformed_trace,
)
from repro.errors import TraceError
from repro.tensor import Tensor, lazy_device
from repro.tensor.lazy_backend import TraceNode


def test_wellformed_trace_is_clean():
    assert infer_trace_shapes(wellformed_trace()) == []
    check_trace(wellformed_trace())  # must not raise


@pytest.mark.parametrize(
    "name, builder, needle", MALFORMED_TRACES, ids=[m[0] for m in MALFORMED_TRACES]
)
def test_malformed_traces_rejected_before_lowering(name, builder, needle):
    diagnostics = infer_trace_shapes(builder())
    errors = [d for d in diagnostics if d.is_error]
    assert errors, f"{name}: expected a diagnostic"
    assert needle in errors[0].message
    # Located: the diagnostic points into the canonical trace by position.
    assert errors[0].location is not None
    assert errors[0].location.filename == "<trace>"


@pytest.mark.parametrize(
    "name, builder, needle", MALFORMED_TRACES, ids=[m[0] for m in MALFORMED_TRACES]
)
def test_check_trace_raises_trace_error(name, builder, needle):
    with pytest.raises(TraceError) as excinfo:
        check_trace(builder())
    assert needle in str(excinfo.value)
    assert excinfo.value.diagnostics


def test_diagnostic_anchors_name_the_offending_op():
    from repro.analysis.tracing.models import malformed_matmul_trace

    [diag] = [d for d in infer_trace_shapes(malformed_matmul_trace()) if d.is_error]
    assert "matmul" in diag.message


def test_misdeclared_shape_reports_both_shapes():
    from repro.analysis.tracing.models import misdeclared_shape_trace

    [diag] = [d for d in infer_trace_shapes(misdeclared_shape_trace()) if d.is_error]
    assert "(2, 4)" in diag.message and "(2, 3)" in diag.message


def test_no_cascade_after_first_failure():
    """Downstream ops of a failed node trust its declared shape instead of
    re-reporting — one defect, one diagnostic."""
    a = TraceNode("source", [], (2, 3), data=np.zeros((2, 3), np.float32))
    b = TraceNode("source", [], (5, 4), data=np.zeros((5, 4), np.float32))
    mm = TraceNode("matmul", [a, b], (2, 4))
    downstream = TraceNode("relu", [mm], (2, 4))
    diagnostics = infer_trace_shapes([downstream])
    assert len([d for d in diagnostics if d.is_error]) == 1


def test_live_traces_from_real_programs_shape_check():
    device = lazy_device()
    x = Tensor(np.ones((4, 6), np.float32), device)
    w = Tensor(np.ones((6, 3), np.float32), device)
    out = ((x @ w).relu()).sum()
    assert infer_trace_shapes([out._impl]) == []


def test_compare_and_select_infer_pred_dtype():
    device = lazy_device()
    x = Tensor(np.ones(8, np.float32), device)
    mask = x > 0.0
    out = mask.select(x, x * 0.0)
    assert mask._impl.dtype == "pred"
    assert infer_trace_shapes([mask._impl]) == []
    assert infer_trace_shapes([out._impl]) == []


def test_lenet_forward_trace_shape_checks():
    from repro.nn import LeNet
    from repro.runtime.costmodel import S4TF_LAZY, TPU_V3_CORE
    from repro.tensor import Device
    from repro.viz import capture_forward_trace

    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = LeNet.create(device, seed=0)
    x = Tensor(np.zeros((2, 28, 28, 1), np.float32), device)
    root = capture_forward_trace(model, x)
    assert infer_trace_shapes([root]) == []
