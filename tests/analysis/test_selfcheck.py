"""The analysis self-check sweeps and the ``python -m repro.analysis`` CLI."""

from repro.analysis.__main__ import main
from repro.analysis.selfcheck import SelfCheckReport, self_check


def test_self_check_passes_and_covers_all_layers():
    report = self_check()
    assert report.ok, report.summary()
    # Primitive sweep: scalar + math + structural + tensor registries.
    assert report.primitives_checked >= 50
    assert report.vjp_plans_verified >= 40
    assert report.jvp_plans_verified >= 30
    assert report.nondifferentiable_rejected >= 1
    # HLO sweep: the LeNet trace module, before and after optimization.
    assert report.hlo_modules_verified == 2
    assert report.hlo_instructions_verified > 0
    # Pipeline sweep: the representative functions all went through.
    assert report.functions_pipelined == 3
    # Ownership sweep: every primitive wrapper + the model corpus, with
    # every seeded violation caught at its expected severity.
    assert report.ownership_functions_checked >= 50
    assert report.exclusivity_violations_caught == 4
    assert report.mutation_sites_labeled > 0
    # Tracing sweep: the whole corpus, with every hazard caught, every
    # cache prediction exact, and canonical keys agreeing with real HLO
    # fingerprints on every fragment pair.
    assert report.trace_programs_checked == 9
    assert report.trace_hazards_caught == 5
    assert report.trace_predictions_matched == 9
    assert report.trace_fragments_cross_validated >= 50
    assert report.malformed_traces_rejected == 4
    # Derivative sweep: every registered pullback checked, a solid core of
    # them proven linear with transpose-consistent JVP/VJP pairs, the model
    # corpus at its expected verdicts with every hazard caught, and the
    # dead-capture models yielding real pruning savings.
    assert report.derivative_rules_checked >= 40
    assert report.pullbacks_proven_linear >= 25
    assert report.transpose_pairs_consistent >= 25
    assert report.derivative_models_checked == 12
    assert report.derivative_hazards_caught == 6
    assert report.pullback_captures_pruned == 7
    # Concurrency sweep: the whole shared-state surface of the parallel
    # engine accounted for, every guarded access proven locked, the
    # corpus at its expected verdicts with every hazard caught, the
    # dynamic-witness edges predicted, and every merge verified.
    assert report.shared_fields_inventoried >= 40
    assert report.guarded_accesses_proven >= 70
    assert report.lock_edges_cross_checked >= 3
    assert report.concurrency_models_checked == 9
    assert report.concurrency_hazards_caught == 6
    assert report.merges_verified == 5
    # Memory sweep: the whole planning corpus certified, every seeded
    # hazard (over-budget, unsafe in-place, tuple aliasing) caught with
    # located diagnostics, every certified peak >= the dynamically
    # observed one, exact on every straight-line trace, with real reuse.
    assert report.memory_programs_checked == 9
    assert report.memory_hazards_caught == 3
    assert report.peak_bounds_certified == 9
    assert report.exact_peak_matches == 7
    assert report.buffers_reused > 0
    assert "all checks passed" in report.summary()


def test_report_failure_rendering():
    report = SelfCheckReport(failures=["primitive 'x': wrapper rejected: boom"])
    assert not report.ok
    summary = report.summary()
    assert "FAILURES (1):" in summary
    assert "wrapper rejected: boom" in summary


def test_cli_self_check_exits_zero(capsys):
    assert main(["--self-check", "-q"]) == 0
    # Quiet mode on success prints nothing.
    assert capsys.readouterr().out == ""


def test_cli_without_flags_prints_help(capsys):
    assert main([]) == 2
    assert "self-check" in capsys.readouterr().out


def test_cli_trace_single_program(capsys):
    assert main(["--trace", "lr_schedule_storm"]) == 0
    out = capsys.readouterr().out
    assert "retrace storm" in out
    assert "static prediction vs dynamic runtime: MATCH" in out
    assert "volatile-constant (as predicted)" in out


def test_cli_trace_all_quiet(capsys):
    assert main(["--trace", "all", "-q"]) == 0
    out = capsys.readouterr().out
    assert "9 program(s) analyzed, 0 failure(s)" in out


def test_cli_trace_unknown_program():
    import pytest

    with pytest.raises(SystemExit, match="unknown trace program"):
        main(["--trace", "nonesuch"])
