"""The trace canonicalizer: the static cache key must predict the
dynamic HLO fingerprint exactly — equality both ways."""

import numpy as np
import pytest

from repro.analysis.tracing import (
    cache_key,
    canonicalize,
    diff_constants,
    explain_difference,
    same_skeleton,
    snapshot_fragment,
    traces_equivalent,
)
from repro.tensor import Tensor, lazy_device


def _trace(build, *arrays):
    """Record ``build(*tensors)`` on a fresh lazy device; return roots."""
    device = lazy_device()
    tensors = [Tensor(a, device) for a in arrays]
    out = build(*tensors)
    outs = out if isinstance(out, (list, tuple)) else [out]
    return [t._impl for t in outs]


def test_alpha_invariance_identical_programs_share_a_key():
    # Two independent recordings (distinct node ids) of one program.
    a = _trace(lambda w: w - w * 0.1, np.ones(8, np.float32))
    b = _trace(lambda w: w - w * 0.1, np.ones(8, np.float32))
    assert traces_equivalent(canonicalize(a), canonicalize(b))
    assert cache_key(a) == cache_key(b)


def test_data_independence_source_values_never_change_the_key():
    a = _trace(lambda w: (w * 2.0).sum(), np.ones(8, np.float32))
    b = _trace(lambda w: (w * 2.0).sum(), np.full(8, -3.5, np.float32))
    assert traces_equivalent(canonicalize(a), canonicalize(b))


def test_constant_value_changes_key_but_not_skeleton():
    a = canonicalize(_trace(lambda w: w * 0.1, np.ones(4, np.float32)))
    b = canonicalize(_trace(lambda w: w * 0.2, np.ones(4, np.float32)))
    assert not traces_equivalent(a, b)
    assert same_skeleton(a, b)
    [(position, va, vb)] = diff_constants(a, b)
    assert (va, vb) == (0.1, 0.2)
    assert f"%{position}" in explain_difference(a, b)
    assert "constants" in explain_difference(a, b)


def test_shape_change_breaks_the_skeleton():
    a = canonicalize(_trace(lambda w: w * 2.0, np.ones(4, np.float32)))
    b = canonicalize(_trace(lambda w: w * 2.0, np.ones(5, np.float32)))
    assert not traces_equivalent(a, b)
    assert not same_skeleton(a, b)
    assert "diverge" in explain_difference(a, b)


def test_op_change_breaks_the_skeleton():
    a = canonicalize(_trace(lambda w: w + w, np.ones(4, np.float32)))
    b = canonicalize(_trace(lambda w: w * w, np.ones(4, np.float32)))
    assert not same_skeleton(a, b)


def test_equivalent_traces_are_self_explanatory():
    a = canonicalize(_trace(lambda w: w.relu(), np.ones(4, np.float32)))
    b = canonicalize(_trace(lambda w: w.relu(), np.ones(4, np.float32)))
    assert explain_difference(a, b) is None


def test_multi_root_fragments_canonicalize_in_cut_order():
    def build(w):
        h = w * 2.0
        return h + 1.0, h - 1.0

    a = canonicalize(_trace(build, np.ones(4, np.float32)))
    b = canonicalize(_trace(build, np.ones(4, np.float32)))
    assert traces_equivalent(a, b)
    assert a.lines[-1].startswith("roots(")
    # Root order is part of the key: reversed outputs are a different
    # executable (the tuple result shape differs).
    c = canonicalize(list(reversed(_trace(build, np.ones(4, np.float32)))))
    assert not traces_equivalent(a, c)


def test_counts_params_ops_and_constants():
    canonical = canonicalize(
        _trace(lambda w, v: (w @ v) * 0.5, np.ones((2, 3), np.float32),
               np.ones((3, 4), np.float32))
    )
    assert canonical.n_params == 2
    assert canonical.n_ops == 2  # matmul + mul
    assert [site.value for site in canonical.constants] == [0.5]
    assert len(canonical.node_ids) == len(canonical.lines) - 1


@pytest.mark.parametrize(
    "build_a, build_b, expect_equal",
    [
        (lambda w: w - w * 0.1, lambda w: w - w * 0.1, True),
        (lambda w: w - w * 0.1, lambda w: w - w * 0.2, False),
        (lambda w: (w * w).sum(), lambda w: (w * w).sum(), True),
        (lambda w: w.relu(), lambda w: w.tanh(), False),
    ],
)
def test_canonical_equality_matches_hlo_fingerprint(build_a, build_b, expect_equal):
    """The load-bearing claim: key equality ⇔ fingerprint equality."""
    from repro.analysis.tracing import fingerprint_of_fragment

    frag_a = snapshot_fragment(_trace(build_a, np.ones(6, np.float32)))
    frag_b = snapshot_fragment(_trace(build_b, np.ones(6, np.float32)))
    static_equal = traces_equivalent(
        canonicalize(frag_a.roots), canonicalize(frag_b.roots)
    )
    dynamic_equal = fingerprint_of_fragment(frag_a) == fingerprint_of_fragment(
        frag_b
    )
    assert static_equal == dynamic_equal == expect_equal


def test_snapshot_survives_materialization():
    device = lazy_device()
    w = Tensor(np.full(4, 2.0, np.float32), device)
    out = w * 3.0
    frag = snapshot_fragment([out._impl])
    key_before = cache_key(frag.roots)
    out.numpy()  # materializes; the live node collapses to a source
    assert out._impl.is_source
    assert cache_key(frag.roots) == key_before  # snapshot is immutable
