"""Graph program extraction (Section 3.5): AOT compilation by partial
evaluation, and its documented limitation on runtime-dynamic control flow."""

import numpy as np
import pytest

from repro.frameworks.graph_extraction import (
    GraphExtractionError,
    extract_program,
)
from repro.nn import LeNet, MLP, resnet_cifar_small, softmax_cross_entropy
from repro.tensor import Tensor, eager_device, one_hot

DEVICE = eager_device()
RNG = np.random.default_rng(0)


def model_forward(model, x):
    return model(x).sum()


class TestStaticExtraction:
    def test_extracts_mlp_forward(self):
        model = MLP.create(8, [16], 4, device=DEVICE, seed=0)
        program = extract_program(
            model_forward, model, input_shapes=[(5, 8)]
        )
        x = RNG.standard_normal((5, 8)).astype(np.float32)
        got = float(program.run(x))
        expected = float(model(Tensor(x, DEVICE)).sum())
        assert got == pytest.approx(expected, rel=1e-4)

    def test_extracts_lenet_with_static_config(self):
        # LeNet's composition (sequenced over a static layer list) partially
        # evaluates away: the `for` loop unrolls at extraction time.
        model = LeNet.create(DEVICE, seed=0)
        program = extract_program(model_forward, model, input_shapes=[(2, 28, 28, 1)])
        x = RNG.standard_normal((2, 28, 28, 1)).astype(np.float32)
        got = float(program.run(x))
        expected = float(model(Tensor(x, DEVICE)).sum())
        assert got == pytest.approx(expected, rel=1e-3)

    def test_extracts_resnet_config_branches(self):
        # `if self.has_projection:` branches on a *static* field, so the
        # extractor folds them — the ResNet family compiles per variant.
        model = resnet_cifar_small(DEVICE, seed=1)
        program = extract_program(model_forward, model, input_shapes=[(1, 16, 16, 3)])
        x = RNG.standard_normal((1, 16, 16, 3)).astype(np.float32)
        got = float(program.run(x))
        expected = float(model(Tensor(x, DEVICE)).sum())
        assert got == pytest.approx(expected, rel=1e-3)

    def test_extracted_loss_program(self):
        model = MLP.create(8, [8], 3, device=DEVICE, seed=2)

        def loss(model, x, y):
            return softmax_cross_entropy(model(x), y)

        program = extract_program(loss, model, input_shapes=[(4, 8), (4, 3)])
        x = RNG.standard_normal((4, 8)).astype(np.float32)
        y = one_hot(Tensor(RNG.integers(0, 3, 4).astype(np.float32), DEVICE), 3)
        got = float(program.run(x, y.numpy()))
        expected = float(loss(model, Tensor(x, DEVICE), y))
        assert got == pytest.approx(expected, rel=1e-4)

    def test_zero_per_call_host_work(self):
        model = MLP.create(4, [4], 2, device=DEVICE, seed=3)
        program = extract_program(model_forward, model, input_shapes=[(2, 4)])
        # Compiled once: op count is fixed; repeated runs don't recompile.
        from repro.hlo.compiler import STATS

        before = STATS.compiles
        x = np.ones((2, 4), np.float32)
        for _ in range(5):
            program.run(x)
        assert STATS.compiles == before
        assert program.op_count > 0

    def test_static_loop_unrolls(self):
        def poly(coeffs, x):
            acc = x * 0.0
            for i in range(len(coeffs)):
                acc = acc * 1.0 + coeffs[i] * x
            return acc.sum()

        program = extract_program(poly, [1.0, 2.0, 3.0], input_shapes=[(4,)])
        x = np.array([1, 2, 3, 4], np.float32)
        assert float(program.run(x)) == pytest.approx(6.0 * x.sum(), rel=1e-5)


class TestTheLimitation:
    def test_runtime_tensor_branch_rejected(self):
        def dynamic(model, x):
            h = model(x).sum()
            if h > 0.0:  # depends on a runtime tensor value
                return h * 2.0
            return h

        model = MLP.create(4, [4], 2, device=DEVICE, seed=4)
        with pytest.raises(GraphExtractionError, match="Section 3.5"):
            extract_program(dynamic, model, input_shapes=[(2, 4)])

    def test_runtime_loop_bound_rejected(self):
        def dynamic_loop(x):
            acc = x.sum()
            while acc < 100.0:  # tensor-valued condition
                acc = acc * 2.0
            return acc

        with pytest.raises(GraphExtractionError):
            extract_program(dynamic_loop, input_shapes=[(4,)])

    def test_shape_mismatch_at_run_time_rejected(self):
        model = MLP.create(4, [4], 2, device=DEVICE, seed=5)
        program = extract_program(model_forward, model, input_shapes=[(2, 4)])
        with pytest.raises(GraphExtractionError, match="static shapes"):
            program.run(np.ones((3, 4), np.float32))

    def test_static_result_rejected(self):
        def constant(x):
            return 42.0

        with pytest.raises(GraphExtractionError, match="static"):
            extract_program(constant, input_shapes=[(2,)])


class TestVersusLazyTracing:
    def test_per_step_cost_structure(self):
        """The Section 3.5 trade-off: static extraction has zero per-step
        host cost, lazy tracing pays per-op tracing but handles dynamism."""
        from repro.runtime.costmodel import S4TF_LAZY, GTX_1080
        from repro.tensor import lazy_device

        model_static = MLP.create(16, [16], 4, device=DEVICE, seed=6)
        program = extract_program(model_forward, model_static, input_shapes=[(8, 16)])

        lazy = lazy_device(GTX_1080, S4TF_LAZY)
        model_lazy = MLP.create(16, [16], 4, device=lazy, seed=6)
        x_np = RNG.standard_normal((8, 16)).astype(np.float32)

        # Warm up the lazy cache, then measure per-step tracing cost.
        for _ in range(2):
            float(model_lazy(Tensor(x_np, lazy)).sum())
        t0 = lazy.runtime.host_time
        float(model_lazy(Tensor(x_np, lazy)).sum())
        lazy_step_host = lazy.runtime.host_time - t0
        assert lazy_step_host > 0  # tracing recurs every step

        # The extracted program's host cost per step is literally zero ops.
        from repro.runtime.device import SimDevice

        sim = SimDevice(GTX_1080)
        program.run(x_np, device=sim)
        assert sim.stats.kernels_launched > 0  # device work happened
        # And numerics agree with the lazy path.
        got = float(program.run(x_np))
        expected = float(model_lazy(Tensor(x_np, lazy)).sum())
        assert got == pytest.approx(expected, rel=1e-4)


class TestStaticShapeChecking:
    """Section 4's static shape tracking, before any execution."""

    def test_reports_output_shape(self):
        model = MLP.create(8, [16], 4, device=DEVICE, seed=0)

        def logits(model, x):
            return model(x)

        from repro.frameworks import check_shapes

        shape = check_shapes(logits, model, input_shapes=[(5, 8)])
        assert shape == (5, 4)

    def test_catches_shape_mismatch_statically(self):
        from repro.errors import ShapeError
        from repro.frameworks import check_shapes

        model = MLP.create(8, [16], 4, device=DEVICE, seed=0)

        def logits(model, x):
            return model(x)

        with pytest.raises(ShapeError):
            # 7 features into an 8-feature model: rejected without running.
            check_shapes(logits, model, input_shapes=[(5, 7)])

    def test_catches_mismatch_deep_in_composition(self):
        from repro.errors import ShapeError
        from repro.frameworks import check_shapes

        def bad(x):
            a = x.reshaped((2, 6))
            b = x.reshaped((3, 4))
            return (a @ b).sum()  # (2,6) @ (3,4): inner dims disagree

        with pytest.raises(ShapeError, match="dot"):
            check_shapes(bad, input_shapes=[(12,)])

    def test_lenet_shape_contract(self):
        from repro.frameworks import check_shapes

        model = LeNet.create(DEVICE, seed=0)

        def logits(model, x):
            return model(x)

        assert check_shapes(logits, model, input_shapes=[(4, 28, 28, 1)]) == (4, 10)
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            check_shapes(logits, model, input_shapes=[(4, 10, 10, 1)])
