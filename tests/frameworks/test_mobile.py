"""Mobile deployment runtimes (the Table 4 machinery)."""

import pytest

from repro.data import personalization_split
from repro.frameworks import (
    ALL_PLATFORMS,
    S4TF_MOBILE_PLATFORM,
    TF_MOBILE_PLATFORM,
    TFLITE_FUSED_PLATFORM,
    TFLITE_STANDARD_PLATFORM,
    run_mobile_fine_tuning,
)
from repro.spline import SplineModel, fit_spline


@pytest.fixture(scope="module")
def setup():
    global_data, user_data = personalization_split(n_global=64, n_user=32, seed=0)
    global_model, _ = fit_spline(
        SplineModel.create(6), global_data.xs, global_data.ys, max_steps=25
    )
    return global_model, user_data


def _run_all(setup):
    global_model, user_data = setup
    return {
        p.name: run_mobile_fine_tuning(p, global_model, user_data, max_steps=25)
        for p in ALL_PLATFORMS
    }


def test_all_platforms_converge(setup):
    for result in _run_all(setup).values():
        assert result.final_loss < 0.05
        assert result.steps > 0


def test_numerics_identical_across_platforms(setup):
    # All platforms run the same fine-tuning code; the paper verified 1.5%
    # agreement across frameworks — ours are bit-identical by construction.
    losses = {r.platform: r.final_loss for r in _run_all(setup).values()}
    values = list(losses.values())
    assert all(v == values[0] for v in values)


def test_table4_time_ordering(setup):
    results = _run_all(setup)
    tf_mobile = results[TF_MOBILE_PLATFORM.name].training_time_s
    tflite = results[TFLITE_STANDARD_PLATFORM.name].training_time_s
    fused = results[TFLITE_FUSED_PLATFORM.name].training_time_s
    s4tf = results[S4TF_MOBILE_PLATFORM.name].training_time_s
    # Paper's ordering: TF-Mobile >> TFLite-std > S4TF > TFLite-fused.
    assert tf_mobile > 10 * tflite
    assert tflite > s4tf
    assert s4tf > fused


def test_table4_memory_ordering(setup):
    results = _run_all(setup)
    memories = {
        name: r.memory_bytes for name, r in results.items()
    }
    # S4TF uses the least memory (the paper's headline for this table).
    assert memories[S4TF_MOBILE_PLATFORM.name] == min(memories.values())
    assert memories[TF_MOBILE_PLATFORM.name] == max(memories.values())
    assert (
        memories[TFLITE_FUSED_PLATFORM.name]
        < memories[TFLITE_STANDARD_PLATFORM.name]
    )


def test_table4_binary_sizes(setup):
    results = _run_all(setup)
    binaries = {name: r.binary_size_bytes for name, r in results.items()}
    # TFLite ships the smallest binary; S4TF's static Swift runtime makes
    # its binary larger than TFLite's but smaller than TF-Mobile's.
    assert binaries[TFLITE_STANDARD_PLATFORM.name] == min(binaries.values())
    assert (
        binaries[TFLITE_STANDARD_PLATFORM.name]
        < binaries[S4TF_MOBILE_PLATFORM.name]
        < binaries[TF_MOBILE_PLATFORM.name]
    )


def test_control_point_agreement_checked(setup):
    global_model, user_data = setup
    from repro.spline import fine_tune

    reference, _ = fine_tune(
        global_model, user_data.xs, user_data.ys, max_steps=25
    )
    result = run_mobile_fine_tuning(
        TFLITE_STANDARD_PLATFORM,
        global_model,
        user_data,
        max_steps=25,
        reference_model=reference,
    )
    assert result.control_points_match
