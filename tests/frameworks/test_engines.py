"""Framework engines: capture, numerics equality, runtime disciplines."""

import numpy as np
import pytest

from repro.frameworks import (
    FusedJitEngine,
    GraphInterpreterEngine,
    OpByOpEngine,
    capture_step_program,
)
from repro.frameworks.engines import LazyTraceEngine
from repro.nn import MLP, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.costmodel import (
    GTX_1080,
    JAX_JIT,
    S4TF_EAGER,
    S4TF_LAZY,
    TF_GRAPH,
    TORCH_LIKE,
)
from repro.tensor import Device, Tensor, one_hot
from repro.training import train_step


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


def _one_step(device: Device) -> None:
    model = MLP.create(16, [8], 4, device=device, seed=0)
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 16)).astype(np.float32), device)
    y = one_hot(Tensor(rng.integers(0, 4, 8).astype(np.float32), device), 4)
    train_step(model, SGD(0.1), _loss, x, y, device)


@pytest.fixture(scope="module")
def program():
    return capture_step_program(_one_step, GTX_1080)


def test_capture_extracts_program(program):
    assert program.op_count > 10
    assert len(program.example_args) > 0
    module = program.to_module()
    assert module.entry.root is not None


def test_capture_requires_materialization():
    with pytest.raises(RuntimeError, match="never materialized"):
        capture_step_program(lambda device: None, GTX_1080)


def test_all_engines_compute_identical_numerics(program):
    engines = [
        OpByOpEngine(program, TORCH_LIKE, GTX_1080),
        GraphInterpreterEngine(program, TF_GRAPH, GTX_1080),
        FusedJitEngine(program, JAX_JIT, GTX_1080),
        LazyTraceEngine(program, S4TF_LAZY, GTX_1080),
    ]
    outputs = []
    for engine in engines:
        result = engine.executable.run(program.example_args)
        flat = np.concatenate(
            [np.asarray(r).ravel() for r in (result if isinstance(result, tuple) else (result,))]
        )
        outputs.append(flat)
    for other in outputs[1:]:
        np.testing.assert_allclose(outputs[0], other, rtol=1e-4, atol=1e-5)


def test_fused_engine_has_fewer_kernels(program):
    unfused = OpByOpEngine(program, TORCH_LIKE, GTX_1080)
    fused = FusedJitEngine(program, JAX_JIT, GTX_1080)
    assert fused.executable.kernel_count < unfused.executable.kernel_count


def test_eager_dispatch_cost_scales_with_overhead(program):
    fast = OpByOpEngine(program, TORCH_LIKE, GTX_1080).steady_state_step_time()
    slow = OpByOpEngine(program, S4TF_EAGER, GTX_1080).steady_state_step_time()
    assert slow > fast * 2


def test_jit_engine_amortizes_compile(program):
    engine = FusedJitEngine(program, JAX_JIT, GTX_1080)
    first = engine.step().elapsed
    engine_time_after_first = max(engine.host_time, engine.device.busy_until)
    engine.step()
    second = max(engine.host_time, engine.device.busy_until) - engine_time_after_first
    assert second < first / 3  # compile paid once


def test_lazy_trace_engine_pays_tracing_every_step(program):
    engine = LazyTraceEngine(program, S4TF_LAZY, GTX_1080)
    engine.step()  # includes compile
    h0 = engine.host_time
    engine.step()
    per_step_host = engine.host_time - h0
    expected = S4TF_LAZY.trace_op_overhead * program.op_count
    assert per_step_host == pytest.approx(expected, rel=1e-6)


def test_efficiency_scales_device_time(program):
    base = FusedJitEngine(program, TF_GRAPH, GTX_1080, efficiency=1.0)
    slow = FusedJitEngine(program, TF_GRAPH, GTX_1080, efficiency=0.5)
    t_base = base.steady_state_step_time()
    t_slow = slow.steady_state_step_time()
    assert t_slow > t_base


def test_steady_state_is_deterministic(program):
    e1 = GraphInterpreterEngine(program, TF_GRAPH, GTX_1080)
    e2 = GraphInterpreterEngine(program, TF_GRAPH, GTX_1080)
    assert e1.steady_state_step_time() == pytest.approx(
        e2.steady_state_step_time(), rel=1e-12
    )
